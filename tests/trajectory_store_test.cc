#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "anon/utility.h"
#include "mod/trajectory_store.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;
using testing_util::SmallSynthetic;

StRange Window(double x_lo, double x_hi, double y_lo, double y_hi,
               double t_lo, double t_hi) {
  StRange r;
  r.x_lo = x_lo;
  r.x_hi = x_hi;
  r.y_lo = y_lo;
  r.y_hi = y_hi;
  r.t_lo = t_lo;
  r.t_hi = t_hi;
  return r;
}

TEST(TrajectoryStoreTest, BuildIndexesAllSegments) {
  const Dataset d = SmallSynthetic(10, 30);
  Result<TrajectoryStore> store = TrajectoryStore::Build(d);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(store->size(), 10u);
  // Every segment lands in at least one cell.
  EXPECT_GE(store->num_segment_entries(), 10u * 29u);
  EXPECT_GT(store->num_cells(), 0u);
}

TEST(TrajectoryStoreTest, RangeQueryFindsKnownTrajectory) {
  Dataset d;
  d.Add(MakeLine(1, 0, 0, 10, 0, 11));     // x: 0..100 over t: 0..10
  d.Add(MakeLine(2, 0, 5000, 10, 0, 11));  // far north
  Result<TrajectoryStore> store = TrajectoryStore::Build(d);
  ASSERT_TRUE(store.ok());
  const std::vector<int64_t> hits =
      store->RangeQuery(Window(40, 60, -5, 5, 3, 7));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1);
}

TEST(TrajectoryStoreTest, RangeQueryMatchesLinearScan) {
  const Dataset d = SmallSynthetic(30, 50);
  Result<TrajectoryStore> store = TrajectoryStore::Build(d);
  ASSERT_TRUE(store.ok());
  Rng rng(21);
  const std::vector<RangeQuery> queries =
      GenerateRangeQueries(d, 40, 0.08, 0.05, &rng);
  for (const RangeQuery& q : queries) {
    // Reference: the utility module's linear scan.
    std::set<int64_t> expected;
    for (const Trajectory& t : d.trajectories()) {
      if (TrajectoryMatchesQuery(t, q)) {
        expected.insert(t.id());
      }
    }
    const std::vector<int64_t> got = store->RangeQuery(
        Window(q.x_lo, q.x_hi, q.y_lo, q.y_hi, q.t_lo, q.t_hi));
    EXPECT_EQ(std::set<int64_t>(got.begin(), got.end()), expected);
  }
}

TEST(TrajectoryStoreTest, NearestAtFindsAliveNeighbours) {
  Dataset d;
  d.Add(MakeLine(1, 0, 0, 1, 0, 11));      // at (5, 0) when t = 5
  d.Add(MakeLine(2, 0, 100, 1, 0, 11));    // at (5, 100) when t = 5
  d.Add(MakeLine(3, 0, 0, 1, 0, 11, 1.0, 100.0));  // not alive at t = 5
  Result<TrajectoryStore> store = TrajectoryStore::Build(d);
  ASSERT_TRUE(store.ok());
  const std::vector<StNeighbor> nn = store->NearestAt(5.0, 1.0, 5.0, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].trajectory_id, 1);
  EXPECT_NEAR(nn[0].distance, 1.0, 1e-9);
  EXPECT_EQ(nn[1].trajectory_id, 2);
  EXPECT_NEAR(nn[1].distance, 99.0, 1e-9);
}

TEST(TrajectoryStoreTest, NearestAtMatchesBruteForce) {
  const Dataset d = SmallSynthetic(25, 40);
  Result<TrajectoryStore> store = TrajectoryStore::Build(d);
  ASSERT_TRUE(store.ok());
  Rng rng(31);
  for (int round = 0; round < 20; ++round) {
    const Trajectory& anchor = d[rng.UniformIndex(d.size())];
    const Point& p = anchor[rng.UniformIndex(anchor.size())];
    const double qx = p.x + rng.UniformReal(-500, 500);
    const double qy = p.y + rng.UniformReal(-500, 500);
    const double qt = p.t;

    // Brute force.
    std::vector<StNeighbor> expected;
    for (const Trajectory& t : d.trajectories()) {
      if (qt < t.StartTime() || qt > t.EndTime()) {
        continue;
      }
      const Point pos = t.PositionAt(qt);
      expected.push_back(
          StNeighbor{t.id(), SpatialDistance(pos, Point(qx, qy, qt))});
    }
    std::sort(expected.begin(), expected.end(),
              [](const StNeighbor& a, const StNeighbor& b) {
                return a.distance < b.distance;
              });
    const size_t k = std::min<size_t>(3, expected.size());
    const std::vector<StNeighbor> got = store->NearestAt(qx, qy, qt, 3);
    ASSERT_EQ(got.size(), std::min<size_t>(3, expected.size()));
    for (size_t i = 0; i < k; ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-6)
          << "round " << round << " rank " << i;
    }
  }
}

TEST(TrajectoryStoreTest, MostSimilarRanksByConfiguredDistance) {
  Dataset d;
  d.Add(MakeLine(1, 0, 0, 10, 0, 20));
  d.Add(MakeLine(2, 0, 50, 10, 0, 20));    // near-parallel, offset 50
  d.Add(MakeLine(3, 0, 9999, 10, 0, 20));  // far away
  Result<TrajectoryStore> store = TrajectoryStore::Build(d);
  ASSERT_TRUE(store.ok());
  DistanceConfig config;
  config.kind = DistanceConfig::Kind::kSynchronizedEuclidean;
  const Trajectory probe = MakeLine(99, 0, 1, 10, 0, 20);
  const std::vector<StNeighbor> similar = store->MostSimilar(probe, 2, config);
  ASSERT_EQ(similar.size(), 2u);
  EXPECT_EQ(similar[0].trajectory_id, 1);
  EXPECT_EQ(similar[1].trajectory_id, 2);
}

TEST(TrajectoryStoreTest, SinglePointTrajectoriesAreQueryable) {
  Dataset d;
  d.Add(Trajectory(5, {Point(10, 10, 10)}));
  Result<TrajectoryStore> store = TrajectoryStore::Build(d);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->RangeQuery(Window(0, 20, 0, 20, 0, 20)).size(), 1u);
  EXPECT_TRUE(store->RangeQuery(Window(0, 20, 0, 20, 11, 20)).empty());
}

TEST(TrajectoryStoreTest, BuildRejectsInvalidData) {
  Dataset d;
  d.Add(Trajectory(1, {Point(0, 0, 5), Point(1, 1, 4)}));  // bad times
  EXPECT_FALSE(TrajectoryStore::Build(d).ok());
}

TEST(TrajectoryStoreTest, ExplicitCellSizing) {
  const Dataset d = SmallSynthetic(10, 30);
  TrajectoryStoreOptions fine_options;
  fine_options.cell_size = 20.0;
  fine_options.time_bucket = 60.0;
  TrajectoryStoreOptions coarse_options;
  coarse_options.cell_size = 5000.0;
  coarse_options.time_bucket = 86400.0;
  Result<TrajectoryStore> fine = TrajectoryStore::Build(d, fine_options);
  Result<TrajectoryStore> coarse = TrajectoryStore::Build(d, coarse_options);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  // Finer cells -> at least as many cell entries.
  EXPECT_GE(fine->num_cells(), coarse->num_cells());
}

}  // namespace
}  // namespace wcop
