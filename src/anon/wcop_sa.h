#ifndef WCOP_ANON_WCOP_SA_H_
#define WCOP_ANON_WCOP_SA_H_

#include "anon/types.h"
#include "common/result.h"
#include "segment/segmenter.h"
#include "traj/dataset.h"

namespace wcop {

/// Output of WCOP-SA: the anonymization result over sub-trajectories plus
/// the intermediate segmented dataset (useful for metric drill-downs and
/// the per-parent aggregation below).
struct WcopSaResult {
  AnonymizationResult anonymization;
  Dataset segmented;
};

/// WCOP-SA (Algorithm 5): Segment-and-Anonymize. Applies the given
/// segmenter to partition every trajectory into sub-trajectories (each
/// inheriting its parent's (k_i, delta_i)), then anonymizes the
/// sub-trajectory dataset with WCOP-CT. The report's counters refer to
/// sub-trajectories, matching how Table 3 reports the SA variants.
Result<WcopSaResult> RunWcopSa(const Dataset& dataset, Segmenter* segmenter,
                               const WcopOptions& options = {});

}  // namespace wcop

#endif  // WCOP_ANON_WCOP_SA_H_
