#ifndef WCOP_TRAJ_DATASET_H_
#define WCOP_TRAJ_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "traj/trajectory.h"

namespace wcop {

/// Aggregate statistics of a dataset — the columns of the paper's Table 2.
struct DatasetStats {
  size_t num_objects = 0;         ///< distinct users / moving objects
  size_t num_trajectories = 0;    ///< |D|
  size_t num_points = 0;          ///< total spatiotemporal points
  double avg_speed = 0.0;         ///< mean of per-trajectory average speeds,
                                  ///< weighted by duration (m/s)
  double radius = 0.0;            ///< half-diagonal of the space MBB (m)
  double duration_days = 0.0;     ///< overall time span in days
  double avg_points_per_traj = 0.0;
};

/// The trajectory database D = {(tau_1, k_1, delta_1), ...}.
///
/// A plain ordered container over Trajectory with dataset-level helpers used
/// throughout the suite: universal-requirement extraction (max k_i /
/// min delta_i for WCOP-NV), Table 2 statistics, and validation.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Trajectory> trajectories)
      : trajectories_(std::move(trajectories)) {}

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }
  std::vector<Trajectory>& mutable_trajectories() { return trajectories_; }

  size_t size() const { return trajectories_.size(); }
  bool empty() const { return trajectories_.empty(); }
  const Trajectory& operator[](size_t i) const { return trajectories_[i]; }
  Trajectory& operator[](size_t i) { return trajectories_[i]; }

  void Add(Trajectory t) { trajectories_.push_back(std::move(t)); }

  /// Largest privacy requirement in the dataset (k_max of Eq. 3 / WCOP-NV);
  /// 0 on an empty dataset.
  int MaxK() const;

  /// Smallest quality requirement in the dataset (delta_min); 0 on empty.
  double MinDelta() const;

  /// Total number of spatiotemporal points across all trajectories.
  size_t TotalPoints() const;

  /// Spatial bounding box over all trajectories.
  BoundingBox Bounds() const;

  /// Computes the Table 2 statistics.
  DatasetStats ComputeStats() const;

  /// Validates every trajectory and checks ids are unique.
  Status Validate() const;

  /// Looks up a trajectory by id; returns nullptr when absent (linear scan —
  /// datasets here are hundreds to tens of thousands of trajectories).
  const Trajectory* FindById(int64_t id) const;

  std::string DebugString() const;

 private:
  std::vector<Trajectory> trajectories_;
};

}  // namespace wcop

#endif  // WCOP_TRAJ_DATASET_H_
