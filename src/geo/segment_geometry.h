#ifndef WCOP_GEO_SEGMENT_GEOMETRY_H_
#define WCOP_GEO_SEGMENT_GEOMETRY_H_

#include "geo/point.h"

namespace wcop {

/// A directed spatial line segment (time stripped), the working unit of the
/// TRACLUS partition-and-group framework (Lee, Han & Whang, SIGMOD 2007).
struct LineSegment {
  Point start;
  Point end;

  LineSegment() = default;
  LineSegment(const Point& s, const Point& e) : start(s), end(e) {}

  double Length() const { return SpatialDistance(start, end); }
};

/// The three distance components between directed segments from the TRACLUS
/// paper. By convention the *longer* segment plays the role of Li and the
/// shorter of Lj; SegmentDistance() below handles the swap.
struct SegmentDistanceComponents {
  double perpendicular = 0.0;  ///< d_perp: mean-square of the two projection
                               ///< offsets (Lee et al., Eq. for d⊥).
  double parallel = 0.0;       ///< d_par: min of the projections' overhangs.
  double angular = 0.0;        ///< d_theta: ||Lj||*sin(theta), or ||Lj|| when
                               ///< the segments point in opposite directions.
};

/// Projects point `p` onto the (infinite) line through `seg`, returning the
/// projection parameter u (u=0 at seg.start, u=1 at seg.end). Degenerate
/// zero-length segments yield u=0.
double ProjectionParameter(const Point& p, const LineSegment& seg);

/// Closest point on the *finite* segment to `p`.
Point ClosestPointOnSegment(const Point& p, const LineSegment& seg);

/// Euclidean distance from `p` to the finite segment.
double PointToSegmentDistance(const Point& p, const LineSegment& seg);

/// Perpendicular distance from `p` to the infinite supporting line of `seg`.
double PointToLineDistance(const Point& p, const LineSegment& seg);

/// Computes the TRACLUS distance components between two directed segments.
SegmentDistanceComponents ComputeSegmentDistanceComponents(
    const LineSegment& a, const LineSegment& b);

/// Weighted TRACLUS segment distance: w_perp*d_perp + w_par*d_par +
/// w_theta*d_theta. The TRACLUS paper uses equal unit weights by default.
double SegmentDistance(const LineSegment& a, const LineSegment& b,
                       double w_perpendicular = 1.0, double w_parallel = 1.0,
                       double w_angular = 1.0);

/// Angle between the direction vectors of the two segments, in radians
/// within [0, pi]. Zero-length segments are treated as parallel (angle 0).
double AngleBetween(const LineSegment& a, const LineSegment& b);

/// True iff the spatial segment (ax,ay)-(bx,by) intersects the axis-aligned
/// rectangle [x_lo,x_hi] x [y_lo,y_hi] (Liang-Barsky parametric clipping).
/// Shared by the range-query predicate of the utility metrics and by the
/// spatiotemporal index.
bool SegmentIntersectsRect(double ax, double ay, double bx, double by,
                           double x_lo, double x_hi, double y_lo,
                           double y_hi);

}  // namespace wcop

#endif  // WCOP_GEO_SEGMENT_GEOMETRY_H_
