#include "server/job.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wcop {
namespace server {

namespace {

void AppendLine(std::string* out, std::string_view key,
                std::string_view value) {
  out->append(key);
  out->push_back(' ');
  out->append(value);
  out->push_back('\n');
}

void AppendString(std::string* out, std::string_view key,
                  std::string_view value) {
  AppendLine(out, key, EscapeToken(value));
}

void AppendInt(std::string* out, std::string_view key, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  AppendLine(out, key, buf);
}

void AppendUint(std::string* out, std::string_view key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  AppendLine(out, key, buf);
}

void AppendDouble(std::string* out, std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  AppendLine(out, key, buf);
}

Result<int64_t> ParseInt(std::string_view value) {
  char* end = nullptr;
  const std::string copy(value);
  const long long parsed = std::strtoll(copy.c_str(), &end, 10);
  if (end == copy.c_str() || *end != '\0') {
    return Status::ParseError("bad integer '" + copy + "'");
  }
  return static_cast<int64_t>(parsed);
}

Result<uint64_t> ParseUint(std::string_view value) {
  char* end = nullptr;
  const std::string copy(value);
  if (!copy.empty() && copy[0] == '-') {
    return Status::ParseError("bad unsigned integer '" + copy + "'");
  }
  const unsigned long long parsed = std::strtoull(copy.c_str(), &end, 10);
  if (end == copy.c_str() || *end != '\0') {
    return Status::ParseError("bad unsigned integer '" + copy + "'");
  }
  return static_cast<uint64_t>(parsed);
}

Result<double> ParseDouble(std::string_view value) {
  char* end = nullptr;
  const std::string copy(value);
  const double parsed = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') {
    return Status::ParseError("bad double '" + copy + "'");
  }
  return parsed;
}

Result<bool> ParseBool(std::string_view value) {
  if (value == "1" || value == "true") {
    return true;
  }
  if (value == "0" || value == "false") {
    return false;
  }
  return Status::ParseError("bad bool '" + std::string(value) + "'");
}

bool NeedsEscape(unsigned char c) {
  return c <= 0x20 || c == '%' || c >= 0x7f;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

/// Shared line-walker for the record and spec codecs: calls `field` with
/// each (key, raw value) pair. Unknown keys must be tolerated by `field`
/// (return OK) so the format can grow.
template <typename Fn>
Status WalkLines(std::string_view payload, Fn&& field) {
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = payload.size();
    }
    const std::string_view line = payload.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    const size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      return Status::ParseError("job record line without value: '" +
                                std::string(line) + "'");
    }
    WCOP_RETURN_IF_ERROR(
        field(line.substr(0, space), line.substr(space + 1)));
  }
  return Status::OK();
}

/// Decodes one spec field; sets *known=false when the key is not a spec
/// key (the record decoder then tries its own keys).
Status DecodeSpecField(std::string_view key, std::string_view value,
                       JobSpec* spec, bool* known) {
  *known = true;
  if (key == "name") {
    WCOP_ASSIGN_OR_RETURN(spec->name, UnescapeToken(value));
  } else if (key == "tenant") {
    WCOP_ASSIGN_OR_RETURN(spec->tenant, UnescapeToken(value));
  } else if (key == "input_store") {
    WCOP_ASSIGN_OR_RETURN(spec->input_store, UnescapeToken(value));
  } else if (key == "output_csv") {
    WCOP_ASSIGN_OR_RETURN(spec->output_csv, UnescapeToken(value));
  } else if (key == "kind") {
    WCOP_ASSIGN_OR_RETURN(spec->kind, UnescapeToken(value));
  } else if (key == "window_seconds") {
    WCOP_ASSIGN_OR_RETURN(spec->window_seconds, ParseDouble(value));
  } else if (key == "output_dir") {
    WCOP_ASSIGN_OR_RETURN(spec->output_dir, UnescapeToken(value));
  } else if (key == "audit_windows_dir") {
    WCOP_ASSIGN_OR_RETURN(spec->audit_windows_dir, UnescapeToken(value));
  } else if (key == "audit_original_store") {
    WCOP_ASSIGN_OR_RETURN(spec->audit_original_store, UnescapeToken(value));
  } else if (key == "audit_adversary") {
    WCOP_ASSIGN_OR_RETURN(spec->audit_adversary, UnescapeToken(value));
  } else if (key == "audit_victims") {
    WCOP_ASSIGN_OR_RETURN(spec->audit_victims, ParseUint(value));
  } else if (key == "assign_k") {
    WCOP_ASSIGN_OR_RETURN(int64_t v, ParseInt(value));
    spec->assign_k = static_cast<int>(v);
  } else if (key == "assign_delta") {
    WCOP_ASSIGN_OR_RETURN(spec->assign_delta, ParseDouble(value));
  } else if (key == "shards") {
    WCOP_ASSIGN_OR_RETURN(uint64_t v, ParseUint(value));
    spec->shards = static_cast<size_t>(v);
  } else if (key == "overlap_margin") {
    WCOP_ASSIGN_OR_RETURN(spec->overlap_margin, ParseDouble(value));
  } else if (key == "deadline_ms") {
    WCOP_ASSIGN_OR_RETURN(spec->deadline_ms, ParseInt(value));
  } else if (key == "max_distance_computations") {
    WCOP_ASSIGN_OR_RETURN(spec->max_distance_computations, ParseUint(value));
  } else if (key == "allow_partial") {
    WCOP_ASSIGN_OR_RETURN(spec->allow_partial, ParseBool(value));
  } else if (key == "seed") {
    WCOP_ASSIGN_OR_RETURN(spec->seed, ParseUint(value));
  } else {
    *known = false;
  }
  return Status::OK();
}

void EncodeSpecFields(std::string* out, const JobSpec& spec) {
  AppendString(out, "name", spec.name);
  AppendString(out, "tenant", spec.tenant);
  AppendString(out, "input_store", spec.input_store);
  AppendString(out, "output_csv", spec.output_csv);
  AppendString(out, "kind", spec.kind);
  AppendDouble(out, "window_seconds", spec.window_seconds);
  AppendString(out, "output_dir", spec.output_dir);
  AppendString(out, "audit_windows_dir", spec.audit_windows_dir);
  AppendString(out, "audit_original_store", spec.audit_original_store);
  AppendString(out, "audit_adversary", spec.audit_adversary);
  AppendUint(out, "audit_victims", spec.audit_victims);
  AppendInt(out, "assign_k", spec.assign_k);
  AppendDouble(out, "assign_delta", spec.assign_delta);
  AppendUint(out, "shards", spec.shards);
  AppendDouble(out, "overlap_margin", spec.overlap_margin);
  AppendInt(out, "deadline_ms", spec.deadline_ms);
  AppendUint(out, "max_distance_computations",
             spec.max_distance_computations);
  AppendLine(out, "allow_partial", spec.allow_partial ? "1" : "0");
  AppendUint(out, "seed", spec.seed);
}

}  // namespace

std::string_view JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "unknown";
}

Result<JobState> JobStateFromName(std::string_view name) {
  if (name == "queued") {
    return JobState::kQueued;
  }
  if (name == "running") {
    return JobState::kRunning;
  }
  if (name == "done") {
    return JobState::kDone;
  }
  if (name == "failed") {
    return JobState::kFailed;
  }
  return Status::ParseError("unknown job state '" + std::string(name) + "'");
}

std::string EscapeToken(std::string_view raw) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (NeedsEscape(u)) {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  if (out.empty()) {
    out = "%00";  // empty strings still need a token on the line
  }
  return out;
}

Result<std::string> UnescapeToken(std::string_view token) {
  if (token == "%00") {
    return std::string();  // the empty-string marker EscapeToken emits
  }
  std::string out;
  out.reserve(token.size());
  for (size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out.push_back(token[i]);
      continue;
    }
    if (i + 2 >= token.size()) {
      return Status::ParseError("truncated %-escape in token");
    }
    const int hi = HexDigit(token[i + 1]);
    const int lo = HexDigit(token[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("bad %-escape in token");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

std::string EncodeJobRecord(const JobRecord& record) {
  std::string out;
  AppendInt(&out, "id", record.id);
  AppendLine(&out, "state", JobStateName(record.state));
  AppendUint(&out, "attempts", record.attempts);
  EncodeSpecFields(&out, record.spec);
  AppendLine(&out, "degraded", record.outcome.degraded ? "1" : "0");
  AppendString(&out, "degraded_reason", record.outcome.degraded_reason);
  AppendLine(&out, "verified", record.outcome.verified ? "1" : "0");
  AppendUint(&out, "published", record.outcome.published);
  AppendUint(&out, "suppressed", record.outcome.suppressed);
  AppendUint(&out, "clusters", record.outcome.clusters);
  AppendDouble(&out, "total_distortion", record.outcome.total_distortion);
  AppendUint(&out, "resumed_shards", record.outcome.resumed_shards);
  AppendString(&out, "error", record.outcome.error);
  AppendString(&out, "trace_id", record.trace_id);
  AppendUint(&out, "progress_shards_done", record.progress.shards_done);
  AppendUint(&out, "progress_shards_total", record.progress.shards_total);
  AppendUint(&out, "progress_distance_calls",
             record.progress.distance_calls);
  AppendDouble(&out, "progress_eta_seconds", record.progress.eta_seconds);
  return out;
}

Result<JobRecord> DecodeJobRecord(std::string_view payload) {
  JobRecord record;
  bool saw_id = false;
  Status walk = WalkLines(
      payload,
      [&](std::string_view key, std::string_view value) -> Status {
        bool known = false;
        WCOP_RETURN_IF_ERROR(
            DecodeSpecField(key, value, &record.spec, &known));
        if (known) {
          return Status::OK();
        }
        if (key == "id") {
          WCOP_ASSIGN_OR_RETURN(record.id, ParseInt(value));
          saw_id = true;
        } else if (key == "state") {
          WCOP_ASSIGN_OR_RETURN(record.state, JobStateFromName(value));
        } else if (key == "attempts") {
          WCOP_ASSIGN_OR_RETURN(record.attempts, ParseUint(value));
        } else if (key == "degraded") {
          WCOP_ASSIGN_OR_RETURN(record.outcome.degraded, ParseBool(value));
        } else if (key == "degraded_reason") {
          WCOP_ASSIGN_OR_RETURN(record.outcome.degraded_reason,
                                UnescapeToken(value));
        } else if (key == "verified") {
          WCOP_ASSIGN_OR_RETURN(record.outcome.verified, ParseBool(value));
        } else if (key == "published") {
          WCOP_ASSIGN_OR_RETURN(record.outcome.published, ParseUint(value));
        } else if (key == "suppressed") {
          WCOP_ASSIGN_OR_RETURN(record.outcome.suppressed, ParseUint(value));
        } else if (key == "clusters") {
          WCOP_ASSIGN_OR_RETURN(record.outcome.clusters, ParseUint(value));
        } else if (key == "total_distortion") {
          WCOP_ASSIGN_OR_RETURN(record.outcome.total_distortion,
                                ParseDouble(value));
        } else if (key == "resumed_shards") {
          WCOP_ASSIGN_OR_RETURN(record.outcome.resumed_shards,
                                ParseUint(value));
        } else if (key == "error") {
          WCOP_ASSIGN_OR_RETURN(record.outcome.error, UnescapeToken(value));
        } else if (key == "trace_id") {
          WCOP_ASSIGN_OR_RETURN(record.trace_id, UnescapeToken(value));
        } else if (key == "progress_shards_done") {
          WCOP_ASSIGN_OR_RETURN(record.progress.shards_done,
                                ParseUint(value));
        } else if (key == "progress_shards_total") {
          WCOP_ASSIGN_OR_RETURN(record.progress.shards_total,
                                ParseUint(value));
        } else if (key == "progress_distance_calls") {
          WCOP_ASSIGN_OR_RETURN(record.progress.distance_calls,
                                ParseUint(value));
        } else if (key == "progress_eta_seconds") {
          WCOP_ASSIGN_OR_RETURN(record.progress.eta_seconds,
                                ParseDouble(value));
        }
        // Unknown keys: skip (forward compatibility).
        return Status::OK();
      });
  if (!walk.ok()) {
    // The ledger reads records through the snapshot envelope, whose CRC
    // already rules out torn writes; an undecodable payload is corruption.
    return Status::DataLoss("job record: " + walk.ToString());
  }
  if (!saw_id) {
    return Status::DataLoss("job record without id");
  }
  return record;
}

std::string EncodeJobSpec(const JobSpec& spec) {
  std::string out;
  EncodeSpecFields(&out, spec);
  return out;
}

Result<JobSpec> DecodeJobSpec(std::string_view body) {
  JobSpec spec;
  WCOP_RETURN_IF_ERROR(WalkLines(
      body, [&](std::string_view key, std::string_view value) -> Status {
        bool known = false;
        return DecodeSpecField(key, value, &spec, &known);
      }));
  return spec;
}

Status ValidateJobSpec(const JobSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("job name is required");
  }
  if (spec.name.size() > 128) {
    return Status::InvalidArgument("job name exceeds 128 characters");
  }
  for (const char c : spec.name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '_' || c == '-')) {
      return Status::InvalidArgument(
          "job name may only contain [A-Za-z0-9._-]: '" + spec.name + "'");
    }
  }
  if (spec.input_store.empty()) {
    return Status::InvalidArgument("input_store is required");
  }
  if (!spec.kind.empty() && spec.kind != "batch" &&
      spec.kind != "continuous" && spec.kind != "audit") {
    return Status::InvalidArgument(
        "kind must be 'batch', 'continuous' or 'audit': '" + spec.kind +
        "'");
  }
  if (spec.kind == "continuous" &&
      !(spec.window_seconds > 0.0)) {  // also rejects NaN
    return Status::InvalidArgument(
        "window_seconds must be > 0 for continuous jobs");
  }
  if (spec.kind == "audit") {
    if (!spec.audit_adversary.empty() && spec.audit_adversary != "weak" &&
        spec.audit_adversary != "moderate" &&
        spec.audit_adversary != "strong") {
      return Status::InvalidArgument(
          "audit_adversary must be 'weak', 'moderate' or 'strong': '" +
          spec.audit_adversary + "'");
    }
  } else if (!spec.audit_windows_dir.empty() ||
             !spec.audit_original_store.empty()) {
    return Status::InvalidArgument(
        "audit_windows_dir/audit_original_store require kind=audit");
  }
  if (spec.assign_k < 0 || spec.assign_k == 1) {
    return Status::InvalidArgument("assign_k must be 0 (keep) or >= 2");
  }
  if (spec.assign_delta < 0.0) {
    return Status::InvalidArgument("assign_delta must be >= 0");
  }
  if (spec.shards == 0 || spec.shards > 4096) {
    return Status::InvalidArgument("shards must be in [1, 4096]");
  }
  if (spec.overlap_margin < 0.0) {
    return Status::InvalidArgument("overlap_margin must be >= 0");
  }
  if (spec.deadline_ms < 0) {
    return Status::InvalidArgument("deadline_ms must be >= 0");
  }
  return Status::OK();
}

}  // namespace server
}  // namespace wcop
