// Quickstart: generate a small trajectory dataset, attach per-user privacy
// preferences, anonymize it with WCOP-CT, and audit the result.
//
// Run:  ./quickstart [--trajectories=60] [--points=80] [--seed=7]
//       [--threads=N]                worker threads (0 = all cores,
//                                    1 = serial; same output either way)
//       [--trace-out=trace.json]     Chrome trace (chrome://tracing)
//       [--metrics-out=metrics.json] metrics snapshot as JSON

#include <cstdio>
#include <iostream>
#include <string>

#include "anon/report_json.h"
#include "anon/wcop.h"
#include "common/arg_parser.h"
#include "common/telemetry.h"
#include "data/synthetic.h"

using namespace wcop;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const size_t num_trajectories =
      static_cast<size_t>(args.GetInt("trajectories", 60));
  const size_t points = static_cast<size_t>(args.GetInt("points", 80));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 7));

  // 1. Build a dataset. Real deployments would call LoadGeoLifeDirectory()
  //    or ReadDatasetCsv(); here we synthesize GeoLife-like traces.
  SyntheticOptions gen;
  gen.seed = seed;
  gen.num_trajectories = num_trajectories;
  gen.num_users = num_trajectories / 3 + 1;
  gen.points_per_trajectory = points;
  gen.region_half_diagonal = 15000.0;
  gen.dataset_duration_days = 30.0;
  Result<Dataset> maybe_dataset = GenerateSyntheticGeoLife(gen);
  if (!maybe_dataset.ok()) {
    std::cerr << "generation failed: " << maybe_dataset.status() << "\n";
    return 1;
  }
  Dataset dataset = std::move(maybe_dataset).value();

  // 2. Every user chooses their own (k_i, delta_i): "hide me among at least
  //    k_i-1 others, and do not displace me further than delta_i/2 metres".
  Rng rng(seed + 1);
  AssignUniformRequirements(&dataset, /*k_min=*/2, /*k_max=*/5,
                            /*delta_min=*/50.0, /*delta_max=*/250.0, &rng);
  std::cout << "input:  " << dataset.DebugString() << "\n";

  // 3. Anonymize with the personalized clustering-and-translation pipeline.
  //    A telemetry sink is optional; attaching one records phase spans and
  //    named counters for the run (exported below).
  const std::string trace_out = args.GetString("trace-out", "");
  const std::string metrics_out = args.GetString("metrics-out", "");
  telemetry::Telemetry telemetry;
  WcopOptions options;
  options.threads = static_cast<int>(args.GetInt("threads", 0));
  if (!trace_out.empty() || !metrics_out.empty()) {
    options.telemetry = &telemetry;
  }
  Result<AnonymizationResult> maybe_result = RunWcopCt(dataset, options);
  if (!maybe_result.ok()) {
    std::cerr << "anonymization failed: " << maybe_result.status() << "\n";
    return 1;
  }
  const AnonymizationResult& result = *maybe_result;
  const AnonymizationReport& r = result.report;

  std::printf("output: %zu trajectories in %zu clusters, %zu suppressed\n",
              result.sanitized.size(), r.num_clusters,
              r.trashed_trajectories);
  std::printf("        total distortion %.3g, discernibility %.3g\n",
              r.total_distortion, r.discernibility);
  std::printf("        created %zu / deleted %zu points, runtime %.2fs\n",
              r.created_points, r.deleted_points, r.runtime_seconds);

  // 4. Export observability artifacts when asked for.
  if (!trace_out.empty()) {
    Status s = telemetry.WriteChromeTrace(trace_out);
    if (!s.ok()) {
      std::cerr << "trace export failed: " << s << "\n";
      return 1;
    }
    std::printf("trace:  wrote %s (open in chrome://tracing)\n",
                trace_out.c_str());
    std::printf("%s", telemetry.trace().Summary(5).c_str());
  }
  if (!metrics_out.empty()) {
    Status s = WriteJsonFile(MetricsToJson(r.metrics), metrics_out);
    if (!s.ok()) {
      std::cerr << "metrics export failed: " << s << "\n";
      return 1;
    }
    std::printf("metrics: wrote %s (%zu counters)\n", metrics_out.c_str(),
                r.metrics.counters.size());
  }

  // 5. Audit: every published cluster must be a true (k,delta)-anonymity
  //    set satisfying each member's personal preference.
  const VerificationReport audit = VerifyAnonymity(dataset, result);
  std::printf("audit:  %zu clusters checked, %zu violations -> %s\n",
              audit.clusters_checked, audit.violations,
              audit.ok ? "OK" : "FAILED");
  return audit.ok ? 0 : 1;
}
