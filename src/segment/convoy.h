#ifndef WCOP_SEGMENT_CONVOY_H_
#define WCOP_SEGMENT_CONVOY_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/run_context.h"
#include "common/telemetry.h"
#include "segment/segmenter.h"
#include "traj/dataset.h"

namespace wcop {

/// Parameters of convoy discovery (Jeung et al., VLDB 2008): a convoy is a
/// group of at least `min_objects` trajectories that are density-connected
/// w.r.t. `eps` during at least `min_duration_snapshots` consecutive
/// snapshots taken every `snapshot_interval` seconds.
struct ConvoyOptions {
  size_t min_objects = 3;                 ///< m
  double eps = 100.0;                     ///< e (metres)
  size_t min_duration_snapshots = 3;      ///< k
  double snapshot_interval = 60.0;        ///< seconds between snapshots
  size_t min_sub_trajectory_points = 2;   ///< segmentation granularity floor

  /// Optional execution context (deadline / cancellation / budget), polled
  /// per snapshot by DiscoverConvoys. Null means unbounded.
  const RunContext* run_context = nullptr;

  /// Optional telemetry sink: `convoy.snapshots` / `convoy.discovered`
  /// counters, grid-index counters via GridIndex::AttachTelemetry, plus a
  /// `segment/convoy` span. Null (the default) disables instrumentation.
  /// Non-owning.
  telemetry::Telemetry* telemetry = nullptr;
};

/// A discovered convoy: the trajectory ids travelling together and the
/// closed time interval during which they did.
struct Convoy {
  std::set<int64_t> members;
  double start_time = 0.0;
  double end_time = 0.0;

  size_t DurationSnapshots(double interval) const {
    return interval <= 0.0
               ? 0
               : static_cast<size_t>((end_time - start_time) / interval) + 1;
  }
};

/// Runs the CMC (coherent moving cluster) algorithm: per-snapshot DBSCAN
/// over the interpolated positions of all trajectories alive at that
/// snapshot, then intersection of candidate convoys across consecutive
/// snapshots. Returns maximal convoys meeting the duration requirement.
Result<std::vector<Convoy>> DiscoverConvoys(const Dataset& dataset,
                                            const ConvoyOptions& options);

/// The Segmenter used by WCOP-SA-Convoys: each trajectory is cut at the
/// boundaries of every convoy interval it participates in, so that the
/// pieces moving together with a group become their own sub-trajectories
/// (Figure 2(c) of the paper).
class ConvoySegmenter : public Segmenter {
 public:
  explicit ConvoySegmenter(ConvoyOptions options = {}) : options_(options) {}

  std::string name() const override { return "convoy"; }
  Result<Dataset> Segment(const Dataset& dataset) override;

  const ConvoyOptions& options() const { return options_; }

 private:
  ConvoyOptions options_;
};

}  // namespace wcop

#endif  // WCOP_SEGMENT_CONVOY_H_
