#include "common/arg_parser.h"

#include <cstdlib>

namespace wcop {

ArgParser::ArgParser(int argc, char** argv) {
  if (argc > 0) {
    program_name_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      flags_[body] = "true";
    }
  }
}

bool ArgParser::Has(const std::string& name) const {
  return flags_.count(name) != 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

int64_t ArgParser::GetInt(const std::string& name, int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return fallback;
  }
  char* end = nullptr;
  int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  return (end == nullptr || *end != '\0') ? fallback : value;
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return fallback;
  }
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  return (end == nullptr || *end != '\0') ? fallback : value;
}

bool ArgParser::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  return fallback;
}

}  // namespace wcop
