# Empty dependencies file for wcop_exp.
# This may be replaced when dependencies are built.
