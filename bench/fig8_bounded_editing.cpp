// Reproduces Figure 8: WCOP-B total distortion as the edit size grows, for
// datasets of whole trajectories (WCOP-CT input) and of sub-trajectories
// (WCOP-SA Traclus / Convoys inputs), under two requirement regimes:
//   (a) medium demand:  k_max = 25,  delta_max = 500
//   (b) high demand:    k_max = 100, delta_max = 1400
//
// Expected shape (Section 6.5): distortion is non-monotone in edit size —
// editing relaxes clustering pressure but each edited trajectory pays a DE
// penalty proportional to its edit cost, so an 'optimal' edit size exists.
//
// Run:  ./fig8_bounded_editing [--points=100] [--max-edit=14] [--step=2]
//                              [--json-out=FILE]

#include <cstdio>
#include <iostream>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/table_printer.h"

using namespace wcop;
using namespace wcop::bench;

namespace {

struct Series {
  std::string name;
  std::vector<WcopBRound> rounds;
  double unedited = 0.0;  // edit size 0 baseline (plain WCOP-CT)
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchScale scale = BenchScale::FromArgs(args);
  if (!args.Has("points")) {
    scale.points = 100;  // WCOP-B re-anonymizes once per round: keep modest
  }
  const size_t max_edit = static_cast<size_t>(args.GetInt("max-edit", 14));
  const size_t step = static_cast<size_t>(args.GetInt("step", 2));
  JsonOut json_out(args);
  const Dataset base = MakeBenchDataset(scale);

  TraclusSegmenter traclus(BenchTraclusOptions());
  ConvoySegmenter convoys(BenchConvoyOptions());
  Result<Dataset> by_traclus = traclus.Segment(base);
  Result<Dataset> by_convoys = convoys.Segment(base);
  if (!by_traclus.ok() || !by_convoys.ok()) {
    std::cerr << "segmentation failed\n";
    return 1;
  }

  struct Regime {
    const char* title;
    int k_max;
    double delta_max;
  };
  const Regime regimes[] = {
      {"Figure 8(a): distortion vs edit size (kmax=25, dmax=500)", 25, 500.0},
      {"Figure 8(b): distortion vs edit size (kmax=100, dmax=1400)", 100,
       1400.0},
  };

  for (const Regime& regime : regimes) {
    // Assign the regime's requirements to parents, propagate to children.
    Dataset parents = base;
    AssignPaperRequirements(&parents, regime.k_max, regime.delta_max,
                            scale.seed + 500 + regime.k_max);
    auto propagate = [&](Dataset segmented) {
      for (Trajectory& sub : segmented.mutable_trajectories()) {
        const Trajectory* parent = parents.FindById(sub.parent_id());
        if (parent != nullptr) {
          sub.set_requirement(parent->requirement());
        }
      }
      return segmented;
    };

    std::vector<std::pair<std::string, Dataset>> inputs;
    inputs.emplace_back("WCOP-CT", parents);
    inputs.emplace_back("WCOP-SA Traclus", propagate(*by_traclus));
    inputs.emplace_back("WCOP-SA Convoys", propagate(*by_convoys));

    std::vector<Series> series;
    for (auto& [name, dataset] : inputs) {
      WcopOptions options;
      options.seed = scale.seed + 2;
      telemetry::Telemetry tel;
      options.telemetry = &tel;
      Result<AnonymizationResult> unedited = RunWcopCt(dataset, options);
      if (!unedited.ok()) {
        std::cerr << name << " unedited run failed: " << unedited.status()
                  << "\n";
        return 1;
      }
      WcopBOptions b_options;
      b_options.distort_max = 0.0;  // force the full sweep
      b_options.step = step;
      b_options.max_edit_size = max_edit;
      Result<WcopBResult> swept = RunWcopB(dataset, options, b_options);
      if (!swept.ok()) {
        std::cerr << name << " WCOP-B sweep failed: " << swept.status()
                  << "\n";
        return 1;
      }
      // One timed record per full sweep, plus an untimed data point per
      // editing round (the Figure 8 curve itself).
      const std::string json_name =
          name == "WCOP-CT" ? "fig8/wcop_ct"
          : name == "WCOP-SA Traclus" ? "fig8/sa_traclus"
                                      : "fig8/sa_convoys";
      json_out.Add(json_name + "/sweep",
                   {{"points", static_cast<double>(scale.points)},
                    {"kmax", static_cast<double>(regime.k_max)},
                    {"dmax", regime.delta_max},
                    {"max_edit", static_cast<double>(max_edit)},
                    {"step", static_cast<double>(step)},
                    {"unedited_distortion",
                     unedited->report.total_distortion}},
                   swept->anonymization.report.runtime_seconds,
                   swept->anonymization.report.metrics);
      for (const WcopBRound& round : swept->rounds) {
        json_out.Add(json_name + "/round",
                     {{"kmax", static_cast<double>(regime.k_max)},
                      {"dmax", regime.delta_max},
                      {"edit_size", static_cast<double>(round.edit_size)},
                      {"total_distortion", round.total_distortion},
                      {"editing_distortion", round.editing_distortion},
                      {"ttd", round.ttd},
                      {"clusters",
                       static_cast<double>(round.num_clusters)},
                      {"trashed", static_cast<double>(round.trashed)}},
                     0.0, {});
      }
      Series s;
      s.name = name;
      s.unedited = unedited->report.total_distortion;
      s.rounds = swept->rounds;
      series.push_back(std::move(s));
    }

    PrintHeader(regime.title);
    std::vector<std::string> header = {"edit size"};
    for (const Series& s : series) {
      header.push_back(s.name);
    }
    TablePrinter table(header);
    std::vector<std::string> zero_row = {"0"};
    for (const Series& s : series) {
      zero_row.push_back(FormatSignificant(s.unedited, 4));
    }
    table.AddRow(zero_row);
    for (size_t round = 0; round < series[0].rounds.size(); ++round) {
      std::vector<std::string> row = {
          std::to_string(series[0].rounds[round].edit_size)};
      for (const Series& s : series) {
        row.push_back(round < s.rounds.size()
                          ? FormatSignificant(
                                s.rounds[round].total_distortion, 4)
                          : "-");
      }
      table.AddRow(row);
    }
    table.Print(std::cout);

    // Shape checks per Section 6.5: (i) editing reduces distortion below
    // the unedited run for at least one pipeline (the paper reports ~10%
    // gains around edit size 5 for most approaches); (ii) distortion is
    // non-monotone in edit size (each edit also pays a DE penalty), so an
    // 'optimal' edit size exists rather than more-is-better.
    bool any_improves = false;
    bool any_non_monotone = false;
    for (const Series& s : series) {
      double best = s.unedited;
      bool rose = false, fell = false;
      double prev = s.unedited;
      for (const WcopBRound& round : s.rounds) {
        best = std::min(best, round.total_distortion);
        rose |= round.total_distortion > prev * (1.0 + 1e-6);
        fell |= round.total_distortion < prev * (1.0 - 1e-6);
        prev = round.total_distortion;
      }
      any_improves |= best < s.unedited * (1.0 - 1e-6);
      any_non_monotone |= rose && fell;
    }
    std::printf("shape checks vs paper: [%s] editing lowers some pipeline's "
                "distortion; [%s] distortion non-monotone in edit size\n",
                any_improves ? "ok" : "MISMATCH",
                any_non_monotone ? "ok" : "MISMATCH");
  }
  if (!json_out.Flush()) {
    return 1;
  }
  return 0;
}
