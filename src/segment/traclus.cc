#include "segment/traclus.h"

#include <algorithm>
#include <cmath>

#include "cluster/dbscan.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "index/grid_index.h"

namespace wcop {

namespace {

/// log2 clamped below at 0 bits (distances under one metre cost nothing);
/// matches the convention of the TRACLUS MDL formulation for metric data.
double Log2Cost(double value) { return std::log2(std::max(value, 1.0)); }

/// L(H) + L(D|H) for replacing points [i..j] of `t` by the single segment
/// (t[i], t[j]). L(D|H) charges each spanned raw segment its perpendicular
/// and angular deviation from the hypothesis (Lee et al., Definition of
/// MDL_par: a per-segment sum of log2 terms).
double MdlPartition(const Trajectory& t, size_t i, size_t j) {
  const LineSegment hypothesis(t[i], t[j]);
  double cost = Log2Cost(hypothesis.Length());
  for (size_t k = i; k < j; ++k) {
    const LineSegment piece(t[k], t[k + 1]);
    const SegmentDistanceComponents c =
        ComputeSegmentDistanceComponents(hypothesis, piece);
    cost += Log2Cost(c.perpendicular) + Log2Cost(c.angular);
  }
  return cost;
}

/// L(H) with no partitioning: describe every raw segment individually
/// (L(D|H) is zero by definition).
double MdlNoPartition(const Trajectory& t, size_t i, size_t j) {
  double cost = 0.0;
  for (size_t k = i; k < j; ++k) {
    cost += Log2Cost(SpatialDistance(t[k], t[k + 1]));
  }
  return cost;
}

}  // namespace

std::vector<size_t> TraclusCharacteristicPoints(const Trajectory& t,
                                                const TraclusOptions& options) {
  std::vector<size_t> char_points;
  if (t.empty()) {
    return char_points;
  }
  char_points.push_back(0);
  if (t.size() == 1) {
    return char_points;
  }
  // Approximate trajectory partitioning (Lee et al., Figure 8): grow a
  // window until partitioning at the previous point is cheaper than not
  // partitioning.
  size_t start = 0;
  size_t length = 1;
  while (start + length < t.size()) {
    const size_t curr = start + length;
    const double cost_par = MdlPartition(t, start, curr);
    const double cost_nopar = MdlNoPartition(t, start, curr);
    if (cost_par > cost_nopar + options.mdl_advantage) {
      const size_t cut = curr - 1;
      if (cut > char_points.back()) {
        char_points.push_back(cut);
      }
      start = cut;
      length = 1;
    } else {
      ++length;
    }
  }
  if (char_points.back() != t.size() - 1) {
    char_points.push_back(t.size() - 1);
  }
  return char_points;
}

std::vector<TaggedSegment> ExtractCharacteristicSegments(
    const Dataset& dataset, const TraclusOptions& options) {
  // MDL partitioning is independent per trajectory (and quadratic in its
  // length) — compute the characteristic points into per-trajectory slots,
  // then flatten serially so the segment order stays the input order.
  const size_t n = dataset.size();
  std::vector<std::vector<size_t>> cps_of(n);
  parallel::ParallelOptions par;
  par.threads = options.threads;
  par.telemetry = options.telemetry;
  // No context attached: the batch cannot fail.
  Status batch = parallel::ParallelFor(
      n,
      [&](size_t i) {
        cps_of[i] = TraclusCharacteristicPoints(dataset[i], options);
      },
      par);
  (void)batch;
  std::vector<TaggedSegment> segments;
  for (size_t ti = 0; ti < n; ++ti) {
    const Trajectory& t = dataset[ti];
    const std::vector<size_t>& cps = cps_of[ti];
    for (size_t i = 0; i + 1 < cps.size(); ++i) {
      segments.push_back(TaggedSegment{
          LineSegment(t[cps[i]], t[cps[i + 1]]), t.id(), cps[i]});
    }
  }
  return segments;
}

SegmentClustering ClusterSegments(const std::vector<TaggedSegment>& segments,
                                  const TraclusOptions& options) {
  // Pre-filter candidates through a grid over segment midpoints: two
  // segments within distance eps must have midpoints within
  // eps_reach = eps + (len_a + len_b)/2; we bound segment length influence
  // by indexing midpoints and querying with eps + max_half_len + half_len.
  double max_half_len = 0.0;
  for (const TaggedSegment& s : segments) {
    max_half_len = std::max(max_half_len, 0.5 * s.segment.Length());
  }
  const double cell = std::max(options.eps, 1.0);
  GridIndex grid(cell);
  for (size_t i = 0; i < segments.size(); ++i) {
    const LineSegment& seg = segments[i].segment;
    grid.Insert(i, 0.5 * (seg.start.x + seg.end.x),
                0.5 * (seg.start.y + seg.end.y));
  }

  // The O(n * candidates) segment-distance matrix dominates TRACLUS; every
  // neighbourhood is independent, so precompute them in parallel (per-item
  // scratch keeps the workers share-nothing) and hand DBSCAN a lookup. The
  // candidate sets come from the deterministic grid and each list is built
  // by a single worker in candidate order, so the lists — and therefore the
  // DBSCAN labels — match the serial ones exactly.
  std::vector<std::vector<size_t>> neighbor_lists(segments.size());
  parallel::ParallelOptions par;
  par.threads = options.threads;
  par.telemetry = options.telemetry;
  Status batch = parallel::ParallelFor(
      segments.size(),
      [&](size_t item) {
        const LineSegment& seg = segments[item].segment;
        const double mx = 0.5 * (seg.start.x + seg.end.x);
        const double my = 0.5 * (seg.start.y + seg.end.y);
        std::vector<size_t> scratch;
        grid.CandidateQuery(mx, my,
                            options.eps + max_half_len + 0.5 * seg.Length(),
                            &scratch);
        std::vector<size_t>& out = neighbor_lists[item];
        for (size_t cand : scratch) {
          if (cand == item) {
            continue;
          }
          const double d = SegmentDistance(
              seg, segments[cand].segment, options.w_perpendicular,
              options.w_parallel, options.w_angular);
          if (d <= options.eps) {
            out.push_back(cand);
          }
        }
      },
      par);
  (void)batch;  // no context attached: the batch cannot fail
  auto neighbors = [&](size_t item) { return neighbor_lists[item]; };

  const DbscanResult db = Dbscan(segments.size(), options.min_lines, neighbors);
  return SegmentClustering{db.labels, db.num_clusters};
}

Trajectory RepresentativeTrajectory(const std::vector<TaggedSegment>& segments,
                                    const std::vector<size_t>& member_indices,
                                    const TraclusOptions& options) {
  if (member_indices.empty()) {
    return Trajectory();
  }
  // Average direction vector of the cluster (flip segments pointing against
  // the emerging majority so the average is stable).
  double vx = 0.0, vy = 0.0;
  for (size_t idx : member_indices) {
    const LineSegment& s = segments[idx].segment;
    double dx = s.end.x - s.start.x;
    double dy = s.end.y - s.start.y;
    if (dx * vx + dy * vy < 0.0) {
      dx = -dx;
      dy = -dy;
    }
    vx += dx;
    vy += dy;
  }
  const double norm = std::sqrt(vx * vx + vy * vy);
  if (norm == 0.0) {
    return Trajectory();
  }
  vx /= norm;
  vy /= norm;

  // Rotate so the average direction is the X' axis.
  auto to_rotated_x = [&](const Point& p) { return p.x * vx + p.y * vy; };
  auto to_rotated_y = [&](const Point& p) { return -p.x * vy + p.y * vx; };

  struct SweepEvent {
    double x;  ///< rotated x of a segment endpoint
  };
  std::vector<SweepEvent> events;
  events.reserve(member_indices.size() * 2);
  for (size_t idx : member_indices) {
    events.push_back({to_rotated_x(segments[idx].segment.start)});
    events.push_back({to_rotated_x(segments[idx].segment.end)});
  }
  std::sort(events.begin(), events.end(),
            [](const SweepEvent& a, const SweepEvent& b) { return a.x < b.x; });

  std::vector<Point> rep_points;
  double sweep_index = 0.0;
  for (const SweepEvent& ev : events) {
    // Average y' of all segments whose rotated-x span covers ev.x.
    double sum_y = 0.0;
    size_t count = 0;
    for (size_t idx : member_indices) {
      const LineSegment& s = segments[idx].segment;
      double xs = to_rotated_x(s.start);
      double xe = to_rotated_x(s.end);
      double ys = to_rotated_y(s.start);
      double ye = to_rotated_y(s.end);
      if (xs > xe) {
        std::swap(xs, xe);
        std::swap(ys, ye);
      }
      if (ev.x < xs || ev.x > xe) {
        continue;
      }
      const double span = xe - xs;
      const double y_at =
          span == 0.0 ? 0.5 * (ys + ye) : ys + (ev.x - xs) / span * (ye - ys);
      sum_y += y_at;
      ++count;
    }
    if (count < options.min_representative_lines) {
      continue;
    }
    const double avg_y = sum_y / static_cast<double>(count);
    // Rotate back to the original frame.
    const double px = ev.x * vx - avg_y * vy;
    const double py = ev.x * vy + avg_y * vx;
    if (!rep_points.empty() &&
        SpatialDistance(rep_points.back(), Point(px, py, 0.0)) < 1e-9) {
      continue;
    }
    rep_points.push_back(Point(px, py, sweep_index));
    sweep_index += 1.0;
  }
  return Trajectory(-1, std::move(rep_points));
}

TraclusClusteringResult RunTraclus(const Dataset& dataset,
                                   const TraclusOptions& options) {
  WCOP_TRACE_SPAN(options.telemetry, "segment/traclus_full");
  TraclusClusteringResult result;
  result.segments = ExtractCharacteristicSegments(dataset, options);
  result.clustering = ClusterSegments(result.segments, options);
  if (options.telemetry != nullptr) {
    telemetry::CounterAdd(
        options.telemetry->metrics().GetCounter("segment.segments_clustered"),
        result.segments.size());
  }
  result.representatives.reserve(
      static_cast<size_t>(result.clustering.num_clusters));
  // Group member indices per cluster, then sweep each for a representative.
  std::vector<std::vector<size_t>> members(
      static_cast<size_t>(result.clustering.num_clusters));
  for (size_t i = 0; i < result.segments.size(); ++i) {
    const int label = result.clustering.labels[i];
    if (label >= 0) {
      members[static_cast<size_t>(label)].push_back(i);
    }
  }
  for (size_t c = 0; c < members.size(); ++c) {
    Trajectory rep =
        RepresentativeTrajectory(result.segments, members[c], options);
    rep.set_id(static_cast<int64_t>(c));
    result.representatives.push_back(std::move(rep));
  }
  return result;
}

Result<Dataset> TraclusSegmenter::Segment(const Dataset& dataset) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  WCOP_TRACE_SPAN(options_.telemetry, "segment/traclus");
  telemetry::Counter* characteristic_points =
      options_.telemetry != nullptr
          ? options_.telemetry->metrics().GetCounter(
                "segment.characteristic_points")
          : nullptr;
  // The quadratic MDL partitioning fans out per trajectory; the context is
  // polled at chunk boundaries inside the batch. Failpoints, telemetry, and
  // the id-assigning cut pass stay serial (in input order) below.
  const size_t n = dataset.size();
  std::vector<std::vector<size_t>> cps_of(n);
  parallel::ParallelOptions par;
  par.threads = options_.threads;
  par.context = options_.run_context;
  par.telemetry = options_.telemetry;
  WCOP_RETURN_IF_ERROR(parallel::ParallelFor(
      n,
      [&](size_t i) {
        cps_of[i] = TraclusCharacteristicPoints(dataset[i], options_);
      },
      par));
  std::vector<Trajectory> out;
  int64_t next_id = 0;
  for (size_t ti = 0; ti < n; ++ti) {
    const Trajectory& t = dataset[ti];
    WCOP_FAILPOINT("segment.traclus");
    // Cooperative yield point: per-trajectory granularity bounds the
    // overshoot once the batch has returned.
    WCOP_RETURN_IF_ERROR(CheckRunContext(options_.run_context));
    const std::vector<size_t>& cps = cps_of[ti];
    telemetry::CounterAdd(characteristic_points, cps.size());
    // Characteristic points other than the endpoints become cut positions.
    std::vector<size_t> cuts;
    for (size_t cp : cps) {
      if (cp != 0 && cp + 1 != t.size()) {
        cuts.push_back(cp);
      }
    }
    CutAtIndices(t, cuts, options_.min_sub_trajectory_points, &next_id, &out);
  }
  return Dataset(std::move(out));
}

}  // namespace wcop
