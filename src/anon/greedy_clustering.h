#ifndef WCOP_ANON_GREEDY_CLUSTERING_H_
#define WCOP_ANON_GREEDY_CLUSTERING_H_

#include <vector>

#include "anon/types.h"
#include "common/result.h"
#include "common/rng.h"
#include "traj/dataset.h"

namespace wcop {

/// Output of WCOP-Clustering (Algorithm 3).
struct ClusteringOutcome {
  std::vector<AnonymityCluster> clusters;
  std::vector<size_t> trash;     ///< indices of suppressed trajectories
  size_t rounds = 0;             ///< radius relaxations performed + 1
  double final_radius = 0.0;     ///< the radius_max that produced the result
  /// Set when the run context tripped mid-clustering and
  /// `options.allow_partial_results` turned the trip into suppression of
  /// the unprocessed trajectories instead of an error. A degraded outcome
  /// may exceed trash_max; every emitted cluster is still a complete
  /// anonymity set.
  bool degraded = false;
  std::string degraded_reason;
};

/// WCOP-Clustering: greedy pivot-based clustering with per-cluster (k,delta)
/// maintenance (Algorithm 3 of the paper).
///
/// Repeatedly: pick a random unvisited pivot, grow its candidate cluster
/// with nearest unclustered neighbours while updating the cluster's k
/// (max of members) and delta (min of members) until |C| >= C.k; accept the
/// cluster when the pivot-to-member radius stays within radius_max.
/// Afterwards, leftovers join the nearest compatible pivot's cluster
/// (size >= tau.k - 1, cluster delta <= tau.delta, distance <= radius_max)
/// or fall into the trash. When the trash exceeds trash_max, radius_max is
/// relaxed geometrically and the whole process restarts.
///
/// Fails with Status::Unsatisfiable when max_clustering_rounds relaxations
/// still leave more than trash_max trajectories unassigned (e.g. some k_i
/// exceeds |D|).
Result<ClusteringOutcome> GreedyClustering(const Dataset& dataset,
                                           size_t trash_max,
                                           const WcopOptions& options);

}  // namespace wcop

#endif  // WCOP_ANON_GREEDY_CLUSTERING_H_
