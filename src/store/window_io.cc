#include "store/window_io.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "anon/streaming.h"
#include "common/failpoint.h"

namespace wcop {
namespace store {

namespace {

using CarryMap = std::map<int64_t, Trajectory>;

/// Loads the previous window's carry-over store into an id-keyed map. A
/// missing store (first window, or no carry configured) is an empty map;
/// a torn one is kDataLoss for the caller to surface. std::map keeps
/// deterministic iteration for the defensive leftover pass below.
Result<CarryMap> LoadCarryIn(const std::string& path) {
  CarryMap carry;
  if (path.empty()) {
    return carry;
  }
  Result<TrajectoryStoreReader> reader = TrajectoryStoreReader::Open(path);
  if (!reader.ok()) {
    if (reader.status().code() == StatusCode::kNotFound) {
      return carry;
    }
    return reader.status();
  }
  for (size_t i = 0; i < reader->size(); ++i) {
    WCOP_ASSIGN_OR_RETURN(Trajectory t, reader->Read(i));
    const int64_t id = t.id();
    carry.emplace(id, std::move(t));
  }
  return carry;
}

}  // namespace

Result<WindowExtraction> ExtractWindow(const TrajectoryStoreReader& source,
                                       const WindowExtractOptions& options) {
  if (!(options.window_end > options.window_start)) {
    return Status::InvalidArgument("window extraction: empty window");
  }
  if (options.window_out_path.empty() || options.carry_out_path.empty()) {
    return Status::InvalidArgument(
        "window extraction: output store paths are required");
  }
  WCOP_FAILPOINT("window_io.extract");
  const size_t min_points = std::max<size_t>(options.min_fragment_points, 1);

  WCOP_ASSIGN_OR_RETURN(CarryMap carry_in,
                        LoadCarryIn(options.carry_in_path));

  WCOP_ASSIGN_OR_RETURN(
      TrajectoryStoreWriter window_writer,
      TrajectoryStoreWriter::Create(options.window_out_path));
  WCOP_ASSIGN_OR_RETURN(TrajectoryStoreWriter carry_writer,
                        TrajectoryStoreWriter::Create(options.carry_out_path));

  WindowExtraction stats;
  stats.next_fragment_id = options.next_fragment_id;

  const std::vector<StoreEntry>& index = source.index();
  for (size_t i = 0; i < index.size(); ++i) {
    const StoreEntry& entry = index[i];
    const bool has_carry = carry_in.find(entry.id) != carry_in.end();
    // Index-only pruning: blocks with no lifetime overlap and no pending
    // carry are never read — the whole point of the out-of-core path.
    if (!has_carry && (entry.t_max < options.window_start ||
                       entry.t_min >= options.window_end)) {
      continue;
    }
    WCOP_ASSIGN_OR_RETURN(Trajectory t, source.Read(i));
    std::vector<Point> points;
    if (has_carry) {
      auto node = carry_in.extract(entry.id);
      points = std::move(node.mapped().mutable_points());
      ++stats.carried_in;
    }
    std::vector<Point> slice =
        SlicePointsInWindow(t, options.window_start, options.window_end);
    points.insert(points.end(), slice.begin(), slice.end());
    if (points.empty()) {
      continue;  // lifetime overlaps the window but no samples fall in it
    }
    if (points.size() >= min_points) {
      WCOP_RETURN_IF_ERROR(window_writer.Append(MakeWindowFragment(
          stats.next_fragment_id++, t, std::move(points))));
      ++stats.fragments;
    } else if (entry.t_max >= options.window_end) {
      // The trajectory continues: spill the short fragment so the next
      // window merges it instead of this window suppressing it. The record
      // keeps the source id (the merge key) and the user's requirement.
      Trajectory carry(t.id(), std::move(points), t.requirement());
      carry.set_object_id(t.object_id());
      carry.set_parent_id(t.parent_id());
      WCOP_RETURN_IF_ERROR(carry_writer.Append(carry));
      ++stats.carried_out;
    } else {
      ++stats.suppressed;
    }
  }

  // Defensive: a carry record whose source vanished from the window (index
  // says no overlap) is re-spilled verbatim rather than silently dropped —
  // std::map order keeps this deterministic.
  for (auto& [id, carry] : carry_in) {
    (void)id;
    WCOP_RETURN_IF_ERROR(carry_writer.Append(carry));
    ++stats.carried_out;
  }

  WCOP_RETURN_IF_ERROR(carry_writer.Finish());
  WCOP_FAILPOINT("window_io.carry_saved");
  WCOP_RETURN_IF_ERROR(window_writer.Finish());
  return stats;
}

}  // namespace store
}  // namespace wcop
