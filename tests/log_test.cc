// Structured logging subsystem: level/format parsing, text and JSON line
// shapes, field rendering and JSON escaping, level filtering, context
// loggers, and the per-second rate limiter with its "suppressed" note.

#include "common/log.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/arg_parser.h"
#include "gtest/gtest.h"

namespace wcop {
namespace log {
namespace {

/// Captures everything a logger writes into a string via a tmpfile stream.
class CaptureStream {
 public:
  CaptureStream() : stream_(std::tmpfile()) {}
  ~CaptureStream() {
    if (stream_ != nullptr) {
      std::fclose(stream_);
    }
  }

  FILE* stream() { return stream_; }

  std::string Contents() {
    std::fflush(stream_);
    std::string out;
    long size = std::ftell(stream_);
    std::rewind(stream_);
    out.resize(static_cast<size_t>(size));
    const size_t read = std::fread(out.data(), 1, out.size(), stream_);
    out.resize(read);
    std::fseek(stream_, 0, SEEK_END);
    return out;
  }

 private:
  FILE* stream_;
};

TEST(LogParse, LevelsAndFormats) {
  Level level = Level::kInfo;
  EXPECT_TRUE(ParseLevel("debug", &level));
  EXPECT_EQ(level, Level::kDebug);
  EXPECT_TRUE(ParseLevel("warn", &level));
  EXPECT_EQ(level, Level::kWarn);
  EXPECT_TRUE(ParseLevel("off", &level));
  EXPECT_EQ(level, Level::kOff);
  EXPECT_FALSE(ParseLevel("loud", &level));
  EXPECT_EQ(level, Level::kOff);  // untouched on failure

  Format format = Format::kText;
  EXPECT_TRUE(ParseFormat("json", &format));
  EXPECT_EQ(format, Format::kJson);
  EXPECT_FALSE(ParseFormat("xml", &format));
}

TEST(Log, TextFormatLeadsWithMessage) {
  CaptureStream capture;
  Logger logger;
  logger.SetStream(capture.stream());
  logger.set_name("wcop_serve");
  logger.Log(Level::kInfo, "listening", {{"socket", "/tmp/x.sock"}});
  const std::string line = capture.Contents();
  // `name: message` first so log greps keyed on the message keep working,
  // fields appended as key=value.
  EXPECT_EQ(line.rfind("wcop_serve: listening", 0), 0u) << line;
  EXPECT_NE(line.find("socket=/tmp/x.sock"), std::string::npos) << line;
}

TEST(Log, TextFormatMarksWarningsAndErrors) {
  CaptureStream capture;
  Logger logger;
  logger.SetStream(capture.stream());
  logger.Log(Level::kWarn, "queue full");
  logger.Log(Level::kError, "ledger write failed");
  const std::string out = capture.Contents();
  EXPECT_NE(out.find("warning: queue full"), std::string::npos) << out;
  EXPECT_NE(out.find("error: ledger write failed"), std::string::npos) << out;
}

TEST(Log, JsonFormatIsOneObjectPerLine) {
  CaptureStream capture;
  Logger logger;
  logger.SetStream(capture.stream());
  logger.set_format(Format::kJson);
  logger.set_name("svc");
  logger.Log(Level::kWarn, "odd \"input\"",
             {{"path", "/tmp/a b"}, {"count", 7}, {"ok", false}});
  const std::string line = capture.Contents();
  EXPECT_EQ(line.rfind("{\"ts\":", 0), 0u) << line;
  EXPECT_EQ(line.back(), '\n') << line;
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"logger\":\"svc\""), std::string::npos) << line;
  // The message's inner quotes are escaped; numeric and boolean fields are
  // bare, strings quoted.
  EXPECT_NE(line.find("\"msg\":\"odd \\\"input\\\"\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"path\":\"/tmp/a b\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"count\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\":false"), std::string::npos) << line;
}

TEST(Log, LevelFilterDropsBelowThreshold) {
  CaptureStream capture;
  Logger logger;
  logger.SetStream(capture.stream());
  logger.set_level(Level::kWarn);
  EXPECT_FALSE(logger.Enabled(Level::kInfo));
  EXPECT_TRUE(logger.Enabled(Level::kError));
  logger.Log(Level::kDebug, "dropped debug");
  logger.Log(Level::kInfo, "dropped info");
  logger.Log(Level::kError, "kept");
  const std::string out = capture.Contents();
  EXPECT_EQ(out.find("dropped"), std::string::npos) << out;
  EXPECT_NE(out.find("kept"), std::string::npos) << out;
}

TEST(Log, OffSilencesEverything) {
  CaptureStream capture;
  Logger logger;
  logger.SetStream(capture.stream());
  logger.set_level(Level::kOff);
  logger.Log(Level::kError, "nope");
  EXPECT_EQ(capture.Contents(), "");
}

TEST(Log, ContextLoggerMergesFixedFields) {
  CaptureStream capture;
  Logger logger;
  logger.SetStream(capture.stream());
  ContextLogger base(&logger);
  const ContextLogger jlog =
      base.With({"job", 42}).With({"tenant", "alice"});
  jlog.Info("claimed", {{"attempt", 2}});
  const std::string line = capture.Contents();
  EXPECT_NE(line.find("job=42"), std::string::npos) << line;
  EXPECT_NE(line.find("tenant=alice"), std::string::npos) << line;
  EXPECT_NE(line.find("attempt=2"), std::string::npos) << line;
}

TEST(Log, RateLimiterSuppressesAndAccounts) {
  CaptureStream capture;
  Logger logger;
  logger.SetStream(capture.stream());
  logger.set_max_per_second(1);
  for (int i = 0; i < 100; ++i) {
    logger.Log(Level::kInfo, "spam");
  }
  // At most one record per wall-clock second; the burst can straddle one
  // boundary, so at most 2 lines emitted, at least 98 dropped.
  const std::string out = capture.Contents();
  size_t lines = 0;
  for (char c : out) {
    lines += c == '\n';
  }
  EXPECT_LE(lines, 2u) << out;
  EXPECT_GE(logger.suppressed_total(), 98u);
}

TEST(Log, SuppressedCountSurfacesOnNextRecord) {
  CaptureStream capture;
  Logger logger;
  logger.SetStream(capture.stream());
  logger.set_max_per_second(1);
  for (int i = 0; i < 50; ++i) {
    logger.Log(Level::kInfo, "spam");
  }
  // The suppression count flushes into the first record of the next
  // 1-second window.
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  logger.Log(Level::kInfo, "after the storm");
  const std::string out = capture.Contents();
  EXPECT_NE(out.find("suppressed"), std::string::npos) << out;
}

TEST(Log, ZeroMaxPerSecondDisablesLimiting) {
  CaptureStream capture;
  Logger logger;
  logger.SetStream(capture.stream());
  logger.set_max_per_second(0);
  for (int i = 0; i < 500; ++i) {
    logger.Log(Level::kInfo, "burst");
  }
  EXPECT_EQ(logger.suppressed_total(), 0u);
  size_t lines = 0;
  for (char c : capture.Contents()) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, 500u);
}

TEST(Log, ConfigureFromArgsAppliesSharedFlags) {
  const char* argv[] = {"binary", "--log-level=debug", "--log-format=json"};
  const ArgParser args(3, const_cast<char**>(argv));
  ASSERT_TRUE(ConfigureFromArgs(args, "log_test"));
  EXPECT_EQ(Logger::Default().level(), Level::kDebug);
  EXPECT_EQ(Logger::Default().format(), Format::kJson);
  // Restore the process-wide defaults for other tests in this binary.
  Logger::Default().set_level(Level::kInfo);
  Logger::Default().set_format(Format::kText);
}

TEST(Log, ConfigureFromArgsRejectsUnknownValues) {
  const char* argv[] = {"binary", "--log-level=shouty"};
  const ArgParser args(2, const_cast<char**>(argv));
  CaptureStream capture;
  Logger::Default().SetStream(capture.stream());
  EXPECT_FALSE(ConfigureFromArgs(args, "log_test"));
  Logger::Default().SetStream(stderr);
}

}  // namespace
}  // namespace log
}  // namespace wcop
