# Empty compiler generated dependencies file for wcop_cluster.
# This may be replaced when dependencies are built.
