#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "anon/streaming.h"
#include "common/snapshot.h"
#include "anon/wcop_b.h"
#include "anon/wcop_ct.h"
#include "anon/wcop_sa.h"
#include "data/geolife_parser.h"
#include "geo/projection.h"
#include "segment/convoy.h"
#include "segment/traclus.h"
#include "test_util.h"
#include "traj/io.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

// Every test disarms on teardown so a failed assertion cannot leak an armed
// site into later tests (ScopedFailpoint does the same per-site; this is the
// belt to its suspenders).
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }

  std::string TempPath(const std::string& name) {
    return (std::filesystem::path(::testing::TempDir()) / name).string();
  }
};

// ---------------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------------

TEST_F(FailpointTest, DisarmedRegistryIsInert) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  EXPECT_FALSE(registry.any_armed());
  EXPECT_TRUE(registry.Fire("nonexistent.site").ok());
  EXPECT_TRUE(registry.ArmedSites().empty());
}

TEST_F(FailpointTest, ArmFireDisarm) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.Arm("test.site", Status::IoError("injected"));
  EXPECT_TRUE(registry.any_armed());
  ASSERT_EQ(registry.ArmedSites().size(), 1u);
  EXPECT_EQ(registry.ArmedSites().front(), "test.site");

  Status s = registry.Fire("test.site");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_TRUE(registry.Fire("other.site").ok());

  registry.Disarm("test.site");
  EXPECT_FALSE(registry.any_armed());
  EXPECT_TRUE(registry.Fire("test.site").ok());
}

TEST_F(FailpointTest, MaxFiresSelfDisarms) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.Arm("test.limited", Status::Internal("boom"), /*max_fires=*/2);
  EXPECT_FALSE(registry.Fire("test.limited").ok());
  EXPECT_FALSE(registry.Fire("test.limited").ok());
  EXPECT_TRUE(registry.Fire("test.limited").ok());  // exhausted -> disarmed
  EXPECT_FALSE(registry.any_armed());
  EXPECT_GE(registry.HitCount("test.limited"), 2u);
}

TEST_F(FailpointTest, ReArmingOverwrites) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  registry.Arm("test.site", Status::Internal("first"));
  registry.Arm("test.site", Status::IoError("second"));
  EXPECT_EQ(registry.ArmedSites().size(), 1u);
  EXPECT_EQ(registry.Fire("test.site").code(), StatusCode::kIoError);
  registry.Disarm("test.site");
  EXPECT_FALSE(registry.any_armed());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint fp("test.scoped", Status::Internal("boom"));
    EXPECT_TRUE(FailpointRegistry::Instance().any_armed());
  }
  EXPECT_FALSE(FailpointRegistry::Instance().any_armed());
}

// HitCount with nothing armed: the disarmed fast path skips the registry,
// but EnableHitCounting(true) makes every hit observable anyway — the
// documented fix for the old "counts only while armed" inconsistency.
TEST_F(FailpointTest, HitCountingWorksWithNothingArmed) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  ASSERT_FALSE(registry.any_armed());
  EXPECT_FALSE(registry.active());

  const uint64_t before = registry.HitCount("test.counted");
  auto hit_site = []() -> Status {
    WCOP_FAILPOINT("test.counted");
    return Status::OK();
  };
  // Counting off, nothing armed: the macro's fast path skips Fire().
  EXPECT_TRUE(hit_site().ok());
  EXPECT_EQ(registry.HitCount("test.counted"), before);

  registry.EnableHitCounting(true);
  EXPECT_TRUE(registry.active());
  EXPECT_TRUE(hit_site().ok());
  EXPECT_TRUE(hit_site().ok());
  EXPECT_EQ(registry.HitCount("test.counted"), before + 2);
  registry.EnableHitCounting(false);
  EXPECT_FALSE(registry.active());
}

// ---------------------------------------------------------------------------
// WCOP_FAILPOINTS-style spec parsing (ArmFromSpec).
// ---------------------------------------------------------------------------

TEST_F(FailpointTest, ArmFromSpecArmsPlainSites) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromSpec("test.one,test.two").ok());
  EXPECT_EQ(registry.ArmedSites().size(), 2u);
  EXPECT_EQ(registry.Fire("test.one").code(), StatusCode::kInternal);
  EXPECT_EQ(registry.Fire("test.two").code(), StatusCode::kInternal);
}

TEST_F(FailpointTest, ArmFromSpecTrimsWhitespaceAndSkipsEmptySegments) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromSpec("  test.one , \ttest.two\n,, ,").ok());
  EXPECT_EQ(registry.ArmedSites().size(), 2u);
  EXPECT_FALSE(registry.Fire("test.one").ok());
  EXPECT_FALSE(registry.Fire("test.two").ok());
  // An all-whitespace spec arms nothing and is not an error.
  registry.DisarmAll();
  ASSERT_TRUE(registry.ArmFromSpec("   ").ok());
  EXPECT_FALSE(registry.any_armed());
}

TEST_F(FailpointTest, ArmFromSpecRejectsMalformedSegments) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  EXPECT_EQ(registry.ArmFromSpec("test.site:explode").code(),
            StatusCode::kInvalidArgument);
  registry.DisarmAll();
  EXPECT_EQ(registry.ArmFromSpec("test.site:abort@0").code(),
            StatusCode::kInvalidArgument);
  registry.DisarmAll();
  EXPECT_EQ(registry.ArmFromSpec("test.site:abort@notanumber").code(),
            StatusCode::kInvalidArgument);
  registry.DisarmAll();
  EXPECT_EQ(registry.ArmFromSpec(":abort").code(),
            StatusCode::kInvalidArgument);
  registry.DisarmAll();
  // Well-formed segments before the malformed one are still armed.
  EXPECT_FALSE(registry.ArmFromSpec("test.good,test.bad:explode").ok());
  EXPECT_EQ(registry.ArmedSites().size(), 1u);
  EXPECT_EQ(registry.ArmedSites().front(), "test.good");
}

// abort-mode countdown semantics are observable without dying: earlier hits
// of site:abort@N pass through OK (the abort itself is exercised by the
// fork/exec crash-recovery harness, where the child is expendable).
TEST_F(FailpointTest, AbortModeCountsDownWithoutInjectingStatus) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromSpec("test.boom:abort@3").ok());
  EXPECT_TRUE(registry.any_armed());
  EXPECT_TRUE(registry.Fire("test.boom").ok());  // hit 1 of 3: no abort yet
  EXPECT_TRUE(registry.Fire("test.boom").ok());  // hit 2 of 3
  registry.Disarm("test.boom");                  // defuse before hit 3
  EXPECT_TRUE(registry.Fire("test.boom").ok());
}

// ---------------------------------------------------------------------------
// errno-injection mode: site:errno=ENOSPC[@N] lets the first N-1 hits
// through, injects exactly one IoError naming the errno, then disarms —
// modelling a full disk striking one specific write in a publish sequence.
// ---------------------------------------------------------------------------

TEST_F(FailpointTest, ErrnoModeInjectsIoErrorOnce) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromSpec("test.publish:errno=ENOSPC").ok());
  Status s = registry.Fire("test.publish");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("ENOSPC"), std::string::npos) << s;
  // One-shot: the "disk" has space again, and the site is disarmed.
  EXPECT_TRUE(registry.Fire("test.publish").ok());
  EXPECT_FALSE(registry.any_armed());
}

TEST_F(FailpointTest, ErrnoModeAtNSkipsEarlierHits) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromSpec("test.write:errno=EIO@3").ok());
  EXPECT_TRUE(registry.Fire("test.write").ok());  // hit 1
  EXPECT_TRUE(registry.Fire("test.write").ok());  // hit 2
  Status s = registry.Fire("test.write");         // hit 3: injected
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("EIO"), std::string::npos) << s;
  EXPECT_TRUE(registry.Fire("test.write").ok());
  EXPECT_FALSE(registry.any_armed());
}

TEST_F(FailpointTest, ErrnoModeRejectsUnknownErrnoName) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  Status s = registry.ArmFromSpec("test.write:errno=EWHATEVER");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("EWHATEVER"), std::string::npos) << s;
  EXPECT_FALSE(registry.any_armed());
}

// The errno mode composes with the existing write-site instrumentation: an
// injected ENOSPC on snapshot.write surfaces as the snapshot writer's
// IoError, exactly like a real short write.
TEST_F(FailpointTest, ErrnoModeFiresThroughSnapshotWriteSite) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.ArmFromSpec("snapshot.write:errno=ENOSPC").ok());
  const std::string path = TempPath("failpoint_errno_snapshot.snap");
  Status s = WriteSnapshotFile(path, "payload bytes", /*format_version=*/1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("ENOSPC"), std::string::npos) << s;
  // The failed publish leaves no committed artifact behind.
  EXPECT_FALSE(std::filesystem::exists(path));
  std::filesystem::remove(path + ".tmp");
}

// ---------------------------------------------------------------------------
// Fault injection through every instrumented pipeline boundary. Each test
// arms exactly one production site and asserts the enclosing driver returns
// the injected Status cleanly (no crash, no partial mutation escaping as a
// published result).
// ---------------------------------------------------------------------------

TEST_F(FailpointTest, InjectCsvReadLine) {
  const Dataset d = SmallSynthetic(5, 10);
  const std::string path = TempPath("failpoint_csv_test.csv");
  ASSERT_TRUE(WriteDatasetCsv(d, path).ok());

  ScopedFailpoint fp("csv.read_line", Status::IoError("injected read error"));
  Result<Dataset> result = ReadDatasetCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError) << result.status();
  std::filesystem::remove(path);
}

// The retry-wrapped parser rides over transient injected I/O failures and
// returns the parsed dataset; a parse error is terminal on the first try.
TEST_F(FailpointTest, CsvRetryRecoversFromTransientIo) {
  const Dataset d = SmallSynthetic(5, 10);
  const std::string path = TempPath("failpoint_csv_retry_test.csv");
  ASSERT_TRUE(WriteDatasetCsv(d, path).ok());

  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.sleep_between_attempts = false;
  {
    ScopedFailpoint fp("csv.read_line", Status::IoError("transient"),
                       /*max_fires=*/2);
    Result<Dataset> result = ReadDatasetCsvRetry(path, retry);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->size(), d.size());
  }
  {
    ScopedFailpoint fp("csv.read_line", Status::ParseError("bad cell"),
                       /*max_fires=*/2);
    Result<Dataset> result = ReadDatasetCsvRetry(path, retry);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
    // Non-retryable: the second injected fire was never consumed.
    EXPECT_FALSE(ReadDatasetCsv(path).ok());
  }
  std::filesystem::remove(path);
}

TEST_F(FailpointTest, InjectGeoLifeReadLine) {
  const Dataset d = SmallSynthetic(2, 20);
  const LocalProjection projection(39.9057, 116.3913);
  const std::string path = TempPath("failpoint_geolife_test.plt");
  ASSERT_TRUE(
      WritePltFile(*d.FindById(d.trajectories().front().id()), projection, path)
          .ok());

  ScopedFailpoint fp("geolife.read_line", Status::IoError("injected"));
  Result<Trajectory> result = ParsePltFile(path, projection);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError) << result.status();
  std::filesystem::remove(path);
}

TEST_F(FailpointTest, InjectGeoLifeOpenFile) {
  const Dataset d = SmallSynthetic(3, 20);
  const LocalProjection projection(39.9057, 116.3913);
  const std::string root = TempPath("failpoint_geolife_dir");
  ASSERT_TRUE(WriteGeoLifeDirectory(d, projection, root).ok());

  ScopedFailpoint fp("geolife.open_file", Status::IoError("injected"));
  Result<Dataset> result = LoadGeoLifeDirectory(root);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError) << result.status();
  std::filesystem::remove_all(root);
}

TEST_F(FailpointTest, InjectGreedyClusteringRound) {
  const Dataset d = SmallSynthetic(20, 20);
  ScopedFailpoint fp("cluster.greedy_round",
                     Status::ResourceExhausted("injected"));
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
}

TEST_F(FailpointTest, InjectAgglomerativeRound) {
  const Dataset d = SmallSynthetic(20, 20);
  WcopOptions options;
  options.clustering_algo = WcopOptions::ClusteringAlgo::kAgglomerative;
  ScopedFailpoint fp("cluster.agglomerative_round",
                     Status::Internal("injected"));
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal) << result.status();
}

TEST_F(FailpointTest, InjectClusterTranslation) {
  const Dataset d = SmallSynthetic(20, 20);
  ScopedFailpoint fp("anon.translate_cluster", Status::Internal("injected"));
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal) << result.status();
}

TEST_F(FailpointTest, InjectTraclusSegmentation) {
  const Dataset d = SmallSynthetic(15, 30);
  TraclusSegmenter segmenter;
  ScopedFailpoint fp("segment.traclus", Status::Internal("injected"));
  Result<WcopSaResult> result = RunWcopSa(d, &segmenter);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal) << result.status();
}

TEST_F(FailpointTest, InjectConvoySnapshot) {
  const Dataset d = SmallSynthetic(15, 30);
  ConvoyOptions options;
  options.snapshot_interval = 30.0;
  ScopedFailpoint fp("segment.convoy_snapshot", Status::Internal("injected"));
  Result<std::vector<Convoy>> result = DiscoverConvoys(d, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal) << result.status();
}

TEST_F(FailpointTest, InjectStreamingWindow) {
  const Dataset d = SmallSynthetic(20, 60);
  StreamingOptions options;
  options.window_seconds = 200.0;
  ScopedFailpoint fp("streaming.window", Status::Internal("injected"));
  Result<StreamingResult> result = RunStreamingWcop(d, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal) << result.status();
}

TEST_F(FailpointTest, InjectWcopBRound) {
  const Dataset d = SmallSynthetic(15, 20);
  WcopBOptions b_options;
  b_options.max_edit_size = 3;
  ScopedFailpoint fp("wcop_b.round", Status::Internal("injected"));
  Result<WcopBResult> result = RunWcopB(d, {}, b_options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal) << result.status();
}

// A max_fires=1 injection on a per-round site lets the retry-free pipeline
// fail once and the next, un-injected run succeed — proving no state leaks
// across runs through the registry.
TEST_F(FailpointTest, PipelineRecoversAfterInjection) {
  const Dataset d = SmallSynthetic(20, 20);
  {
    ScopedFailpoint fp("cluster.greedy_round", Status::Internal("transient"),
                       /*max_fires=*/1);
    EXPECT_FALSE(RunWcopCt(d).ok());
  }
  Result<AnonymizationResult> retry = RunWcopCt(d);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_FALSE(retry->report.degraded);
}

}  // namespace
}  // namespace wcop
