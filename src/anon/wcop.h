#ifndef WCOP_ANON_WCOP_H_
#define WCOP_ANON_WCOP_H_

/// Umbrella header of the WCOP suite: include this to get the four paper
/// algorithms (WCOP-NV / CT / SA / B), the W4M and NWA baselines, the
/// metrics, and the independent anonymity verifier.

#include "anon/colocalization.h"
#include "anon/effective_anonymity.h"
#include "anon/greedy_clustering.h"
#include "anon/agglomerative.h"
#include "anon/attack.h"
#include "anon/mahdavifar.h"
#include "anon/metrics.h"
#include "anon/nwa.h"
#include "anon/report_json.h"
#include "anon/streaming.h"
#include "anon/translation.h"
#include "anon/types.h"
#include "anon/uncertainty.h"
#include "anon/utility.h"
#include "anon/verifier.h"
#include "anon/wcop_b.h"
#include "anon/wcop_ct.h"
#include "anon/wcop_nv.h"
#include "anon/wcop_sa.h"

#endif  // WCOP_ANON_WCOP_H_
