#include "server/endpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/process_stats.h"
#include "common/prometheus.h"

namespace wcop {
namespace server {

namespace {

HttpResponse ErrorResponse(const Status& status) {
  HttpResponse response;
  response.status = HttpStatusForStatus(status);
  response.body = status.ToString() + "\n";
  return response;
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

/// Splits "/metrics?format=text" into path and query ("" when absent).
void SplitQuery(const std::string& raw, std::string* path,
                std::string* query) {
  const size_t q = raw.find('?');
  if (q == std::string::npos) {
    *path = raw;
    query->clear();
  } else {
    *path = raw.substr(0, q);
    *query = raw.substr(q + 1);
  }
}

/// True when the query string contains `key=value` as one `&`-separated
/// component. No percent-decoding — the endpoint's queries are ASCII.
bool QueryHas(const std::string& query, const std::string& key,
              const std::string& value) {
  const std::string want = key + "=" + value;
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) {
      amp = query.size();
    }
    if (query.compare(pos, amp - pos, want) == 0) {
      return true;
    }
    pos = amp + 1;
  }
  return false;
}

}  // namespace

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kFailedPrecondition:
      return 503;
    default:
      return 500;
  }
}

Status StatusForHttpResponse(const HttpResponse& response) {
  if (response.status >= 200 && response.status < 300) {
    return Status::OK();
  }
  std::string body = response.body;
  while (!body.empty() && (body.back() == '\n' || body.back() == '\r')) {
    body.pop_back();
  }
  switch (response.status) {
    case 400:
      return Status::InvalidArgument(body);
    case 404:
      return Status::NotFound(body);
    case 429:
      return Status::ResourceExhausted(body);
    case 503:
      return Status::FailedPrecondition(body);
    default:
      return Status::Internal("HTTP " + std::to_string(response.status) +
                              ": " + body);
  }
}

std::string FormatMetrics(const telemetry::MetricsSnapshot& snapshot) {
  std::string out;
  char buf[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(buf, sizeof(buf), "counter %s %" PRIu64 "\n", name.c_str(),
                  value);
    out += buf;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(buf, sizeof(buf), "gauge %s %.17g\n", name.c_str(), value);
    out += buf;
  }
  for (const telemetry::HistogramSummary& h : snapshot.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "histogram %s count=%" PRIu64 " sum=%" PRIu64
                  " mean=%.3f p50=%.1f p90=%.1f p99=%.1f\n",
                  h.name.c_str(), h.count, h.sum, h.mean, h.p50, h.p90,
                  h.p99);
    out += buf;
  }
  return out;
}

Result<std::unique_ptr<ServiceEndpoint>> ServiceEndpoint::Attach(
    AnonymizationService* service, const HttpServer::Options& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("service is required");
  }
  auto endpoint = std::unique_ptr<ServiceEndpoint>(new ServiceEndpoint());
  endpoint->service_ = service;
  ServiceEndpoint* raw = endpoint.get();
  WCOP_ASSIGN_OR_RETURN(
      endpoint->http_,
      HttpServer::Listen(options, [raw](const HttpRequest& request) {
        return raw->Route(request);
      }));
  return endpoint;
}

void ServiceEndpoint::Stop() {
  if (http_ != nullptr) {
    http_->Stop();
  }
}

HttpResponse ServiceEndpoint::Route(const HttpRequest& request) {
  std::string path;
  std::string query;
  SplitQuery(request.path, &path, &query);
  if (request.method == "GET" && path == "/healthz") {
    const AnonymizationService::Health health = service_->GetHealth();
    std::string body = health.accepting ? "ok\n" : "draining\n";
    body += "accepting " + std::to_string(health.accepting ? 1 : 0) + "\n";
    body += "queued " + std::to_string(health.queued) + "\n";
    body += "running " + std::to_string(health.running) + "\n";
    body += "done " + std::to_string(health.done) + "\n";
    body += "failed " + std::to_string(health.failed) + "\n";
    body += "queue_capacity " + std::to_string(health.queue_capacity) + "\n";
    body += "recovered " + std::to_string(health.recovered) + "\n";
    return TextResponse(200, std::move(body));
  }
  if (request.method == "GET" && path == "/metrics") {
    // Refresh process gauges (RSS, CPU, fds, uptime) on every scrape so
    // the exposition reflects the moment of collection, Prometheus-style.
    telemetry::PublishProcessMetrics(&service_->telemetry().metrics());
    const telemetry::MetricsSnapshot snapshot =
        service_->telemetry().metrics().Snapshot();
    if (QueryHas(query, "format", "text")) {
      // Legacy human-readable dump, pre-Prometheus.
      return TextResponse(200, FormatMetrics(snapshot));
    }
    HttpResponse response;
    response.status = 200;
    response.content_type = "text/plain; version=0.0.4";
    response.body = telemetry::ToPrometheusText(snapshot);
    return response;
  }
  if (request.method == "GET" && path == "/jobs") {
    std::string body;
    for (const JobRecord& record : service_->Jobs()) {
      if (!body.empty()) {
        body += "\n";  // blank line between records
      }
      body += EncodeJobRecord(record);
    }
    return TextResponse(200, std::move(body));
  }
  if (request.method == "POST" && path == "/jobs") {
    Result<JobSpec> spec = DecodeJobSpec(request.body);
    if (!spec.ok()) {
      return ErrorResponse(spec.status());
    }
    Result<int64_t> id = service_->Submit(*spec);
    if (!id.ok()) {
      return ErrorResponse(id.status());
    }
    Result<JobRecord> record = service_->GetJob(*id);
    if (!record.ok()) {
      return ErrorResponse(record.status());
    }
    return TextResponse(202, EncodeJobRecord(*record));
  }
  if (request.method == "GET" && path.rfind("/jobs/", 0) == 0) {
    std::string id_text = path.substr(6);
    bool want_trace = false;
    const size_t slash = id_text.find('/');
    if (slash != std::string::npos) {
      if (id_text.substr(slash) != "/trace") {
        return ErrorResponse(Status::NotFound("no route for " +
                                              request.method + " " + path));
      }
      want_trace = true;
      id_text.resize(slash);
    }
    char* end = nullptr;
    const long long id = std::strtoll(id_text.c_str(), &end, 10);
    if (end == id_text.c_str() || *end != '\0') {
      return ErrorResponse(
          Status::InvalidArgument("bad job id '" + id_text + "'"));
    }
    Result<JobRecord> record = service_->GetJob(id);
    if (!record.ok()) {
      return ErrorResponse(record.status());
    }
    if (want_trace) {
      std::ifstream in(service_->TracePath(id), std::ios::binary);
      if (!in.is_open()) {
        return ErrorResponse(Status::NotFound(
            "no trace for job " + std::to_string(id) +
            " (the job has not executed yet)"));
      }
      std::ostringstream trace;
      trace << in.rdbuf();
      HttpResponse response;
      response.status = 200;
      response.content_type = "application/json";
      response.body = trace.str();
      return response;
    }
    return TextResponse(200, EncodeJobRecord(*record));
  }
  if (request.method == "POST" && path == "/shutdown") {
    const bool drain = request.body.find("mode drain") != std::string::npos;
    drain_.store(drain, std::memory_order_relaxed);
    shutdown_requested_.store(true, std::memory_order_relaxed);
    return TextResponse(200,
                        drain ? "draining\n" : "shutting down now\n");
  }
  return ErrorResponse(Status::NotFound("no route for " + request.method +
                                        " " + request.path));
}

}  // namespace server
}  // namespace wcop
