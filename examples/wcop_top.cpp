// Live terminal ops dashboard for a running wcop_serve daemon — `top` for
// the anonymization service. Polls the daemon's unix-socket endpoint
// (GET /healthz, GET /metrics, GET /jobs) every interval and renders:
//
//   * service health: accepting/draining, queue depth vs capacity, worker
//     occupancy, jobs done/failed, jobs recovered from the ledger;
//   * process vitals from the Prometheus exposition (RSS, CPU seconds,
//     open fds, uptime);
//   * one row per job with a progress bar driven by the live
//     shards_done/shards_total gauge the shard runner publishes;
//   * rolling throughput: distance calls/s and jobs completed/s computed
//     from deltas between consecutive scrapes.
//
// Usage:
//   ./wcop_top --socket=PATH [--interval-ms=1000] [--iterations=0]
//              [--no-clear]
//
// --iterations=N renders N frames then exits (0 = run until ^C) — handy
// for CI smoke tests and for capturing a single frame. --no-clear appends
// frames instead of redrawing in place.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/arg_parser.h"
#include "server/client.h"

using namespace wcop;
using namespace wcop::server;

namespace {

/// "queued 3" lines of GET /healthz -> value of `key`, 0 when absent.
long HealthValue(const std::string& health, const std::string& key) {
  size_t pos = 0;
  while (pos < health.size()) {
    size_t eol = health.find('\n', pos);
    if (eol == std::string::npos) {
      eol = health.size();
    }
    const std::string line = health.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(key + " ", 0) == 0) {
      return std::atol(line.c_str() + key.size() + 1);
    }
  }
  return 0;
}

/// Value of an exact sample name in the Prometheus exposition ("name value"
/// lines, comments skipped); 0.0 when absent.
double MetricValue(const std::string& exposition, const std::string& name) {
  size_t pos = 0;
  while (pos < exposition.size()) {
    size_t eol = exposition.find('\n', pos);
    if (eol == std::string::npos) {
      eol = exposition.size();
    }
    const std::string line = exposition.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(name + " ", 0) == 0) {
      return std::atof(line.c_str() + name.size() + 1);
    }
  }
  return 0.0;
}

std::string ProgressBar(uint64_t done, uint64_t total, int width) {
  std::string bar;
  const int filled =
      total == 0 ? 0
                 : static_cast<int>(static_cast<double>(done) * width / total);
  for (int i = 0; i < width; ++i) {
    bar += i < filled ? '#' : '.';
  }
  return bar;
}

std::string HumanBytes(double bytes) {
  char buf[32];
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fG", bytes / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1fM", bytes / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fK", bytes / 1024.0);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.Has("help") || !args.Has("socket")) {
    std::puts(
        "wcop_top --socket=PATH [--interval-ms=1000] [--iterations=0]\n"
        "         [--no-clear]\n"
        "Live dashboard over a running wcop_serve daemon (0 iterations =\n"
        "until interrupted).");
    return args.Has("help") ? 0 : 1;
  }
  const ServiceClient client(args.GetString("socket", ""));
  const auto interval =
      std::chrono::milliseconds(args.GetInt("interval-ms", 1000));
  const long iterations = args.GetInt("iterations", 0);
  const bool clear = !args.GetBool("no-clear", false);

  // Previous scrape, for rolling rates.
  double last_distance = 0.0;
  double last_completed = 0.0;
  bool have_last = false;
  auto last_at = std::chrono::steady_clock::now();

  for (long frame = 0; iterations == 0 || frame < iterations; ++frame) {
    Result<std::string> health = client.Health();
    Result<std::string> metrics = client.Metrics();
    Result<std::vector<JobRecord>> jobs = client.ListJobs();
    if (!health.ok() || !metrics.ok() || !jobs.ok()) {
      const Status& bad = !health.ok()
                              ? health.status()
                              : (!metrics.ok() ? metrics.status()
                                               : jobs.status());
      std::cerr << "wcop_top: daemon unreachable: " << bad << "\n";
      return 1;
    }
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - last_at).count();
    const double distance =
        MetricValue(*metrics, "wcop_distance_calls_edr_total");
    const double completed =
        MetricValue(*metrics, "wcop_server_jobs_completed_total");
    const double distance_rate =
        have_last && dt > 0 ? (distance - last_distance) / dt : 0.0;
    const double job_rate =
        have_last && dt > 0 ? (completed - last_completed) / dt : 0.0;
    last_distance = distance;
    last_completed = completed;
    last_at = now;
    have_last = true;

    if (clear) {
      std::fputs("\x1b[2J\x1b[H", stdout);  // clear + home
    }
    const long queued = HealthValue(*health, "queued");
    const long capacity = HealthValue(*health, "queue_capacity");
    const long running = HealthValue(*health, "running");
    std::printf("wcop_top — %s\n",
                HealthValue(*health, "accepting") != 0 ? "accepting"
                                                       : "draining");
    std::printf(
        "queue %ld/%ld  running %ld  done %ld  failed %ld  recovered %ld\n",
        queued, capacity, running, HealthValue(*health, "done"),
        HealthValue(*health, "failed"), HealthValue(*health, "recovered"));
    std::printf(
        "proc  rss %s  cpu %.1fs  fds %.0f  up %.0fs\n",
        HumanBytes(MetricValue(*metrics, "process_resident_memory_bytes"))
            .c_str(),
        MetricValue(*metrics, "process_cpu_seconds_total"),
        MetricValue(*metrics, "process_open_fds"),
        MetricValue(*metrics, "process_uptime_seconds"));
    std::printf("rate  %.0f distance calls/s  %.2f jobs/s\n\n", distance_rate,
                job_rate);

    std::printf("%5s %-16s %-10s %-8s %-26s %s\n", "ID", "NAME", "KIND",
                "STATE", "PROGRESS", "DISTANCE");
    for (const JobRecord& record : *jobs) {
      std::string progress = "";
      if (record.progress.shards_total > 0) {
        char cell[64];
        std::snprintf(cell, sizeof(cell), "[%s] %llu/%llu",
                      ProgressBar(record.progress.shards_done,
                                  record.progress.shards_total, 12)
                          .c_str(),
                      static_cast<unsigned long long>(
                          record.progress.shards_done),
                      static_cast<unsigned long long>(
                          record.progress.shards_total));
        progress = cell;
      }
      // Audit jobs track attacked victims rather than shards/windows; the
      // KIND column tells the operator which unit the bar counts.
      const char* kind =
          record.spec.kind.empty() ? "batch" : record.spec.kind.c_str();
      std::printf("%5lld %-16.16s %-10.10s %-8s %-26s %llu\n",
                  static_cast<long long>(record.id),
                  record.spec.name.c_str(), kind,
                  std::string(JobStateName(record.state)).c_str(),
                  progress.c_str(),
                  static_cast<unsigned long long>(
                      record.progress.distance_calls));
    }
    std::fflush(stdout);
    if (iterations == 0 || frame + 1 < iterations) {
      std::this_thread::sleep_for(interval);
    }
  }
  return 0;
}
