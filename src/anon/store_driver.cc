#include "anon/store_driver.h"

#include <utility>

#include "anon/wcop.h"

namespace wcop {

Result<AnonymizationResult> RunWcopNvOnStore(
    const store::TrajectoryStoreReader& reader, const WcopOptions& options) {
  WCOP_ASSIGN_OR_RETURN(Dataset dataset,
                        reader.ReadAll(options.run_context));
  return RunWcopNv(dataset, options);
}

Result<AnonymizationResult> RunWcopCtOnStore(
    const store::TrajectoryStoreReader& reader, const WcopOptions& options) {
  WCOP_ASSIGN_OR_RETURN(Dataset dataset,
                        reader.ReadAll(options.run_context));
  return RunWcopCt(dataset, options);
}

}  // namespace wcop
