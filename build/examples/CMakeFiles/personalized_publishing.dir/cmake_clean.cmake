file(REMOVE_RECURSE
  "CMakeFiles/personalized_publishing.dir/personalized_publishing.cpp.o"
  "CMakeFiles/personalized_publishing.dir/personalized_publishing.cpp.o.d"
  "personalized_publishing"
  "personalized_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalized_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
