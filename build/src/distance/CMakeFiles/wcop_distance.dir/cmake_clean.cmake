file(REMOVE_RECURSE
  "CMakeFiles/wcop_distance.dir/dtw.cc.o"
  "CMakeFiles/wcop_distance.dir/dtw.cc.o.d"
  "CMakeFiles/wcop_distance.dir/edr.cc.o"
  "CMakeFiles/wcop_distance.dir/edr.cc.o.d"
  "CMakeFiles/wcop_distance.dir/euclidean.cc.o"
  "CMakeFiles/wcop_distance.dir/euclidean.cc.o.d"
  "CMakeFiles/wcop_distance.dir/lcss.cc.o"
  "CMakeFiles/wcop_distance.dir/lcss.cc.o.d"
  "libwcop_distance.a"
  "libwcop_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
