# Empty dependencies file for colocalization_test.
# This may be replaced when dependencies are built.
