# Empty dependencies file for fig5_ct_sweep.
# This may be replaced when dependencies are built.
