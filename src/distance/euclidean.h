#ifndef WCOP_DISTANCE_EUCLIDEAN_H_
#define WCOP_DISTANCE_EUCLIDEAN_H_

#include "traj/trajectory.h"

namespace wcop {

/// Synchronized Euclidean distance between two trajectories — the distance
/// NWA's clustering operates on. The trajectories are compared at the union
/// of their sample timestamps over their *overlapping* time interval, using
/// linear interpolation, and the mean spatial distance is returned.
///
/// Returns +infinity when the trajectories do not overlap in time (NWA would
/// never put them in the same equivalence class).
double SynchronizedEuclideanDistance(const Trajectory& a, const Trajectory& b);

/// Maximum (instead of mean) synchronized spatial distance over the common
/// interval; this is the quantity that must be <= delta for two co-localized
/// trajectories (Definition 2), evaluated at the sample timestamps.
double MaxSynchronizedDistance(const Trajectory& a, const Trajectory& b);

}  // namespace wcop

#endif  // WCOP_DISTANCE_EUCLIDEAN_H_
