#ifndef WCOP_SERVER_JOB_H_
#define WCOP_SERVER_JOB_H_

/// Job model of the anonymization service: what a client submits (JobSpec),
/// what the service tracks (JobRecord = spec + lifecycle state + outcome),
/// and the text codec that makes records durable inside the common/snapshot
/// envelope and portable over the HTTP endpoint.
///
/// Lifecycle (DESIGN.md "Service operation & fault tolerance"):
///
///   queued ──► running ──► done
///                 │  └────► failed
///                 └────────► queued   (requeued by a non-drain shutdown)
///
/// Every transition is persisted by the job ledger *before* the service
/// acts on it, so after a kill -9 the ledger names every accepted job and
/// the worst a crash can do is repeat work — never lose it and never
/// publish it twice (output publication is an atomic rename).
///
/// Codec: one "key value" pair per line; string values are percent-escaped
/// so paths and error messages with spaces/newlines round-trip; doubles are
/// printed %.17g so the strtod round-trip is bit-exact (the same convention
/// as the store blocks and checkpoint payloads). Unknown keys are skipped
/// on decode, so old binaries read records written by newer ones.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace wcop {
namespace server {

/// Record format version carried in the snapshot envelope.
inline constexpr uint32_t kJobRecordVersion = 1;

enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
};

std::string_view JobStateName(JobState state);
Result<JobState> JobStateFromName(std::string_view name);

/// What a client submits. `name` doubles as the idempotency key: a resubmit
/// with an already-known name returns the existing job instead of queueing
/// a duplicate, which makes retrying a submission after a crash safe.
struct JobSpec {
  std::string name;         ///< required; [A-Za-z0-9._-], idempotency key
  std::string tenant;       ///< selects the per-tenant policy defaults
  std::string input_store;  ///< required; path to a .wst trajectory store
  std::string output_csv;   ///< batch: empty = `<job_dir>/out/<name>.csv`

  /// Job kind: "" or "batch" = one-shot batch anonymization publishing a
  /// CSV; "continuous" = the windowed continuous-publication pipeline
  /// (pipeline/continuous.h), publishing per-window stores + manifests
  /// under `output_dir`; "audit" = the privacy red team (attack/audit.h),
  /// publishing an AuditReport JSON. A crash-recovered continuous job
  /// resumes into its own published windows instead of recomputing them.
  std::string kind;
  double window_seconds = 3600.0;  ///< continuous only: window width
  std::string output_dir;  ///< continuous: empty = `<job_dir>/out/<name>.windows`

  /// Audit jobs. Single-release mode: `input_store` is the *published*
  /// store under audit and `audit_original_store` optionally names the
  /// pre-publication source (enables the re-identification attack).
  /// Continuous mode: `audit_windows_dir` names a continuous-publication
  /// output directory (window_NNNNN.wst) and `input_store` is the source
  /// store the windows were published from.
  std::string audit_windows_dir;
  std::string audit_original_store;
  std::string audit_adversary;   ///< "", "weak", "moderate", "strong"
  uint64_t audit_victims = 0;    ///< victim / user cap (0 = everyone)

  /// Requirement override: > 0 replaces every trajectory's (k, delta) with
  /// this pair before anonymization (materialized as a derived job store).
  /// 0 = keep the dataset-embedded requirements, after tenant defaults.
  int assign_k = 0;
  double assign_delta = 0.0;

  size_t shards = 1;          ///< sharded pipeline width
  double overlap_margin = 0.0;
  int64_t deadline_ms = 0;    ///< per-job deadline; 0 = tenant default
  uint64_t max_distance_computations = 0;  ///< budget slice; 0 = tenant
  bool allow_partial = false;  ///< graceful degradation under pressure
  uint64_t seed = 7;
};

/// What execution produced. Populated for done jobs; `error` for failed.
/// Continuous jobs reuse the same fields window-wise: `published` /
/// `suppressed` / `clusters` total over all windows, and `resumed_shards`
/// counts verified-and-adopted windows.
struct JobOutcome {
  bool degraded = false;
  std::string degraded_reason;
  bool verified = false;       ///< every shard passed the anonymity audit
  uint64_t published = 0;      ///< trajectories written to output_csv
  uint64_t suppressed = 0;
  uint64_t clusters = 0;
  double total_distortion = 0.0;
  uint64_t resumed_shards = 0;  ///< shards restored from checkpoints
  std::string error;            ///< final Status string when state=failed
};

/// Live execution progress, updated in place by the running worker (from
/// the shard runner's progress callbacks) and surfaced by GET /jobs/<id>.
/// Persisted with the record at lifecycle transitions; between transitions
/// it is only as fresh as the in-memory record — after a crash-recovery
/// the progress of a requeued job legitimately resets to zero.
struct JobProgress {
  uint64_t shards_done = 0;
  uint64_t shards_total = 0;
  uint64_t distance_calls = 0;
  double eta_seconds = 0.0;  ///< elapsed/done * remaining; 0 until known
};

struct JobRecord {
  int64_t id = 0;
  JobState state = JobState::kQueued;
  /// Times execution was claimed (1 = clean run; > 1 = crash-resumed).
  uint64_t attempts = 0;
  /// Trace identity minted at admission (DESIGN.md §7); correlates the
  /// record, the persisted span buffer (GET /jobs/<id>/trace) and every
  /// log line the job produced.
  std::string trace_id;
  JobSpec spec;
  JobOutcome outcome;
  JobProgress progress;
};

/// Percent-escapes whitespace, '%', and non-printable bytes so any string
/// survives the line-oriented codec. Exposed for the HTTP form codec.
std::string EscapeToken(std::string_view raw);
Result<std::string> UnescapeToken(std::string_view token);

std::string EncodeJobRecord(const JobRecord& record);
Result<JobRecord> DecodeJobRecord(std::string_view payload);

/// Spec-only codec for the POST /jobs request body (same key/value lines
/// as the record codec, spec fields only).
std::string EncodeJobSpec(const JobSpec& spec);
Result<JobSpec> DecodeJobSpec(std::string_view body);

/// Validates client-controlled spec fields (name charset, ranges). Does
/// not touch the filesystem; the service checks the input store separately.
Status ValidateJobSpec(const JobSpec& spec);

}  // namespace server
}  // namespace wcop

#endif  // WCOP_SERVER_JOB_H_
