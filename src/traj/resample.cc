#include "traj/resample.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wcop {

Trajectory ResampleUniform(const Trajectory& t, double interval) {
  if (t.size() <= 1 || interval <= 0.0) {
    return t;
  }
  std::vector<Point> points;
  const double t0 = t.StartTime();
  const double t1 = t.EndTime();
  const size_t steps = static_cast<size_t>(std::floor((t1 - t0) / interval));
  points.reserve(steps + 2);
  for (size_t i = 0; i <= steps; ++i) {
    points.push_back(t.PositionAt(t0 + static_cast<double>(i) * interval));
  }
  // Keep the exact endpoint unless the grid already landed on it.
  if (points.back().t < t1) {
    points.push_back(t.PositionAt(t1));
  }
  Trajectory out(t.id(), std::move(points), t.requirement());
  out.set_object_id(t.object_id());
  out.set_parent_id(t.parent_id());
  return out;
}

Trajectory DownsampleToMaxPoints(const Trajectory& t, size_t max_points) {
  if (max_points < 2 || t.size() <= max_points) {
    return t;
  }
  std::vector<Point> points;
  points.reserve(max_points);
  const size_t n = t.size();
  // Evenly spaced index selection that always includes the endpoints.
  for (size_t i = 0; i < max_points; ++i) {
    const size_t idx =
        static_cast<size_t>(std::llround(static_cast<double>(i) *
                                         static_cast<double>(n - 1) /
                                         static_cast<double>(max_points - 1)));
    if (!points.empty() && points.back().t >= t[idx].t) {
      continue;  // Guard against duplicate indices from rounding.
    }
    points.push_back(t[idx]);
  }
  Trajectory out(t.id(), std::move(points), t.requirement());
  out.set_object_id(t.object_id());
  out.set_parent_id(t.parent_id());
  return out;
}

Dataset DownsampleDataset(const Dataset& dataset, size_t max_points) {
  std::vector<Trajectory> out;
  out.reserve(dataset.size());
  for (const Trajectory& t : dataset.trajectories()) {
    out.push_back(DownsampleToMaxPoints(t, max_points));
  }
  return Dataset(std::move(out));
}

std::vector<double> UniformTimeGrid(const Dataset& dataset, double step) {
  std::vector<double> grid;
  if (dataset.empty() || step <= 0.0) {
    return grid;
  }
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const Trajectory& t : dataset.trajectories()) {
    if (t.empty()) {
      continue;
    }
    t_min = std::min(t_min, t.StartTime());
    t_max = std::max(t_max, t.EndTime());
  }
  if (!(t_min <= t_max)) {
    return grid;
  }
  for (double time = t_min; time <= t_max; time += step) {
    grid.push_back(time);
  }
  return grid;
}

}  // namespace wcop
