#ifndef WCOP_COMMON_TELEMETRY_H_
#define WCOP_COMMON_TELEMETRY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"

namespace wcop {
namespace telemetry {

/// Observability subsystem of the WCOP pipeline (DESIGN.md "Observability").
///
/// Two halves, bundled by `Telemetry`:
///  * a MetricsRegistry of named counters, gauges and log-scale histograms —
///    handles are fetched once per call site and incremented with a single
///    relaxed atomic add on the hot path;
///  * a TraceRecorder of nested phase spans (WCOP_TRACE_SPAN) exported as
///    Chrome trace_event JSON loadable in chrome://tracing / Perfetto.
///
/// A null `Telemetry*` (the default everywhere) disables both halves; the
/// instrumented code then pays at most one pointer comparison per site, so
/// the distance kernels and other hot loops are unaffected when telemetry
/// is not attached.

/// Monotonically increasing event count. One relaxed fetch_add per Add.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins numeric observation (budget consumption, sizes, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free histogram over non-negative integers with power-of-two
/// ("log-scale") buckets: bucket b holds values in [2^(b-1), 2^b), bucket 0
/// holds the value 0. 65 buckets cover the whole uint64_t range, so a
/// nanosecond-resolution timer and a cluster-size distribution use the same
/// type. Record is a handful of relaxed atomic operations.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Bucket index for `value`: 0 for 0, otherwise floor(log2(value)) + 1.
  static size_t BucketFor(uint64_t value);
  /// Inclusive lower bound of bucket `b` (0 for b == 0).
  static uint64_t BucketLowerBound(size_t b);

  uint64_t bucket_count(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  uint64_t min() const;
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Folds previously-snapshotted histogram contents in exactly (bucket
  /// counts, count, sum, min/max). Lets a service-wide registry accumulate
  /// per-job registries without losing bucket resolution.
  void MergeCounts(const uint64_t* bucket_counts, size_t num_buckets,
                   uint64_t count, uint64_t sum, uint64_t min_v,
                   uint64_t max_v);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time summary of one histogram (bucket midpoint interpolation
/// for the percentiles; exact count/sum/min/max).
struct HistogramSummary {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Per-bucket counts (Histogram::kBuckets entries, same indexing as
  /// Histogram::BucketFor). Consumed by the Prometheus exposition; empty
  /// in summaries reconstructed from serialized checkpoints.
  std::vector<uint64_t> buckets;
};

/// Point-in-time copy of a whole registry, safe to serialize or ship across
/// threads after the run. Stored on AnonymizationReport and serialized by
/// report_json's MetricsToJson.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSummary> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Convenience for tests/tools: value of counter `name`, 0 when absent.
  uint64_t CounterValue(std::string_view name) const;
  /// Gauge value, 0.0 when absent.
  double GaugeValue(std::string_view name) const;
  /// Pointer into `histograms`, nullptr when absent.
  const HistogramSummary* FindHistogram(std::string_view name) const;
};

/// Thread-safe registry of named metrics. Get* creates on first use and
/// returns a pointer that stays valid for the registry's lifetime, so call
/// sites resolve the name once (outside their loop) and touch only the
/// atomic afterwards. Names are dot-separated lowercase paths — see the
/// metric catalog in DESIGN.md.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// One completed span: a named [start, end) interval on one thread at one
/// nesting depth. Names must be string literals (or otherwise outlive the
/// recorder) — spans store the pointer, not a copy.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;    ///< small per-recorder thread number (0, 1, ...)
  uint32_t depth = 0;  ///< nesting depth at span open (0 = top level)
  uint32_t pid = 1;    ///< trace process lane; shard recorders merge in
                       ///< under pid 2 + shard_index (see MergeFrom)
};

/// Collects completed spans from any number of threads. Span open/close
/// happens at phase granularity (per cluster / per window / per file), so a
/// mutex-protected append is cheap relative to the work inside each span.
class TraceRecorder {
 public:
  TraceRecorder() : origin_(std::chrono::steady_clock::now()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Nanoseconds since the recorder was created.
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - origin_)
            .count());
  }

  void Record(const char* name, uint64_t start_ns, uint64_t end_ns,
              uint32_t depth);

  std::vector<TraceEvent> Events() const;
  size_t event_count() const;

  /// Trace identity for cross-process correlation: minted at job admission
  /// and stamped on the exported JSON ("traceId"). Empty = unset.
  void set_trace_id(std::string id);
  std::string trace_id() const;

  /// Folds all of `other`'s events into this recorder under trace-process
  /// lane `pid`, re-basing timestamps from `other`'s clock origin onto this
  /// recorder's so the merged file is one coherent timeline (events that
  /// started before this recorder existed clamp to 0). Used by the shard
  /// runner to merge per-shard span buffers into the job's recorder.
  void MergeFrom(const TraceRecorder& other, uint32_t pid);

  /// Chrome trace_event JSON ("X" complete events, microsecond timestamps):
  /// load the file in chrome://tracing or https://ui.perfetto.dev.
  std::string ToChromeTraceJson() const;

  /// Plain-text table of the top `n` span names by total time.
  std::string Summary(size_t n = 10) const;

 private:
  uint32_t TidForCurrentThread();  ///< callers must hold mu_

  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::string trace_id_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, uint32_t> thread_numbers_;
};

/// The bundle threaded (as an optional pointer, like RunContext) through
/// the anonymization pipeline. Non-owning call sites treat null as
/// "telemetry disabled".
class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  /// Writes the Chrome trace_event JSON to `path` (overwrites).
  Status WriteChromeTrace(const std::string& path) const;

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

/// Folds `snapshot` into `registry`: counter values add, gauge values
/// overwrite, histogram bucket counts / count / sum / min / max merge
/// exactly (via Histogram::MergeCounts). The service uses this to roll
/// per-job registries up into the process-wide /metrics registry.
void AccumulateSnapshot(MetricsRegistry* registry,
                        const MetricsSnapshot& snapshot);

/// Null-safe counter add: the disabled-telemetry path is one branch.
inline void CounterAdd(Counter* counter, uint64_t n = 1) {
  if (counter != nullptr) {
    counter->Add(n);
  }
}

/// RAII phase span. A null telemetry pointer makes both constructor and
/// destructor no-ops. Spans opened and closed on the same thread nest:
/// each records the depth at which it was opened.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* telemetry, const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace telemetry
}  // namespace wcop

#define WCOP_TELEMETRY_CONCAT_INNER(a, b) a##b
#define WCOP_TELEMETRY_CONCAT(a, b) WCOP_TELEMETRY_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing scope:
///
///   WCOP_TRACE_SPAN(options.telemetry, "cluster/grow");
///
/// `tel` is a (possibly null) wcop::telemetry::Telemetry*; `name` must be a
/// string literal following the "phase/subphase" naming convention.
#define WCOP_TRACE_SPAN(tel, name)                       \
  [[maybe_unused]] ::wcop::telemetry::ScopedSpan         \
      WCOP_TELEMETRY_CONCAT(wcop_trace_span_, __LINE__)((tel), (name))

#endif  // WCOP_COMMON_TELEMETRY_H_
