file(REMOVE_RECURSE
  "libwcop_index.a"
)
