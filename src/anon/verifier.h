#ifndef WCOP_ANON_VERIFIER_H_
#define WCOP_ANON_VERIFIER_H_

#include <string>
#include <vector>

#include "anon/types.h"
#include "common/status.h"
#include "traj/dataset.h"

namespace wcop {

/// Outcome of an independent anonymity audit of a published result.
struct VerificationReport {
  bool ok = false;
  size_t clusters_checked = 0;
  size_t violations = 0;
  std::vector<std::string> messages;  ///< one per violation (capped)
};

/// Independently audits an AnonymizationResult against the *original*
/// dataset:
///  * every published cluster is a true (k, delta)-anonymity set
///    (Definition 3) under the cluster's own k and delta;
///  * the cluster's k is >= every member's personal k_i and its delta is
///    <= every member's personal delta_i (the personalization guarantee);
///  * every original trajectory is either published or trashed, never both;
///  * published trajectories preserve id/object metadata.
///
/// The checker reimplements co-localization from the definitions rather
/// than reusing the translation phase's internals, so a bug in translation
/// cannot hide from it.
VerificationReport VerifyAnonymity(const Dataset& original,
                                   const AnonymizationResult& result,
                                   size_t max_messages = 16);

}  // namespace wcop

#endif  // WCOP_ANON_VERIFIER_H_
