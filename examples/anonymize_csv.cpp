// Command-line anonymization tool — the "downstream user" entry point.
//
// Reads a trajectory dataset from CSV (or loads a GeoLife directory, or
// generates a synthetic one), anonymizes it with a chosen WCOP algorithm,
// audits the output, and writes the sanitized dataset plus the original for
// side-by-side plotting (Figures 3-4 of the paper are exactly such plots).
//
// Usage:
//   ./anonymize_csv --in=data.csv --algo=ct --out=anon.csv
//   ./anonymize_csv --geolife=/data/Geolife/Data --algo=sa-traclus
//   ./anonymize_csv --synthetic --trajectories=100 --algo=b --budget=0.8
//
// Algorithms: nv | ct | sa-traclus | sa-convoys | b

#include <cstdio>
#include <iostream>
#include <string>

#include "anon/report_json.h"
#include "anon/wcop.h"
#include "common/arg_parser.h"
#include "common/log.h"
#include "common/run_context.h"
#include "common/signals.h"
#include "common/telemetry.h"
#include "data/geolife_parser.h"
#include "data/store_convert.h"
#include "data/synthetic.h"
#include "store/shard_runner.h"
#include "store/store_file.h"
#include "segment/convoy.h"
#include "segment/traclus.h"
#include "traj/geojson.h"
#include "traj/io.h"
#include "traj/resample.h"
#include "traj/simplify.h"

using namespace wcop;

namespace {

Result<Dataset> LoadInput(const ArgParser& args) {
  if (args.Has("in")) {
    return ReadDatasetCsv(args.GetString("in", ""));
  }
  if (args.Has("store-in")) {
    WCOP_ASSIGN_OR_RETURN(
        store::TrajectoryStoreReader reader,
        store::TrajectoryStoreReader::Open(args.GetString("store-in", "")));
    return reader.ReadAll();
  }
  if (args.Has("geolife")) {
    GeoLifeOptions options;
    options.max_trajectories =
        static_cast<size_t>(args.GetInt("max-trajectories", 238));
    return LoadGeoLifeDirectory(args.GetString("geolife", ""), options);
  }
  SyntheticOptions gen;
  gen.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  gen.num_trajectories =
      static_cast<size_t>(args.GetInt("trajectories", 100));
  gen.num_users = gen.num_trajectories / 3 + 1;
  gen.points_per_trajectory = static_cast<size_t>(args.GetInt("points", 100));
  gen.region_half_diagonal = 20000.0;
  gen.dataset_duration_days = 60.0;
  // --synthetic-tiles=N lays out N independent cities far apart — the input
  // shape that gives a multi-shard run genuinely separable components.
  const size_t tiles =
      static_cast<size_t>(args.GetInt("synthetic-tiles", 1));
  if (tiles > 1) {
    return GenerateTiledSyntheticGeoLife(
        gen, tiles, args.GetDouble("tile-spacing", 200000.0));
  }
  return GenerateSyntheticGeoLife(gen);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.Has("help")) {
    std::puts(
        "anonymize_csv --in=FILE.csv | --store-in=FILE.wst | --geolife=DIR |"
        " --synthetic\n"
        "              [--algo=nv|ct|sa-traclus|sa-convoys|b]\n"
        "              [--out=anon.csv] [--dump-original=orig.csv]\n"
        "              [--assign-k=5 --assign-delta=250]  (if input lacks "
        "requirements)\n"
        "              [--budget=0.8] [--max-points=500] [--seed=7]\n"
        "              [--threads=N]  (worker threads; 0 = all cores, 1 = "
        "serial;\n"
        "                output is byte-identical for every value)\n"
        "              [--checkpoint=FILE --checkpoint-every=1]  (algo=b: "
        "resume an\n"
        "                interrupted distortion-bound sweep from FILE)\n"
        "              [--trace-out=trace.json] [--metrics-out=metrics.json]\n"
        "              [--csv2store=OUT.wst]  (with --in: convert the CSV to "
        "a binary\n"
        "                trajectory store, streaming, then exit)\n"
        "              [--shards=N]  (algo=ct: partition spatio-temporally "
        "and\n"
        "                anonymize shard-by-shard; 0/absent = monolithic,\n"
        "                1 = single shard, byte-identical to monolithic)\n"
        "              [--shard-dir=DIR] [--margin=M] "
        "[--shard-checkpoints=DIR]\n"
        "              [--shard-parallelism=P]\n"
        "              [--deadline-ms=N] [--allow-partial]  (graceful "
        "degradation:\n"
        "                stop at the deadline and publish the verified "
        "part)\n"
        "                SIGINT/SIGTERM also stop cooperatively: the final\n"
        "                checkpoint is flushed so re-running resumes\n"
        "              [--synthetic-tiles=T --tile-spacing=200000]  "
        "(synthetic input\n"
        "                as T independent far-apart cities)\n"
        "              [--distance-cascade=true|false]  (filter-and-refine "
        "EDR\n"
        "                lower-bound cascade; false = legacy exhaustive "
        "scan,\n"
        "                byte-identical output; WCOP_DISTANCE_CASCADE env "
        "too)");
    return 0;
  }
  if (!log::ConfigureFromArgs(args, "anonymize_csv")) {
    return 1;
  }

  // Streaming CSV -> store conversion: holds one trajectory in memory.
  if (args.Has("csv2store")) {
    if (!args.Has("in")) {
      log::Error("--csv2store requires --in=FILE.csv");
      return 1;
    }
    const std::string store_path = args.GetString("csv2store", "dataset.wst");
    Result<StoreConvertStats> stats =
        ConvertCsvToStore(args.GetString("in", ""), store_path);
    if (!stats.ok()) {
      log::Error("csv2store failed", {{"status", stats.status().ToString()}});
      return 1;
    }
    std::printf("wrote %s: %zu trajectories, %llu points\n",
                store_path.c_str(), stats->trajectories,
                static_cast<unsigned long long>(stats->points));
    return 0;
  }

  Result<Dataset> maybe_dataset = LoadInput(args);
  if (!maybe_dataset.ok()) {
    log::Error("load failed", {{"status", maybe_dataset.status().ToString()}});
    return 1;
  }
  Dataset dataset = std::move(maybe_dataset).value();

  // Optional shape-preserving simplification before anything else
  // (Douglas-Peucker; --simplify-epsilon in metres).
  const double simplify_epsilon = args.GetDouble("simplify-epsilon", 0.0);
  if (simplify_epsilon > 0.0) {
    const size_t before = dataset.TotalPoints();
    dataset = SimplifyDataset(dataset, simplify_epsilon);
    std::printf("simplified %zu -> %zu points (epsilon %.1f m)\n", before,
                dataset.TotalPoints(), simplify_epsilon);
  }

  // Very long trajectories make the quadratic EDR clustering slow; cap the
  // per-trajectory point count unless the user opts out with 0.
  const size_t max_points =
      static_cast<size_t>(args.GetInt("max-points", 500));
  if (max_points >= 2) {
    dataset = DownsampleDataset(dataset, max_points);
  }

  // GeoLife input has no (k_i, delta_i); assign uniform random preferences.
  if (dataset.MinDelta() <= 0.0) {
    Rng rng(static_cast<uint64_t>(args.GetInt("seed", 7)) + 1);
    AssignUniformRequirements(
        &dataset, 2, static_cast<int>(args.GetInt("assign-k", 5)), 10.0,
        args.GetDouble("assign-delta", 250.0), &rng);
    std::printf("assigned uniform requirements: k in [2,%lld], delta in "
                "[10,%.0f]\n",
                static_cast<long long>(args.GetInt("assign-k", 5)),
                args.GetDouble("assign-delta", 250.0));
  }
  std::printf("input: %s\n", dataset.DebugString().c_str());

  const std::string algo = args.GetString("algo", "ct");
  const std::string trace_out = args.GetString("trace-out", "");
  const std::string metrics_out = args.GetString("metrics-out", "");
  telemetry::Telemetry telemetry;
  WcopOptions options;
  options.seed = static_cast<uint64_t>(args.GetInt("seed", 7)) + 2;
  options.threads = static_cast<int>(args.GetInt("threads", 0));
  // Always record spans: the final report prints a per-phase wall-time
  // summary even when no --trace-out / --metrics-out export is requested.
  options.telemetry = &telemetry;

  // Cooperative shutdown: SIGINT/SIGTERM flip the cancellation token, the
  // pipeline trips at its next yield point, flushes its final checkpoint
  // (algo=b rounds / per-shard progress), and exits cleanly — a second
  // signal force-kills. --deadline-ms bounds the run the same way.
  RunContext run_context;
  run_context.set_cancellation_token(InstallShutdownSignalHandlers());
  const int64_t deadline_ms = args.GetInt("deadline-ms", 0);
  if (deadline_ms > 0) {
    run_context.set_deadline_after(std::chrono::milliseconds(deadline_ms));
  }
  options.run_context = &run_context;
  options.allow_partial_results = args.GetBool("allow-partial", false);
  options.distance.cascade = args.GetBool("distance-cascade", true);

  const int shards = static_cast<int>(args.GetInt("shards", 0));
  bool per_shard_audit = false;
  Dataset audited_input = dataset;
  AnonymizationResult result;
  if (shards > 0 && algo != "ct") {
    log::Error("--shards is only supported with --algo=ct");
    return 1;
  }
  if (algo == "ct" && shards > 0) {
    // Out-of-core path: persist the (preprocessed) input as a trajectory
    // store, partition it spatio-temporally, anonymize shard by shard.
    const std::string store_path =
        args.GetString("shard-store",
                       args.GetString("out", "anonymized.csv") + ".input.wst");
    Status write_store = store::WriteDatasetStore(dataset, store_path);
    if (!write_store.ok()) {
      log::Error("store write failed", {{"status", write_store.ToString()}});
      return 1;
    }
    Result<store::TrajectoryStoreReader> reader =
        store::TrajectoryStoreReader::Open(store_path);
    if (!reader.ok()) {
      log::Error("store open failed", {{"status", reader.status().ToString()}});
      return 1;
    }
    store::ShardRunOptions run;
    run.wcop = options;
    run.partition.num_shards = static_cast<size_t>(shards);
    run.partition.overlap_margin = args.GetDouble("margin", 0.0);
    run.shard_dir = args.GetString("shard-dir", "");
    run.checkpoint_dir = args.GetString("shard-checkpoints", "");
    run.shard_parallelism =
        static_cast<int>(args.GetInt("shard-parallelism", 1));
    Result<store::ShardedRunResult> r = RunShardedWcopCt(*reader, run);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      if (ShutdownSignalReceived()) {
        std::cerr << "interrupted by signal " << LastShutdownSignal()
                  << "; completed shards are checkpointed — re-run the "
                     "same command to resume\n";
      }
      return 1;
    }
    std::printf("sharded run: %zu shards (grid %zu cells, %zu split, %zu "
                "merged), margin %.1f m%s\n",
                r->partition.shards.size(), r->partition.grid_cells,
                r->partition.cells_split, r->partition.components_merged,
                r->partition.margin,
                r->resumed_shards > 0 ? " [resumed]" : "");
    std::printf("audit: %s (per shard, %zu shards)\n",
                r->all_verified ? "OK" : "FAILED", r->shards.size());
    per_shard_audit = true;
    result = std::move(r->merged);
  } else if (algo == "nv") {
    Result<AnonymizationResult> r = RunWcopNv(dataset, options);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    for (Trajectory& t : audited_input.mutable_trajectories()) {
      t.set_requirement(Requirement{dataset.MaxK(), dataset.MinDelta()});
    }
    result = std::move(r).value();
  } else if (algo == "ct") {
    Result<AnonymizationResult> r = RunWcopCt(dataset, options);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    result = std::move(r).value();
  } else if (algo == "sa-traclus" || algo == "sa-convoys") {
    TraclusOptions traclus_options;
    traclus_options.threads = options.threads;
    traclus_options.telemetry = options.telemetry;
    TraclusSegmenter traclus(traclus_options);
    ConvoyOptions convoy_options;
    convoy_options.min_objects = 2;
    convoy_options.eps = 200.0;
    convoy_options.snapshot_interval = 60.0;
    convoy_options.telemetry = options.telemetry;
    ConvoySegmenter convoys(convoy_options);
    Segmenter* segmenter =
        algo == "sa-traclus" ? static_cast<Segmenter*>(&traclus)
                             : static_cast<Segmenter*>(&convoys);
    Result<WcopSaResult> r = RunWcopSa(dataset, segmenter, options);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return 1;
    }
    audited_input = r->segmented;
    result = std::move(r->anonymization);
  } else if (algo == "b") {
    Result<AnonymizationResult> baseline = RunWcopCt(dataset, options);
    if (!baseline.ok()) {
      std::cerr << baseline.status() << "\n";
      return 1;
    }
    WcopBOptions b_options;
    b_options.distort_max =
        baseline->report.total_distortion * args.GetDouble("budget", 0.8);
    // Durable progress: with --checkpoint=FILE each completed editing round
    // is persisted, and a re-run of the same command resumes from the last
    // good checkpoint instead of iteration 0.
    b_options.checkpoint_path = args.GetString("checkpoint", "");
    b_options.checkpoint_every_rounds =
        static_cast<size_t>(args.GetInt("checkpoint-every", 1));
    Result<WcopBResult> r = RunWcopB(dataset, options, b_options);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      if (ShutdownSignalReceived() && !b_options.checkpoint_path.empty()) {
        std::cerr << "interrupted by signal " << LastShutdownSignal()
                  << "; completed rounds are checkpointed — re-run the "
                     "same command to resume\n";
      }
      return 1;
    }
    if (r->resumed) {
      std::printf("resumed from %s: %zu rounds restored\n",
                  b_options.checkpoint_path.c_str(), r->resumed_rounds);
    }
    std::printf("WCOP-B: %zu editing rounds, bound %s\n", r->rounds.size(),
                r->bound_satisfied ? "satisfied" : "NOT reachable");
    result = std::move(r->anonymization);
  } else {
    log::Error("unknown --algo", {{"algo", algo}});
    return 1;
  }

  const AnonymizationReport& rep = result.report;
  std::printf("anonymized with %s: %zu clusters, %zu trashed, distortion "
              "%.4g, discernibility %.4g, %.2fs\n",
              algo.c_str(), rep.num_clusters, rep.trashed_trajectories,
              rep.total_distortion, rep.discernibility, rep.runtime_seconds);
  std::printf("--- phase times ---\n%s",
              telemetry.trace().Summary(8).c_str());

  if (!trace_out.empty()) {
    Status s = telemetry.WriteChromeTrace(trace_out);
    if (!s.ok()) {
      log::Error("trace export failed", {{"status", s.ToString()}});
      return 1;
    }
    std::printf("wrote %s (open in chrome://tracing)\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    Status s = WriteJsonFile(MetricsToJson(rep.metrics), metrics_out);
    if (!s.ok()) {
      log::Error("metrics export failed", {{"status", s.ToString()}});
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }

  // B edits requirements and the sharded path audits per shard (its merged
  // cluster indices live in concatenated-shard order, not dataset order).
  if (algo != "b" && !per_shard_audit) {
    const VerificationReport audit = VerifyAnonymity(audited_input, result);
    std::printf("audit: %s (%zu violations)\n", audit.ok ? "OK" : "FAILED",
                audit.violations);
  }

  const std::string out = args.GetString("out", "anonymized.csv");
  Status write_status = WriteDatasetCsv(result.sanitized, out);
  if (!write_status.ok()) {
    std::cerr << write_status << "\n";
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  if (args.Has("geojson")) {
    // Export for map tools; coordinates re-projected around the GeoLife
    // anchor (matches the parser's default and the synthetic generator's
    // metric frame).
    const LocalProjection projection(39.9057, 116.3913);
    const std::string geo = args.GetString("geojson", "anonymized.geojson");
    if (WriteDatasetGeoJson(result.sanitized, projection, geo).ok()) {
      std::printf("wrote %s (drop onto geojson.io to inspect)\n",
                  geo.c_str());
    }
  }
  if (args.Has("dump-original")) {
    const std::string orig = args.GetString("dump-original", "original.csv");
    if (WriteDatasetCsv(audited_input, orig).ok()) {
      std::printf("wrote %s (plot both files to reproduce Figure 4)\n",
                  orig.c_str());
    }
  }
  return 0;
}
