# Empty dependencies file for effective_anonymity_test.
# This may be replaced when dependencies are built.
