#include "related/awo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/rng.h"
#include "distance/euclidean.h"

namespace wcop {

Result<AwoResult> RunAwo(const Dataset& dataset, const AwoOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (options.k < 2 || options.region_interval <= 0.0) {
    return Status::InvalidArgument("need k >= 2 and positive interval");
  }
  Rng rng(options.seed);
  const size_t n = dataset.size();

  // --- Grouping: random representative + k-1 nearest (synchronized
  // Euclidean; non-overlapping trajectories are at infinite distance). ---
  std::vector<bool> used(n, false);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());

  AwoResult result;
  for (size_t rep : order) {
    if (used[rep]) {
      continue;
    }
    std::vector<std::pair<double, size_t>> candidates;
    for (size_t cand = 0; cand < n; ++cand) {
      if (cand == rep || used[cand]) {
        continue;
      }
      const double d =
          SynchronizedEuclideanDistance(dataset[rep], dataset[cand]);
      if (std::isfinite(d)) {
        candidates.emplace_back(d, cand);
      }
    }
    if (candidates.size() + 1 < static_cast<size_t>(options.k)) {
      continue;  // not enough overlapping partners; rep may join later
    }
    std::sort(candidates.begin(), candidates.end());
    AwoRegionSeries group;
    group.members.push_back(rep);
    for (int m = 0; m + 1 < options.k; ++m) {
      group.members.push_back(candidates[static_cast<size_t>(m)].second);
    }
    for (size_t m : group.members) {
      used[m] = true;
    }
    result.groups.push_back(std::move(group));
  }
  std::vector<size_t> trash;
  for (size_t i = 0; i < n; ++i) {
    if (!used[i]) {
      trash.push_back(i);
    }
  }
  const size_t trash_max = static_cast<size_t>(
      options.trash_fraction * static_cast<double>(n));
  if (trash.size() > trash_max) {
    return Status::Unsatisfiable(
        "AWO grouping left " + std::to_string(trash.size()) +
        " trajectories ungrouped (trash_max " + std::to_string(trash_max) +
        "); the data lacks temporal overlap for k=" +
        std::to_string(options.k));
  }

  // --- Generalize each group into regions and reconstruct k outputs. ---
  double diagonal_sum = 0.0;
  size_t diagonal_count = 0;
  std::vector<Trajectory> published;
  for (AwoRegionSeries& group : result.groups) {
    // Common timeline: the members' overlapping interval.
    double t_lo = -std::numeric_limits<double>::infinity();
    double t_hi = std::numeric_limits<double>::infinity();
    for (size_t m : group.members) {
      t_lo = std::max(t_lo, dataset[m].StartTime());
      t_hi = std::min(t_hi, dataset[m].EndTime());
    }
    if (!(t_lo < t_hi)) {
      t_hi = t_lo;  // degenerate single snapshot
    }
    for (double t = t_lo; t <= t_hi + 1e-9; t += options.region_interval) {
      BoundingBox region;
      for (size_t m : group.members) {
        region.Extend(dataset[m].PositionAt(std::min(t, t_hi)));
      }
      group.regions.push_back(region);
      group.times.push_back(std::min(t, t_hi));
      diagonal_sum += 2.0 * region.HalfDiagonal();
      ++diagonal_count;
      if (t >= t_hi) {
        break;
      }
    }
    // Reconstruct one trajectory per member: a random point inside every
    // region, connected in time order. Identity assignment to members is
    // arbitrary (AWO deliberately unlinks reconstructed paths from users).
    for (size_t m : group.members) {
      std::vector<Point> points;
      points.reserve(group.regions.size());
      double last_t = -std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < group.regions.size(); ++r) {
        const BoundingBox& box = group.regions[r];
        if (group.times[r] <= last_t) {
          continue;
        }
        points.emplace_back(rng.UniformReal(box.min_x(), box.max_x()),
                            rng.UniformReal(box.min_y(), box.max_y()),
                            group.times[r]);
        last_t = group.times[r];
      }
      if (points.size() < 2) {
        // Pad a degenerate snapshot so the output remains a trajectory.
        const Point base = points.empty()
                               ? dataset[m].PositionAt(t_lo)
                               : points.front();
        points.clear();
        points.emplace_back(base.x, base.y, t_lo);
        points.emplace_back(base.x, base.y, t_lo + 1.0);
      }
      Trajectory out(dataset[m].id(), std::move(points),
                     dataset[m].requirement());
      out.set_object_id(dataset[m].object_id());
      published.push_back(std::move(out));
    }
  }

  for (size_t idx : trash) {
    result.trashed_ids.push_back(dataset[idx].id());
  }
  result.report.num_groups = result.groups.size();
  result.report.trashed_trajectories = trash.size();
  result.report.mean_region_diagonal =
      diagonal_count == 0 ? 0.0
                          : diagonal_sum / static_cast<double>(diagonal_count);
  result.sanitized = Dataset(std::move(published));
  return result;
}

}  // namespace wcop
