file(REMOVE_RECURSE
  "libwcop_data.a"
)
