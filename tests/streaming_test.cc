#include <gtest/gtest.h>

#include <set>

#include "anon/streaming.h"
#include "anon/verifier.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

TEST(StreamingTest, PublishesWindowFragments) {
  const Dataset d = SmallSynthetic(30, 60);
  StreamingOptions options;
  options.window_seconds = 200.0;  // SmallSynthetic samples every 10 s
  Result<StreamingResult> r = RunStreamingWcop(d, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->sanitized.empty());
  EXPECT_GT(r->windows.size(), 0u);
  EXPECT_GT(r->total_clusters, 0u);
  EXPECT_TRUE(r->sanitized.Validate().ok());
}

TEST(StreamingTest, FragmentsLinkToSourceTrajectories) {
  const Dataset d = SmallSynthetic(20, 60);
  StreamingOptions options;
  options.window_seconds = 300.0;
  Result<StreamingResult> r = RunStreamingWcop(d, options);
  ASSERT_TRUE(r.ok());
  std::set<int64_t> sources;
  for (const Trajectory& fragment : r->sanitized.trajectories()) {
    const Trajectory* parent = d.FindById(fragment.parent_id());
    ASSERT_NE(parent, nullptr);
    sources.insert(fragment.parent_id());
    EXPECT_EQ(fragment.object_id(), parent->object_id());
    // Sanitized fragments carry their cluster pivot's timeline, so they can
    // overhang the parent's own samples slightly — but never a window span.
    EXPECT_LE(fragment.Duration(), options.window_seconds + 1e-6);
  }
  EXPECT_GT(sources.size(), 1u);
}

TEST(StreamingTest, WindowSummariesAccount) {
  const Dataset d = SmallSynthetic(25, 60);
  StreamingOptions options;
  options.window_seconds = 250.0;
  Result<StreamingResult> r = RunStreamingWcop(d, options);
  ASSERT_TRUE(r.ok());
  size_t published = 0;
  double ttd = 0.0;
  for (const StreamingWindowSummary& w : r->windows) {
    published += w.published_fragments;
    ttd += w.ttd;
    if (!w.skipped) {
      EXPECT_LE(w.published_fragments, w.input_fragments);
    }
  }
  EXPECT_EQ(published, r->sanitized.size());
  EXPECT_NEAR(ttd, r->total_ttd, 1e-6);
}

TEST(StreamingTest, SmallerWindowsFragmentMore) {
  const Dataset d = SmallSynthetic(20, 60);
  StreamingOptions coarse;
  coarse.window_seconds = 10000.0;  // everything in one window
  StreamingOptions fine;
  fine.window_seconds = 150.0;
  Result<StreamingResult> a = RunStreamingWcop(d, coarse);
  Result<StreamingResult> b = RunStreamingWcop(d, fine);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->windows.size(), a->windows.size());
}

TEST(StreamingTest, RejectsBadOptions) {
  const Dataset d = SmallSynthetic(10, 30);
  StreamingOptions options;
  options.window_seconds = 0.0;
  EXPECT_FALSE(RunStreamingWcop(d, options).ok());
  EXPECT_FALSE(RunStreamingWcop(Dataset(), {}).ok());
}

}  // namespace
}  // namespace wcop
