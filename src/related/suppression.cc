#include "related/suppression.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

namespace wcop {

namespace {

using PlaceId = std::pair<int64_t, int64_t>;

PlaceId PlaceOf(const Point& p, double cell) {
  return {static_cast<int64_t>(std::floor(p.x / cell)),
          static_cast<int64_t>(std::floor(p.y / cell))};
}

/// Support of each place: how many distinct trajectories visit it.
std::map<PlaceId, std::set<size_t>> PlaceSupport(const Dataset& d,
                                                 double cell) {
  std::map<PlaceId, std::set<size_t>> support;
  for (size_t i = 0; i < d.size(); ++i) {
    for (const Point& p : d[i].points()) {
      support[PlaceOf(p, cell)].insert(i);
    }
  }
  return support;
}

/// Support of ordered place pairs (a visited before b) per trajectory.
std::map<std::pair<PlaceId, PlaceId>, std::set<size_t>> PairSupport(
    const Dataset& d, double cell) {
  std::map<std::pair<PlaceId, PlaceId>, std::set<size_t>> support;
  for (size_t i = 0; i < d.size(); ++i) {
    // Deduplicated visit sequence.
    std::vector<PlaceId> sequence;
    for (const Point& p : d[i].points()) {
      const PlaceId place = PlaceOf(p, cell);
      if (sequence.empty() || sequence.back() != place) {
        sequence.push_back(place);
      }
    }
    std::set<std::pair<PlaceId, PlaceId>> seen;
    for (size_t a = 0; a < sequence.size(); ++a) {
      for (size_t b = a + 1; b < sequence.size(); ++b) {
        seen.insert({sequence[a], sequence[b]});
      }
    }
    for (const auto& pair : seen) {
      support[pair].insert(i);
    }
  }
  return support;
}

}  // namespace

Result<SuppressionResult> RunSuppression(const Dataset& dataset,
                                         const SuppressionOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (options.cell_size <= 0.0 || options.k < 1) {
    return Status::InvalidArgument("need positive cell_size and k >= 1");
  }

  SuppressionResult result;
  const size_t total_points = dataset.TotalPoints();
  std::set<PlaceId> suppressed_places;

  // Pass 1: suppress under-supported places until every remaining place
  // has support >= k. Suppressing a place can only lower other places'
  // support (trajectories never gain places), so one pass over the support
  // map, iterated to a fixed point, suffices.
  {
    bool changed = true;
    std::map<PlaceId, std::set<size_t>> support =
        PlaceSupport(dataset, options.cell_size);
    result.report.places_total = support.size();
    while (changed) {
      changed = false;
      for (auto it = support.begin(); it != support.end();) {
        if (it->second.size() < static_cast<size_t>(options.k)) {
          suppressed_places.insert(it->first);
          it = support.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
      // Support sets do not change when a whole place vanishes (a
      // trajectory still visits the other places), so one sweep reaches
      // the fixed point; the loop guards the adversary_pairs pass below.
      break;
    }
  }

  // Pass 2 (optional): ordered-pair knowledge. Suppress the rarer endpoint
  // of every under-supported pair.
  if (options.adversary_pairs) {
    const auto place_support = PlaceSupport(dataset, options.cell_size);
    for (const auto& [pair, trajs] : PairSupport(dataset, options.cell_size)) {
      if (trajs.size() >= static_cast<size_t>(options.k)) {
        continue;
      }
      if (suppressed_places.count(pair.first) ||
          suppressed_places.count(pair.second)) {
        continue;  // already broken by pass 1
      }
      const size_t support_a = place_support.count(pair.first)
                                   ? place_support.at(pair.first).size()
                                   : 0;
      const size_t support_b = place_support.count(pair.second)
                                   ? place_support.at(pair.second).size()
                                   : 0;
      suppressed_places.insert(support_a <= support_b ? pair.first
                                                      : pair.second);
    }
  }
  result.report.places_suppressed = suppressed_places.size();

  // Materialize: drop points in suppressed places; trajectories losing too
  // much (or left with < 2 points) are suppressed entirely.
  std::vector<Trajectory> published;
  for (const Trajectory& t : dataset.trajectories()) {
    std::vector<Point> kept;
    kept.reserve(t.size());
    for (const Point& p : t.points()) {
      if (!suppressed_places.count(PlaceOf(p, options.cell_size))) {
        kept.push_back(p);
      }
    }
    const size_t lost = t.size() - kept.size();
    result.report.points_suppressed += lost;
    const double loss_fraction =
        static_cast<double>(lost) / static_cast<double>(t.size());
    if (kept.size() < 2 || loss_fraction > options.max_loss_fraction) {
      result.trashed_ids.push_back(t.id());
      ++result.report.trajectories_suppressed;
      // Its surviving points are withdrawn too.
      result.report.points_suppressed += kept.size();
      continue;
    }
    Trajectory out(t.id(), std::move(kept), t.requirement());
    out.set_object_id(t.object_id());
    out.set_parent_id(t.parent_id());
    published.push_back(std::move(out));
  }
  result.report.suppression_ratio =
      total_points == 0 ? 0.0
                        : static_cast<double>(result.report.points_suppressed) /
                              static_cast<double>(total_points);
  result.sanitized = Dataset(std::move(published));
  return result;
}

}  // namespace wcop
