#include "common/retry.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace wcop {

namespace {

/// SplitMix64: the standard 64-bit finalizer; a cheap, stateless way to get
/// a well-mixed deterministic value from (seed, attempt).
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

std::chrono::nanoseconds BackoffForAttempt(const RetryPolicy& policy,
                                           int attempt) {
  if (policy.initial_backoff.count() <= 0) {
    return std::chrono::nanoseconds(0);
  }
  double ns = static_cast<double>(policy.initial_backoff.count()) *
              std::pow(std::max(policy.multiplier, 1.0),
                       static_cast<double>(std::max(attempt, 0)));
  ns = std::min(ns, static_cast<double>(policy.max_backoff.count()));
  const double jitter = std::clamp(policy.jitter, 0.0, 0.999);
  if (jitter > 0.0) {
    // Deterministic factor in [1 - jitter, 1 + jitter].
    const uint64_t h =
        SplitMix64(policy.jitter_seed * 0x9e3779b97f4a7c15ULL +
                   static_cast<uint64_t>(attempt));
    const double unit =
        static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
    ns *= 1.0 + jitter * (2.0 * unit - 1.0);
  }
  return std::chrono::nanoseconds(static_cast<int64_t>(ns));
}

Status RetryCall(const RetryPolicy& policy,
                 const std::function<Status()>& op, int* attempts_out) {
  const int max_attempts = std::max(policy.max_attempts, 1);
  Status last = Status::OK();
  int attempts = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++attempts;
    last = op();
    if (last.ok() || !IsRetryable(last)) {
      break;
    }
    if (attempt + 1 < max_attempts && policy.sleep_between_attempts) {
      const std::chrono::nanoseconds pause = BackoffForAttempt(policy, attempt);
      if (pause.count() > 0) {
        std::this_thread::sleep_for(pause);
      }
    }
  }
  if (attempts_out != nullptr) {
    *attempts_out = attempts;
  }
  if (policy.metrics != nullptr) {
    policy.metrics->GetCounter("retry.attempts")
        ->Add(static_cast<uint64_t>(attempts));
    if (!last.ok() && IsRetryable(last)) {
      // Every attempt failed retryably: the backoff schedule is exhausted
      // and the caller sees the last transient error as permanent.
      policy.metrics->GetCounter("retry.exhausted")->Add();
    }
  }
  return last;
}

}  // namespace wcop
