#ifndef WCOP_TESTS_TEST_UTIL_H_
#define WCOP_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace wcop {
namespace testing_util {

/// Straight-line trajectory: n points from (x0, y0) stepping (dx, dy) every
/// dt seconds starting at t0.
inline Trajectory MakeLine(int64_t id, double x0, double y0, double dx,
                           double dy, size_t n, double dt = 1.0,
                           double t0 = 0.0) {
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(x0 + dx * static_cast<double>(i),
                        y0 + dy * static_cast<double>(i),
                        t0 + dt * static_cast<double>(i));
  }
  return Trajectory(id, std::move(points));
}

/// As MakeLine but with a requirement attached.
inline Trajectory MakeLineWithReq(int64_t id, double x0, double y0, double dx,
                                  double dy, size_t n, int k, double delta,
                                  double dt = 1.0, double t0 = 0.0) {
  Trajectory t = MakeLine(id, x0, y0, dx, dy, n, dt, t0);
  t.set_requirement(Requirement{k, delta});
  return t;
}

/// Small, fast synthetic dataset for end-to-end tests: `n` trajectories of
/// `points` points each, with uniform random requirements.
inline Dataset SmallSynthetic(size_t n = 40, size_t points = 60,
                              int k_max = 5, double delta_max = 250.0,
                              uint64_t seed = 11) {
  SyntheticOptions options;
  options.seed = seed;
  options.num_users = std::max<size_t>(4, n / 3);
  options.num_trajectories = n;
  options.points_per_trajectory = points;
  options.sampling_interval = 10.0;
  options.region_half_diagonal = 8000.0;
  options.num_hubs = 6;
  options.num_routes = 5;
  options.dataset_duration_days = 10.0;
  Dataset dataset = GenerateSyntheticGeoLife(options).value();
  Rng rng(seed + 1);
  AssignUniformRequirements(&dataset, 2, k_max, 10.0, delta_max, &rng);
  return dataset;
}

}  // namespace testing_util
}  // namespace wcop

#endif  // WCOP_TESTS_TEST_UTIL_H_
