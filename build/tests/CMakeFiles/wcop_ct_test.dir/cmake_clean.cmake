file(REMOVE_RECURSE
  "CMakeFiles/wcop_ct_test.dir/wcop_ct_test.cc.o"
  "CMakeFiles/wcop_ct_test.dir/wcop_ct_test.cc.o.d"
  "wcop_ct_test"
  "wcop_ct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_ct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
