#ifndef WCOP_ANON_TYPES_H_
#define WCOP_ANON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/telemetry.h"
#include "distance/edr.h"
#include "traj/dataset.h"

namespace wcop {

/// Which trajectory distance drives the greedy clustering.
///
/// The paper's WCOP-CT (like W4M) clusters by time-tolerant EDR; the NWA
/// baseline clusters by synchronized Euclidean distance. EDR counts edit
/// operations, so to compare it against the metric radius_max threshold of
/// Algorithm 3 we use *normalized* EDR (ops / max length, in [0,1]) scaled
/// by `edr_scale` — the drivers default that scale to radius(D), giving
/// "fraction of the dataset radius" semantics: identical trajectories are at
/// distance 0, completely unalignable ones at radius(D).
struct DistanceConfig {
  enum class Kind { kEdr, kSynchronizedEuclidean };

  Kind kind = Kind::kEdr;
  EdrTolerance tolerance;   ///< EDR matching tolerance (kEdr only)
  double edr_scale = 0.0;   ///< multiplies normalized EDR (kEdr only);
                            ///< <= 0 means "auto": drivers use radius(D)

  /// Filter-and-refine kill-switch (kEdr only). When true (the default)
  /// the clustering hot path runs the lower-bound cascade (length,
  /// MBR/tolerance separation, envelope), grid pre-filtering, and banded
  /// DP evaluation under best-so-far cutoffs. Published output is
  /// byte-identical either way — a bound only ever skips a pair whose
  /// exact distance could not have changed any decision (see DESIGN.md
  /// "Distance engine: filter-and-refine"); `false` forces the legacy
  /// exhaustive scan. Drivers also honour the WCOP_DISTANCE_CASCADE
  /// environment variable (0/off/false disables).
  bool cascade = true;
};

/// Distance between two trajectories under `config` (see DistanceConfig).
double ClusterDistance(const Trajectory& a, const Trajectory& b,
                       const DistanceConfig& config);

/// ClusterDistance with an early-abandon cutoff (in the same scaled units
/// as the return value): for EDR, when the length lower bound alone exceeds
/// `cutoff`, returns that bound — a value > cutoff and <= the true distance
/// — without running the DP, and sets *abandoned. Synchronized Euclidean
/// has no cheap lower bound and always computes fully (*abandoned = false).
/// Callers that only compare against `cutoff` get the same decision as a
/// full computation.
double ClusterDistanceWithCutoff(const Trajectory& a, const Trajectory& b,
                                 const DistanceConfig& config, double cutoff,
                                 bool* abandoned);

/// Telemetry counter name for distance calls of the configured kind
/// ("distance.calls.edr" / "distance.calls.sync_euclidean") — the
/// per-kind accounting Table 3's runtime rows decompose into.
const char* DistanceCallCounterName(const DistanceConfig& config);

/// One anonymity set produced by the clustering phase. Indices refer to the
/// *input* dataset. `k` / `delta` are the cluster's own requirements: the
/// max k_i and min delta_i over its members (Algorithm 3, lines 10-11).
struct AnonymityCluster {
  size_t pivot = 0;             ///< index of the pivot trajectory
  std::vector<size_t> members;  ///< includes the pivot
  int k = 0;
  double delta = 0.0;
};

/// Tuning knobs shared by the whole WCOP suite.
struct WcopOptions {
  /// trash_max as a fraction of |D| (the paper uses 10%). An absolute
  /// override wins when set.
  double trash_fraction = 0.10;
  size_t trash_max_override = std::numeric_limits<size_t>::max();

  /// Initial maximum cluster radius; 0 means "radius(D)" (the paper's
  /// setting). Relaxed geometrically when the trash overflows
  /// (Algorithm 3, line 27).
  double radius_max = 0.0;
  double radius_growth = 1.5;
  size_t max_clustering_rounds = 40;

  /// Clustering distance. When the EDR tolerance is left defaulted
  /// (dx == 0), drivers fill it with the paper's heuristic
  /// EdrTolerance::FromDeltaMax(max delta_i, avg dataset speed), and
  /// edr_scale with radius(D).
  DistanceConfig distance;

  /// Pivot selection randomness (Algorithm 3 picks pivots at random).
  uint64_t seed = 7;

  /// Ablation knob: how the next pivot is chosen. The paper's Algorithm 3
  /// picks uniformly at random; W4M's description favours the trajectory
  /// farthest from all previous pivots.
  enum class PivotPolicy { kRandom, kFarthestFirst };
  PivotPolicy pivot_policy = PivotPolicy::kRandom;

  /// Which clustering algorithm builds the anonymity sets: the paper's
  /// random-pivot greedy pass (Algorithm 3) or the agglomerative
  /// alternative (the conclusion's future-work item; see
  /// anon/agglomerative.h).
  enum class ClusteringAlgo { kGreedyPivot, kAgglomerative };
  ClusteringAlgo clustering_algo = ClusteringAlgo::kGreedyPivot;

  /// Ablation knob: the cluster delta used by the translation phase. The
  /// paper uses the *minimum* member delta (the only choice that honours
  /// every preference); kMean demonstrates what relaxing that costs — the
  /// verifier flags the resulting per-member violations.
  enum class DeltaPolicy { kMin, kMean };
  DeltaPolicy delta_policy = DeltaPolicy::kMin;

  /// Thread count for the parallel hot paths (pivot candidate scans,
  /// per-cluster translation): <= 0 resolves to WCOP_THREADS or the
  /// hardware concurrency, 1 is the exact serial code path, N fans pure
  /// distance/translation computations over the process-wide pool. The
  /// published output is byte-identical across thread counts — see
  /// DESIGN.md "Parallel execution" for the determinism contract.
  int threads = 0;

  /// Optional execution context: deadline, cancellation, resource budget.
  /// The hot loops poll it at per-cluster / per-trajectory granularity.
  /// Null (the default) means unbounded. Non-owning; the caller keeps the
  /// RunContext alive for the duration of the run.
  const RunContext* run_context = nullptr;

  /// Optional telemetry sink: named counters/gauges/histograms plus phase
  /// trace spans (see DESIGN.md "Observability" for the metric catalog).
  /// Null (the default) disables all instrumentation at one-branch cost.
  /// Non-owning; the caller keeps the Telemetry alive for the run and
  /// snapshots/exports it afterwards.
  telemetry::Telemetry* telemetry = nullptr;

  /// Graceful degradation: when the run context trips mid-run and this is
  /// set, the pipeline stops forming new clusters, suppresses the
  /// not-yet-processed trajectories through the paper's own trash mechanism
  /// (Problem 1 allows up to trash_max suppressions; a degraded run may
  /// exceed that), and returns a partial result flagged
  /// `report.degraded = true`. Every *published* trajectory still satisfies
  /// its (k_i, delta_i) requirement. When false (the default), a tripped
  /// context surfaces as the corresponding non-OK Status and nothing is
  /// published.
  bool allow_partial_results = false;
};

/// Aggregate statistics of one anonymization run — the rows of Table 3.
struct AnonymizationReport {
  size_t input_trajectories = 0;    ///< # (sub-)trajectories fed in
  size_t num_clusters = 0;
  size_t trashed_trajectories = 0;
  size_t trashed_points = 0;
  double discernibility = 0.0;      ///< DCM = sum |C|^2 + |Trash|*|D|
  size_t created_points = 0;
  size_t deleted_points = 0;
  double total_spatial_translation = 0.0;   ///< metres, summed over matches
  double total_temporal_translation = 0.0;  ///< seconds, summed over matches
  double avg_spatial_translation = 0.0;     ///< per published trajectory
  double avg_temporal_translation = 0.0;
  double omega = 0.0;               ///< max translation observed (Eq. 1's Ω)
  double ttd = 0.0;                 ///< total translation distortion (Eq. 2)
  double editing_distortion = 0.0;  ///< DE (Eq. 6); non-zero for WCOP-B only
  double total_distortion = 0.0;    ///< Distortion = TTD + DE (Eq. 7)
  double runtime_seconds = 0.0;
  size_t clustering_rounds = 0;     ///< radius relaxations + 1
  double final_radius = 0.0;        ///< radius_max actually used
  /// True when the run tripped its deadline / cancellation / budget and
  /// published a partial result under WcopOptions::allow_partial_results.
  bool degraded = false;
  std::string degraded_reason;      ///< human-readable trip cause (if any)

  /// Metrics snapshot taken when the run finished, when a telemetry sink
  /// was attached (empty otherwise). Serialized by ReportToJson under
  /// "metrics". Counters are cumulative over the sink's lifetime, so a
  /// driver that runs the pipeline repeatedly (WCOP-B rounds, streaming
  /// windows) reports the totals of the whole run.
  telemetry::MetricsSnapshot metrics;
};

/// Full output of an anonymization run.
struct AnonymizationResult {
  Dataset sanitized;                   ///< published trajectories
  std::vector<int64_t> trashed_ids;    ///< suppressed trajectory ids
  std::vector<AnonymityCluster> clusters;
  AnonymizationReport report;
};

}  // namespace wcop

#endif  // WCOP_ANON_TYPES_H_
