#include "anon/wcop_ct.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "anon/agglomerative.h"
#include "anon/metrics.h"
#include "anon/translation.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/stopwatch.h"

namespace wcop {

WcopOptions ResolveOptions(const Dataset& dataset, WcopOptions options) {
  // Operational kill-switch for the filter-and-refine distance engine:
  // WCOP_DISTANCE_CASCADE=0|off|false forces the legacy exhaustive scan
  // (published bytes are identical either way; the switch exists so a
  // cascade regression can be ruled out in production without a rebuild).
  if (const char* env = std::getenv("WCOP_DISTANCE_CASCADE");
      env != nullptr) {
    options.distance.cascade = !(std::strcmp(env, "0") == 0 ||
                                 std::strcmp(env, "off") == 0 ||
                                 std::strcmp(env, "false") == 0);
  }
  const double radius = dataset.Bounds().HalfDiagonal();
  if (options.radius_max <= 0.0) {
    options.radius_max = radius > 0.0 ? radius : 1.0;
  }
  if (options.distance.kind == DistanceConfig::Kind::kEdr) {
    if (options.distance.edr_scale <= 0.0) {
      options.distance.edr_scale = radius > 0.0 ? radius : 1.0;
    }
    if (options.distance.tolerance.dx <= 0.0) {
      // The paper's heuristic (Section 6.1): Delta = {10*delta_max,
      // 10*delta_max, 10*delta_max/avg_speed}.
      double delta_max = 0.0;
      for (const Trajectory& t : dataset.trajectories()) {
        delta_max = std::max(delta_max, t.requirement().delta);
      }
      if (delta_max <= 0.0) {
        delta_max = 0.03 * options.radius_max;
      }
      options.distance.tolerance = EdrTolerance::FromDeltaMax(
          delta_max, dataset.ComputeStats().avg_speed);
    }
  }
  return options;
}

namespace {

size_t ResolveTrashMax(const Dataset& dataset, const WcopOptions& options) {
  const size_t by_fraction = static_cast<size_t>(
      options.trash_fraction * static_cast<double>(dataset.size()));
  return std::min(options.trash_max_override, by_fraction);
}

}  // namespace

void SnapshotTelemetry(const WcopOptions& options,
                       AnonymizationReport* report) {
  telemetry::Telemetry* tel = options.telemetry;
  if (tel == nullptr) {
    return;
  }
  if (const RunContext* context = options.run_context; context != nullptr) {
    tel->metrics()
        .GetGauge("run_context.distance_computations")
        ->Set(static_cast<double>(context->distance_computations()));
    tel->metrics()
        .GetGauge("run_context.candidate_pairs")
        ->Set(static_cast<double>(context->candidate_pairs()));
  }
  tel->metrics()
      .GetGauge("failpoint.fires_total")
      ->Set(static_cast<double>(FailpointRegistry::Instance().TotalFired()));
  report->metrics = tel->metrics().Snapshot();
}

Result<AnonymizationResult> AnonymizeClusters(
    const Dataset& dataset, const ClusteringOutcome& outcome,
    const WcopOptions& resolved_options) {
  const RunContext* context = resolved_options.run_context;
  telemetry::Telemetry* tel = resolved_options.telemetry;
  WCOP_TRACE_SPAN(tel, "wcop_ct/translate");
  AnonymizationResult result;
  // A degraded clustering outcome is carried through; its clusters are
  // complete anonymity sets and are translated normally below.
  result.report.degraded = outcome.degraded;
  result.report.degraded_reason = outcome.degraded_reason;
  std::vector<size_t> trashed_indices(outcome.trash);

  // Translation phase (Algorithm 2 lines 3-11): every member of every
  // cluster is translated towards its pivot under the cluster's own delta.
  //
  // Each cluster draws from its own RNG stream derived via MixSeed from the
  // experiment seed and the cluster's index, so the random disk points a
  // cluster sees do not depend on how many draws earlier clusters consumed —
  // the published bytes are identical for any thread count (and for any
  // order of cluster completion).
  TranslationStats stats;
  std::vector<const Trajectory*> sanitized_of(dataset.size(), nullptr);
  std::vector<Trajectory> sanitized_storage;
  // Reserve exact size so pointers into the vector stay stable.
  size_t max_published = 0;
  for (const AnonymityCluster& cluster : outcome.clusters) {
    max_published += cluster.members.size();
  }
  sanitized_storage.reserve(max_published);
  result.clusters.reserve(outcome.clusters.size());

  // Serial pre-pass: failpoints, cooperative context checks, the delta
  // policy, and the suppression decision all stay on the coordinating
  // thread (in cluster order), so degradation behaviour is identical to the
  // serial path. Only clusters that survive become translation jobs.
  //
  // Once the context trips mid-translation (with allow_partial_results),
  // every remaining cluster is suppressed instead of translated, so the
  // published part still passes the independent verifier. A clustering
  // outcome that already degraded skips the context checks here: its
  // context is permanently tripped, and translating the few clusters it
  // did form is exactly the bounded remainder of the partial result.
  struct ClusterJob {
    size_t cluster_index;  ///< index into outcome.clusters (and RNG stream)
    double delta_c;
  };
  std::vector<ClusterJob> jobs;
  jobs.reserve(outcome.clusters.size());
  bool suppress_remaining = false;
  for (size_t c = 0; c < outcome.clusters.size(); ++c) {
    const AnonymityCluster& cluster = outcome.clusters[c];
    if (!suppress_remaining) {
      WCOP_FAILPOINT("anon.translate_cluster");
      // Cooperative yield point: one check per cluster.
      if (Status s = CheckRunContext(context);
          !s.ok() && !outcome.degraded) {
        if (!resolved_options.allow_partial_results) {
          return s;
        }
        suppress_remaining = true;
        result.report.degraded = true;
        result.report.degraded_reason = s.ToString();
      }
    }
    if (suppress_remaining) {
      trashed_indices.insert(trashed_indices.end(), cluster.members.begin(),
                             cluster.members.end());
      continue;
    }
    // Algorithm 2 line 5: delta_c = min member delta (the clustering phase
    // maintains that); the kMean ablation replaces it with the member mean.
    double delta_c = cluster.delta;
    AnonymityCluster published_cluster = cluster;
    if (resolved_options.delta_policy == WcopOptions::DeltaPolicy::kMean) {
      double sum = 0.0;
      for (size_t member : cluster.members) {
        sum += dataset[member].requirement().delta;
      }
      delta_c = sum / static_cast<double>(cluster.members.size());
      published_cluster.delta = delta_c;
    }
    jobs.push_back(ClusterJob{c, delta_c});
    result.clusters.push_back(std::move(published_cluster));
  }

  // Parallel translation: each job is pure given its own RNG stream and
  // writes only its own slots. Batches never observe the run context (the
  // pre-pass already made every suppression decision for this phase).
  std::vector<std::vector<Trajectory>> translated(jobs.size());
  std::vector<TranslationStats> job_stats(jobs.size());
  parallel::ParallelOptions par;
  par.threads = resolved_options.threads;
  par.grain = 1;
  par.telemetry = tel;
  Status batch = parallel::ParallelFor(
      jobs.size(),
      [&](size_t t) {
        WCOP_TRACE_SPAN(tel, "translate/cluster");
        const AnonymityCluster& cluster =
            outcome.clusters[jobs[t].cluster_index];
        const Trajectory& pivot = dataset[cluster.pivot];
        Rng rng(MixSeed(resolved_options.seed ^ 0x5DEECE66Dull,
                        jobs[t].cluster_index));
        translated[t].reserve(cluster.members.size());
        for (size_t member : cluster.members) {
          translated[t].push_back(TranslateToPivot(
              dataset[member], pivot, jobs[t].delta_c,
              resolved_options.distance.tolerance, &rng, &job_stats[t]));
        }
      },
      par);
  if (!batch.ok()) {
    return batch;
  }
  // Serial merge in cluster order: storage layout, sanitized_of pointers,
  // and stats accumulation are all order-sensitive and stay deterministic.
  for (size_t t = 0; t < jobs.size(); ++t) {
    const AnonymityCluster& cluster = outcome.clusters[jobs[t].cluster_index];
    for (size_t m = 0; m < cluster.members.size(); ++m) {
      sanitized_storage.push_back(std::move(translated[t][m]));
      sanitized_of[cluster.members[m]] = &sanitized_storage.back();
    }
    stats.Accumulate(job_stats[t]);
  }

  if (tel != nullptr) {
    telemetry::CounterAdd(tel->metrics().GetCounter("translate.created_points"),
                          stats.created_points);
    telemetry::CounterAdd(tel->metrics().GetCounter("translate.deleted_points"),
                          stats.deleted_points);
    telemetry::CounterAdd(tel->metrics().GetCounter("translate.matched_points"),
                          stats.matched_points);
    telemetry::CounterAdd(tel->metrics().GetCounter("trash.trajectories"),
                          trashed_indices.size());
  }

  result.trashed_ids.reserve(trashed_indices.size());
  for (size_t idx : trashed_indices) {
    result.trashed_ids.push_back(dataset[idx].id());
  }
  const size_t published = sanitized_storage.size();

  // Ω: the maximum translation observed; floored at radius(D) when the run
  // moved nothing, so Eq. (1) never waives the penalty for trashed
  // trajectories.
  double omega = stats.max_translation;
  if (omega <= 0.0) {
    omega = std::max(dataset.Bounds().HalfDiagonal(), 1.0);
  }

  AnonymizationReport& report = result.report;
  report.input_trajectories = dataset.size();
  report.num_clusters = result.clusters.size();
  report.trashed_trajectories = trashed_indices.size();
  for (size_t idx : trashed_indices) {
    report.trashed_points += dataset[idx].size();
  }
  report.discernibility =
      Discernibility(result.clusters, trashed_indices.size(), dataset.size());
  report.created_points = stats.created_points;
  report.deleted_points = stats.deleted_points;
  report.total_spatial_translation = stats.spatial_translation;
  report.total_temporal_translation = stats.temporal_translation;
  const double published_count =
      std::max<double>(1.0, static_cast<double>(published));
  report.avg_spatial_translation = stats.spatial_translation / published_count;
  report.avg_temporal_translation =
      stats.temporal_translation / published_count;
  report.omega = omega;
  report.ttd = TotalTranslationDistortion(dataset, sanitized_of, omega);
  report.editing_distortion = 0.0;
  report.total_distortion = report.ttd;
  report.clustering_rounds = outcome.rounds;
  report.final_radius = outcome.final_radius;

  // Publish in input order (skipping the trash) so downstream joins on id
  // order are stable.
  std::vector<Trajectory> published_trajectories;
  published_trajectories.reserve(published);
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (sanitized_of[i] != nullptr) {
      published_trajectories.push_back(*sanitized_of[i]);
    }
  }
  result.sanitized = Dataset(std::move(published_trajectories));
  return result;
}

Result<AnonymizationResult> RunWcopCt(const Dataset& dataset,
                                      const WcopOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  Stopwatch timer;
  const WcopOptions resolved = ResolveOptions(dataset, options);
  WCOP_TRACE_SPAN(resolved.telemetry, "wcop_ct/run");
  const size_t trash_max = ResolveTrashMax(dataset, resolved);
  Result<ClusteringOutcome> clustering =
      resolved.clustering_algo == WcopOptions::ClusteringAlgo::kAgglomerative
          ? AgglomerativeClustering(dataset, trash_max, resolved)
          : GreedyClustering(dataset, trash_max, resolved);
  if (!clustering.ok()) {
    return clustering.status();
  }
  ClusteringOutcome outcome = std::move(clustering).value();
  WCOP_ASSIGN_OR_RETURN(AnonymizationResult result,
                        AnonymizeClusters(dataset, outcome, resolved));
  result.report.runtime_seconds = timer.ElapsedSeconds();
  SnapshotTelemetry(resolved, &result.report);
  return result;
}

}  // namespace wcop
