#include "anon/translation.h"

#include <algorithm>
#include <cmath>

#include "geo/disk.h"

namespace wcop {

Trajectory TranslateToPivot(const Trajectory& traj, const Trajectory& pivot,
                            double delta, const EdrTolerance& tolerance,
                            Rng* rng, TranslationStats* stats) {
  const double radius = std::max(delta, 0.0) / 2.0;
  const std::vector<EdrOp> ops = EdrOpSequence(traj, pivot, tolerance);

  std::vector<Point> out;
  out.reserve(pivot.size());
  TranslationStats local;

  for (const EdrOp& op : ops) {
    switch (op.kind) {
      case EdrOp::Kind::kDeleteFromPivot: {
        // Instead of deleting the pivot's point, invent one inside the
        // uncertainty disk around it (Algorithm 4, lines 5-7).
        const Point& pc = pivot[op.pivot_index];
        out.push_back(RandomPointInDisk(pc, radius, pc.t, *rng));
        ++local.created_points;
        break;
      }
      case EdrOp::Kind::kMatch: {
        const Point& original = traj[op.traj_index];
        const Point& pc = pivot[op.pivot_index];
        // Minimum-displacement translation into the disk; the sanitized
        // point always carries the pivot's timestamp (lines 9-12).
        const Point moved = ClampIntoDisk(original, pc, radius, pc.t);
        local.spatial_translation += SpatialDistance(original, moved);
        local.temporal_translation += std::abs(original.t - pc.t);
        local.max_translation =
            std::max(local.max_translation, SpatialDistance(original, moved));
        ++local.matched_points;
        out.push_back(moved);
        break;
      }
      case EdrOp::Kind::kDeleteFromTraj:
        // The trajectory's point has no counterpart: permanently removed
        // (lines 13-14).
        ++local.deleted_points;
        break;
    }
  }

  if (stats != nullptr) {
    stats->Accumulate(local);
  }
  Trajectory sanitized(traj.id(), std::move(out), traj.requirement());
  sanitized.set_object_id(traj.object_id());
  sanitized.set_parent_id(traj.parent_id());
  return sanitized;
}

}  // namespace wcop
