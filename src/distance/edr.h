#ifndef WCOP_DISTANCE_EDR_H_
#define WCOP_DISTANCE_EDR_H_

#include <limits>
#include <vector>

#include "traj/trajectory.h"

namespace wcop {

/// Edit Distance on Real sequence (Chen, Özsu & Oria, SIGMOD 2005), in the
/// time-tolerant form W4M uses: two points match when they are within the
/// per-axis tolerances dx, dy *and* within dt seconds of each other.
///
/// The paper (Section 6.1) sets the tolerance triple as a heuristic of
/// delta_max:  Delta = {10*delta_max, 10*delta_max, 10*delta_max/avg_speed}.
struct EdrTolerance {
  double dx = 0.0;
  double dy = 0.0;
  double dt = std::numeric_limits<double>::infinity();

  /// The paper's heuristic tolerance (Section 6.1).
  static EdrTolerance FromDeltaMax(double delta_max, double avg_speed);

  /// True iff `a` and `b` match under this tolerance.
  bool Matches(const Point& a, const Point& b) const;
};

/// One step of the optimal EDR edit script between a trajectory tau and a
/// pivot tau_c (Algorithm 4 consumes this sequence).
struct EdrOp {
  enum class Kind {
    kMatch,            ///< tau[i] matches pivot[j]
    kDeleteFromTraj,   ///< tau[i] has no counterpart (dropped by translation)
    kDeleteFromPivot,  ///< pivot[j] has no counterpart (translation *creates*
                       ///< a point near pivot[j] instead of deleting)
  };
  Kind kind;
  size_t traj_index = 0;   ///< valid for kMatch and kDeleteFromTraj
  size_t pivot_index = 0;  ///< valid for kMatch and kDeleteFromPivot
};

/// EDR distance (number of edit operations: unmatched-pair substitutions cost
/// 1, insertions/deletions cost 1). Runs in O(|a|*|b|) time and O(min) space.
double EdrDistance(const Trajectory& a, const Trajectory& b,
                   const EdrTolerance& tolerance);

/// Early-abandoning EDR: every alignment must delete or create at least
/// ||a|-|b|| points, so EDR >= ||a|-|b||. When that length lower bound alone
/// exceeds `cutoff`, returns the bound immediately — a value that is > cutoff
/// and <= the true distance — without filling the DP table; `abandoned`
/// (optional) reports which case ran. Callers that only compare the result
/// against `cutoff` (nearest-candidate scans) get the same decision either
/// way at O(1) instead of O(|a|*|b|) for hopeless pairs.
double EdrDistance(const Trajectory& a, const Trajectory& b,
                   const EdrTolerance& tolerance, double cutoff,
                   bool* abandoned);

/// EDR distance normalized by max(|a|, |b|), in [0, 1]. Useful when
/// comparing trajectories of very different lengths.
double NormalizedEdrDistance(const Trajectory& a, const Trajectory& b,
                             const EdrTolerance& tolerance);

/// Early-abandoning normalized EDR: the length lower bound becomes
/// ||a|-|b|| / max(|a|,|b|); semantics as the EdrDistance overload above.
double NormalizedEdrDistance(const Trajectory& a, const Trajectory& b,
                             const EdrTolerance& tolerance, double cutoff,
                             bool* abandoned);

/// Reconstructs one optimal EDR edit script transforming `traj` so that it
/// aligns with `pivot` (ops are emitted in order of increasing indices).
/// O(|traj|*|pivot|) time and space.
std::vector<EdrOp> EdrOpSequence(const Trajectory& traj,
                                 const Trajectory& pivot,
                                 const EdrTolerance& tolerance);

/// Applies sanity checks to an op sequence: indices strictly increase per
/// side and jointly cover every point of both trajectories exactly once.
/// Used by tests and debug assertions.
bool IsValidOpSequence(const std::vector<EdrOp>& ops, size_t traj_size,
                       size_t pivot_size);

}  // namespace wcop

#endif  // WCOP_DISTANCE_EDR_H_
