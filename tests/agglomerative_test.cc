#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "anon/agglomerative.h"
#include "anon/verifier.h"
#include "anon/wcop_ct.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

TEST(AgglomerativeTest, InvariantsMatchGreedyContract) {
  const Dataset d = SmallSynthetic(40, 45, /*k_max=*/5);
  const WcopOptions options = ResolveOptions(d, WcopOptions{});
  Result<ClusteringOutcome> out = AgglomerativeClustering(d, 4, options);
  ASSERT_TRUE(out.ok()) << out.status();

  std::set<size_t> seen;
  for (const AnonymityCluster& c : out->clusters) {
    EXPECT_NE(std::find(c.members.begin(), c.members.end(), c.pivot),
              c.members.end());
    int max_k = 0;
    double min_delta = 1e18;
    for (size_t m : c.members) {
      EXPECT_TRUE(seen.insert(m).second);
      max_k = std::max(max_k, d[m].requirement().k);
      min_delta = std::min(min_delta, d[m].requirement().delta);
    }
    EXPECT_GE(c.members.size(), static_cast<size_t>(c.k));
    EXPECT_EQ(c.k, max_k);
    EXPECT_DOUBLE_EQ(c.delta, min_delta);
  }
  for (size_t idx : out->trash) {
    EXPECT_TRUE(seen.insert(idx).second);
  }
  EXPECT_EQ(seen.size(), d.size());
  EXPECT_LE(out->trash.size(), 4u);
}

TEST(AgglomerativeTest, EndToEndThroughWcopCtPassesVerifier) {
  const Dataset d = SmallSynthetic(35, 45, /*k_max=*/5);
  WcopOptions options;
  options.clustering_algo = WcopOptions::ClusteringAlgo::kAgglomerative;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const VerificationReport report = VerifyAnonymity(d, *result);
  EXPECT_TRUE(report.ok) << (report.messages.empty()
                                 ? "no messages"
                                 : report.messages.front());
}

TEST(AgglomerativeTest, DeterministicNoRandomness) {
  // The agglomerative pass has no random pivot: two runs agree regardless
  // of the seed field.
  const Dataset d = SmallSynthetic(30, 40);
  WcopOptions a = ResolveOptions(d, WcopOptions{});
  WcopOptions b = a;
  a.seed = 1;
  b.seed = 999;
  const auto ra = AgglomerativeClustering(d, 3, a);
  const auto rb = AgglomerativeClustering(d, 3, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->clusters.size(), rb->clusters.size());
  for (size_t i = 0; i < ra->clusters.size(); ++i) {
    EXPECT_EQ(ra->clusters[i].members, rb->clusters[i].members);
  }
}

TEST(AgglomerativeTest, UnsatisfiableKFails) {
  Dataset d;
  for (int i = 0; i < 5; ++i) {
    d.Add(MakeLineWithReq(i, i * 10.0, 0, 1, 0, 10, /*k=*/50, /*delta=*/100));
  }
  WcopOptions options = ResolveOptions(d, WcopOptions{});
  options.max_clustering_rounds = 4;
  Result<ClusteringOutcome> out = AgglomerativeClustering(d, 0, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsatisfiable);
}

TEST(AgglomerativeTest, SingletonsSurviveWhenAlreadySatisfied) {
  // Every trajectory demands k=1: no merging needed at all.
  Dataset d;
  for (int i = 0; i < 6; ++i) {
    d.Add(MakeLineWithReq(i, i * 1000.0, 0, 1, 0, 10, /*k=*/1, /*delta=*/50));
  }
  Result<ClusteringOutcome> out =
      AgglomerativeClustering(d, 0, ResolveOptions(d, WcopOptions{}));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->clusters.size(), 6u);
  EXPECT_TRUE(out->trash.empty());
}

TEST(AgglomerativeTest, CascadeMatchesExhaustiveBaseline) {
  // The medoid partner search now runs through the sharded cache's
  // lower-bound cascade; with the kill-switch off it must reproduce the
  // exhaustive merge sequence exactly.
  const Dataset d = SmallSynthetic(40, 45, /*k_max=*/5);
  WcopOptions on = ResolveOptions(d, WcopOptions{});
  WcopOptions off = on;
  off.distance.cascade = false;
  const auto ra = AgglomerativeClustering(d, 4, on);
  const auto rb = AgglomerativeClustering(d, 4, off);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  ASSERT_EQ(ra->clusters.size(), rb->clusters.size());
  for (size_t i = 0; i < ra->clusters.size(); ++i) {
    EXPECT_EQ(ra->clusters[i].pivot, rb->clusters[i].pivot) << i;
    EXPECT_EQ(ra->clusters[i].members, rb->clusters[i].members) << i;
  }
  EXPECT_EQ(ra->trash, rb->trash);
  EXPECT_EQ(ra->rounds, rb->rounds);
}

TEST(AgglomerativeTest, RejectsBadArguments) {
  const Dataset d = SmallSynthetic(10, 30);
  WcopOptions options = ResolveOptions(d, WcopOptions{});
  EXPECT_FALSE(AgglomerativeClustering(Dataset(), 0, options).ok());
  options.radius_max = 0.0;
  EXPECT_FALSE(AgglomerativeClustering(d, 0, options).ok());
}

}  // namespace
}  // namespace wcop
