#include <gtest/gtest.h>

#include <cmath>

#include "distance/dtw.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

TEST(DtwTest, IdenticalIsZero) {
  const Trajectory t = MakeLine(1, 0, 0, 3, 2, 15);
  EXPECT_DOUBLE_EQ(DtwDistance(t, t), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedDtwDistance(t, t), 0.0);
}

TEST(DtwTest, ParallelLinesSumOffsets) {
  const Trajectory a = MakeLine(1, 0, 0, 10, 0, 8);
  const Trajectory b = MakeLine(2, 0, 4, 10, 0, 8);
  // Optimal alignment is the diagonal: 8 matches of distance 4.
  EXPECT_NEAR(DtwDistance(a, b), 32.0, 1e-9);
  EXPECT_NEAR(NormalizedDtwDistance(a, b), 2.0, 1e-9);
}

TEST(DtwTest, Symmetric) {
  const Trajectory a = MakeLine(1, 0, 0, 7, 3, 9);
  const Trajectory b = MakeLine(2, 5, -2, 6, 4, 13);
  EXPECT_DOUBLE_EQ(DtwDistance(a, b), DtwDistance(b, a));
}

TEST(DtwTest, WarpsAcrossDifferentSamplingRates) {
  // Same path sampled at 1x and 2x density: warping aligns the 9 extra
  // dense samples (x = 1, 3, ..., 17) to their nearest coarse sample at
  // distance 1 each — far below the no-warp diagonal cost.
  const Trajectory coarse = MakeLine(1, 0, 0, 2, 0, 10);   // x: 0..18
  const Trajectory dense = MakeLine(2, 0, 0, 1, 0, 19);    // x: 0..18
  EXPECT_NEAR(DtwDistance(coarse, dense), 9.0, 1e-9);
  EXPECT_LT(NormalizedDtwDistance(coarse, dense), 0.5);
}

TEST(DtwTest, EmptyIsInfinite) {
  const Trajectory t = MakeLine(1, 0, 0, 1, 0, 5);
  EXPECT_TRUE(std::isinf(DtwDistance(t, Trajectory())));
  EXPECT_TRUE(std::isinf(DtwDistance(Trajectory(), t)));
}

TEST(DtwTest, BandConstraintNeverBeatsUnconstrained) {
  Rng rng(6);
  for (int round = 0; round < 20; ++round) {
    std::vector<Point> pa, pb;
    for (int i = 0; i < 12; ++i) {
      pa.emplace_back(rng.UniformReal(0, 10), rng.UniformReal(0, 10), i);
      pb.emplace_back(rng.UniformReal(0, 10), rng.UniformReal(0, 10), i);
    }
    const Trajectory a(1, pa), b(2, pb);
    const double unconstrained = DtwDistance(a, b, 0);
    const double banded = DtwDistance(a, b, 2);
    EXPECT_GE(banded + 1e-9, unconstrained);
  }
}

TEST(DtwTest, BandWidensToFeasibilityForLengthMismatch) {
  // |a| = 3, |b| = 10: a window of 1 is infeasible as given, but the
  // implementation widens it to the minimum feasible band.
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 3);
  const Trajectory b = MakeLine(2, 0, 0, 1, 0, 10);
  EXPECT_TRUE(std::isfinite(DtwDistance(a, b, 1)));
}

TEST(DtwTest, TriangleLikeSanityOnSharedPath) {
  // DTW is not a metric, but a-to-b plus b-to-c should not be wildly less
  // than a-to-c on collinear offsets (sanity envelope, not an identity).
  const Trajectory a = MakeLine(1, 0, 0, 5, 0, 10);
  const Trajectory b = MakeLine(2, 0, 3, 5, 0, 10);
  const Trajectory c = MakeLine(3, 0, 6, 5, 0, 10);
  EXPECT_GE(DtwDistance(a, b) + DtwDistance(b, c) + 1e-9, DtwDistance(a, c));
}

}  // namespace
}  // namespace wcop
