# Empty compiler generated dependencies file for mahdavifar_test.
# This may be replaced when dependencies are built.
