#ifndef WCOP_COMMON_FAILPOINT_H_
#define WCOP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace wcop {

/// RocksDB-SyncPoint-style fault injection registry.
///
/// Production code marks its fallible boundaries with
///
///   WCOP_FAILPOINT("geolife.read_line");
///
/// inside any function returning Status or Result<T>. Disarmed (the normal
/// state) a failpoint costs one relaxed atomic load. Tests arm a site —
/// programmatically through Arm()/ScopedFailpoint, or for whole binaries via
/// the WCOP_FAILPOINTS environment variable ("site1,site2", each firing
/// Status::Internal on every hit) — and the next hit returns the injected
/// Status from the enclosing function, exercising the error-propagation path
/// exactly as a real I/O or resource failure would.
///
/// All operations are thread-safe.
class FailpointRegistry {
 public:
  /// The process-wide registry. First access parses WCOP_FAILPOINTS.
  static FailpointRegistry& Instance();

  /// Arms `site` to return `status` on hits. `max_fires` > 0 limits the
  /// number of injected failures (the site disarms itself afterwards);
  /// -1 fires forever. Re-arming an armed site overwrites it.
  void Arm(std::string_view site, Status status, int max_fires = -1);

  /// Disarms `site`; no-op when not armed.
  void Disarm(std::string_view site);

  /// Disarms every site (test teardown).
  void DisarmAll();

  /// Fast path used by the WCOP_FAILPOINT macro: false when nothing is
  /// armed anywhere in the process.
  bool any_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Returns the injected Status when `site` is armed, OK otherwise.
  Status Fire(std::string_view site);

  /// Total hits observed at `site` (armed or not, but only counted while
  /// any site is armed — the disarmed fast path skips the registry).
  uint64_t HitCount(std::string_view site) const;

  /// Process-wide count of injected (non-OK) fires, across all sites and
  /// the whole process lifetime. Telemetry publishes this as the
  /// `failpoint.fires_total` gauge.
  uint64_t TotalFired() const {
    return fired_count_.load(std::memory_order_relaxed);
  }

  /// Names of the currently armed sites (diagnostics).
  std::vector<std::string> ArmedSites() const;

 private:
  FailpointRegistry();

  struct Entry {
    Status status;
    int remaining = -1;  ///< fires left; -1 = unlimited
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> sites_;
  std::unordered_map<std::string, uint64_t> hits_;
  std::atomic<int> armed_count_{0};
  std::atomic<uint64_t> fired_count_{0};
};

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor (even when the test body throws or asserts).
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Status status, int max_fires = -1)
      : site_(std::move(site)) {
    FailpointRegistry::Instance().Arm(site_, std::move(status), max_fires);
  }
  ~ScopedFailpoint() { FailpointRegistry::Instance().Disarm(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace wcop

/// Fault-injection boundary marker. Usable in any function returning Status
/// or Result<T> (both implicitly construct from a non-OK Status). Near-zero
/// cost when no failpoint is armed: a single relaxed atomic load.
#define WCOP_FAILPOINT(site)                                         \
  do {                                                               \
    if (::wcop::FailpointRegistry::Instance().any_armed()) {         \
      ::wcop::Status _wcop_fp_status =                               \
          ::wcop::FailpointRegistry::Instance().Fire(site);          \
      if (!_wcop_fp_status.ok()) {                                   \
        return _wcop_fp_status;                                      \
      }                                                              \
    }                                                                \
  } while (false)

#endif  // WCOP_COMMON_FAILPOINT_H_
