#include <gtest/gtest.h>

#include "test_util.h"
#include "traj/resample.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

TEST(ResampleTest, UniformGridHitsInterval) {
  // 0..10 seconds at 1 Hz, resampled to 2.5 s.
  Trajectory t = MakeLine(1, 0, 0, 1, 0, 11);
  const Trajectory r = ResampleUniform(t, 2.5);
  ASSERT_GE(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r[0].t, 0.0);
  EXPECT_DOUBLE_EQ(r[1].t, 2.5);
  EXPECT_DOUBLE_EQ(r.back().t, 10.0);
  // Positions follow the line x = t.
  for (const Point& p : r.points()) {
    EXPECT_NEAR(p.x, p.t, 1e-9);
  }
}

TEST(ResampleTest, SinglePointUnchanged) {
  Trajectory t(1, {Point(3, 4, 5)});
  const Trajectory r = ResampleUniform(t, 10.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0].x, 3.0);
}

TEST(ResampleTest, NonPositiveIntervalIsIdentity) {
  Trajectory t = MakeLine(1, 0, 0, 1, 0, 5);
  EXPECT_EQ(ResampleUniform(t, 0.0).size(), 5u);
  EXPECT_EQ(ResampleUniform(t, -1.0).size(), 5u);
}

TEST(ResampleTest, PreservesMetadata) {
  Trajectory t = MakeLine(9, 0, 0, 1, 0, 11);
  t.set_object_id(4);
  t.set_requirement(Requirement{6, 120.0});
  const Trajectory r = ResampleUniform(t, 3.0);
  EXPECT_EQ(r.id(), 9);
  EXPECT_EQ(r.object_id(), 4);
  EXPECT_EQ(r.requirement().k, 6);
}

TEST(DownsampleTest, KeepsEndpointsAndCount) {
  Trajectory t = MakeLine(1, 0, 0, 1, 0, 100);
  const Trajectory d = DownsampleToMaxPoints(t, 10);
  EXPECT_LE(d.size(), 10u);
  EXPECT_GE(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.front().t, t.front().t);
  EXPECT_DOUBLE_EQ(d.back().t, t.back().t);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DownsampleTest, NoOpWhenAlreadySmall) {
  Trajectory t = MakeLine(1, 0, 0, 1, 0, 5);
  EXPECT_EQ(DownsampleToMaxPoints(t, 10).size(), 5u);
  EXPECT_EQ(DownsampleToMaxPoints(t, 1).size(), 5u);  // max_points < 2
}

TEST(DownsampleTest, DatasetVariantAppliesToAll) {
  Dataset d;
  d.Add(MakeLine(0, 0, 0, 1, 0, 100));
  d.Add(MakeLine(1, 5, 5, 1, 0, 30));
  const Dataset small = DownsampleDataset(d, 20);
  EXPECT_LE(small[0].size(), 20u);
  EXPECT_LE(small[1].size(), 20u);
  EXPECT_EQ(small.size(), 2u);
}

TEST(UniformTimeGridTest, CoversDatasetSpan) {
  Dataset d;
  d.Add(MakeLine(0, 0, 0, 1, 0, 11, /*dt=*/1.0, /*t0=*/0.0));
  d.Add(MakeLine(1, 0, 0, 1, 0, 11, /*dt=*/1.0, /*t0=*/20.0));
  const std::vector<double> grid = UniformTimeGrid(d, 5.0);
  ASSERT_FALSE(grid.empty());
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_GE(grid.back(), 25.0);
  for (size_t i = 1; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid[i] - grid[i - 1], 5.0);
  }
}

TEST(UniformTimeGridTest, EmptyOnDegenerateInput) {
  EXPECT_TRUE(UniformTimeGrid(Dataset(), 5.0).empty());
  Dataset d;
  d.Add(MakeLine(0, 0, 0, 1, 0, 5));
  EXPECT_TRUE(UniformTimeGrid(d, 0.0).empty());
}

}  // namespace
}  // namespace wcop
