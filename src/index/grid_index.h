#ifndef WCOP_INDEX_GRID_INDEX_H_
#define WCOP_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/telemetry.h"
#include "geo/point.h"

namespace wcop {

/// Uniform spatial hash grid over 2-D points for epsilon-range queries.
///
/// Items are referenced by index (size_t) into a caller-owned collection; the
/// grid stores (x, y) only. Cell size should be close to the query radius —
/// then a range query touches at most 9 cells. Used by the per-snapshot
/// DBSCAN in convoy discovery and by the TRACLUS segment clustering
/// (indexing segment midpoints as a cheap pre-filter).
class GridIndex {
 public:
  /// Validated construction: fails with InvalidArgument on a non-positive
  /// or non-finite cell size instead of silently clamping.
  static Result<GridIndex> Create(double cell_size);

  /// `cell_size` should be > 0; non-positive values are clamped to 1 (use
  /// Create() to reject them instead).
  explicit GridIndex(double cell_size);

  /// Inserts an item with the given location.
  void Insert(size_t item, double x, double y);

  /// Attaches a telemetry sink (non-owning, may be null to detach). The
  /// counter handles (`grid.inserts`, `grid.range_queries`,
  /// `grid.candidates_scanned`) are resolved once here so the query path
  /// pays only relaxed atomic adds.
  void AttachTelemetry(telemetry::Telemetry* telemetry);

  /// The (validated or clamped) cell size in use.
  double cell_size() const { return cell_size_; }

  /// Number of inserted items.
  size_t size() const { return count_; }

  /// Returns items within `radius` of (x, y) (inclusive boundary). The
  /// candidate set is gathered from covering cells and filtered exactly.
  std::vector<size_t> RangeQuery(double x, double y, double radius) const;

  /// As RangeQuery, but appends candidate items *without* the exact distance
  /// filter (callers with a custom metric filter themselves). May contain
  /// items up to (radius + cell diagonal) away.
  void CandidateQuery(double x, double y, double radius,
                      std::vector<size_t>* out) const;

 private:
  struct CellKey {
    int64_t cx;
    int64_t cy;
    bool operator==(const CellKey& other) const {
      return cx == other.cx && cy == other.cy;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& key) const {
      // 64-bit mix of the two cell coordinates.
      uint64_t h = static_cast<uint64_t>(key.cx) * 0x9E3779B97F4A7C15ull;
      h ^= static_cast<uint64_t>(key.cy) + 0x9E3779B97F4A7C15ull + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    size_t item;
    double x;
    double y;
  };

  CellKey KeyFor(double x, double y) const;

  double cell_size_;
  size_t count_ = 0;
  telemetry::Counter* inserts_ = nullptr;
  telemetry::Counter* range_queries_ = nullptr;
  telemetry::Counter* candidates_scanned_ = nullptr;
  std::unordered_map<CellKey, std::vector<Entry>, CellKeyHash> cells_;
};

}  // namespace wcop

#endif  // WCOP_INDEX_GRID_INDEX_H_
