#include "cluster/dbscan.h"

#include <algorithm>
#include <deque>

namespace wcop {

std::vector<std::vector<size_t>> DbscanResult::Clusters() const {
  std::vector<std::vector<size_t>> out(static_cast<size_t>(num_clusters));
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0) {
      out[static_cast<size_t>(labels[i])].push_back(i);
    }
  }
  return out;
}

DbscanResult Dbscan(size_t num_items, size_t min_points,
                    const NeighborProvider& neighbors) {
  constexpr int kUnvisited = -2;
  DbscanResult result;
  result.labels.assign(num_items, kUnvisited);

  auto neighborhood_of = [&](size_t item) {
    std::vector<size_t> n = neighbors(item);
    // Ensure the item itself is counted exactly once.
    if (std::find(n.begin(), n.end(), item) == n.end()) {
      n.push_back(item);
    }
    return n;
  };

  for (size_t i = 0; i < num_items; ++i) {
    if (result.labels[i] != kUnvisited) {
      continue;
    }
    std::vector<size_t> seed = neighborhood_of(i);
    if (seed.size() < min_points) {
      result.labels[i] = DbscanResult::kNoise;
      continue;
    }
    const int cluster = result.num_clusters++;
    result.labels[i] = cluster;
    std::deque<size_t> frontier(seed.begin(), seed.end());
    while (!frontier.empty()) {
      const size_t q = frontier.front();
      frontier.pop_front();
      if (result.labels[q] == DbscanResult::kNoise) {
        result.labels[q] = cluster;  // border point adopted by this cluster
      }
      if (result.labels[q] != kUnvisited) {
        continue;
      }
      result.labels[q] = cluster;
      std::vector<size_t> qn = neighborhood_of(q);
      if (qn.size() >= min_points) {
        // q is itself a core point: expand through it.
        for (size_t r : qn) {
          if (result.labels[r] == kUnvisited ||
              result.labels[r] == DbscanResult::kNoise) {
            frontier.push_back(r);
          }
        }
      }
    }
  }
  return result;
}

}  // namespace wcop
