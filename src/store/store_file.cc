#include "store/store_file.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/snapshot.h"
#include "geo/bounding_box.h"

namespace wcop {
namespace store {

namespace {

constexpr char kFileMagic[8] = {'W', 'C', 'O', 'P', 'S', 'T', 'R', '1'};
constexpr char kIndexMagic[8] = {'W', 'C', 'O', 'P', 'S', 'I', 'D', 'X'};
constexpr char kEndMagic[8] = {'W', 'C', 'O', 'P', 'S', 'E', 'N', 'D'};
constexpr size_t kHeaderSize = 8 + 4 + 4;
constexpr size_t kBlockHeaderSize = 4 + 4;
constexpr size_t kEntrySize = 13 * 8;  // 13 8-byte fields per index entry
constexpr size_t kFooterSize = 8 + 8;

void PutU32(char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void PutU64(char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void PutF64(char* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

uint32_t GetU32(const char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

double GetF64(const char* in) {
  const uint64_t bits = GetU64(in);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

/// Whitespace-token scanner over a block payload; every accessor reports
/// kDataLoss on malformed input (a CRC-valid block can still be malformed
/// only through a writer bug, but the reader never trusts it).
class TokenScanner {
 public:
  TokenScanner(std::string_view text, size_t pos) : text_(text), pos_(pos) {}

  size_t pos() const { return pos_; }

  Result<std::string_view> Next() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::DataLoss("store record: unexpected end of payload");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ' ' &&
           text_[pos_] != '\n' && text_[pos_] != '\r' &&
           text_[pos_] != '\t') {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  Result<int64_t> NextI64() {
    WCOP_ASSIGN_OR_RETURN(std::string_view tok, Next());
    char buf[32];
    if (tok.size() >= sizeof(buf)) {
      return Status::DataLoss("store record: oversized integer token");
    }
    std::memcpy(buf, tok.data(), tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(buf, &end, 10);
    if (errno != 0 || end != buf + tok.size()) {
      return Status::DataLoss("store record: bad integer token");
    }
    return static_cast<int64_t>(v);
  }

  Result<double> NextDouble() {
    WCOP_ASSIGN_OR_RETURN(std::string_view tok, Next());
    char buf[64];
    if (tok.size() >= sizeof(buf)) {
      return Status::DataLoss("store record: oversized double token");
    }
    std::memcpy(buf, tok.data(), tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(buf, &end);
    if (end != buf + tok.size()) {
      return Status::DataLoss("store record: bad double token");
    }
    return v;
  }

 private:
  std::string_view text_;
  size_t pos_;
};

Status WriteAll(std::FILE* f, const char* data, size_t n,
                const std::string& path) {
  if (n != 0 && std::fwrite(data, 1, n, f) != n) {
    return Status::IoError("write failed on " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status ReadExact(std::FILE* f, uint64_t offset, char* out, size_t n,
                 const std::string& path) {
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::DataLoss("store " + path + ": seek past end (truncated?)");
  }
  if (std::fread(out, 1, n, f) != n) {
    return Status::DataLoss("store " + path + ": short read (truncated?)");
  }
  return Status::OK();
}

StoreEntry MakeEntry(const Trajectory& t, uint64_t offset,
                     uint64_t block_size) {
  StoreEntry e;
  e.id = t.id();
  e.offset = offset;
  e.block_size = block_size;
  e.num_points = t.size();
  e.k = t.requirement().k;
  e.delta = t.requirement().delta;
  const BoundingBox box = t.Bounds();
  e.min_x = box.min_x();
  e.min_y = box.min_y();
  e.max_x = box.max_x();
  e.max_y = box.max_y();
  e.t_min = t.StartTime();
  e.t_max = t.EndTime();
  return e;
}

void EncodeEntry(char* out, const StoreEntry& e) {
  PutU64(out + 0, static_cast<uint64_t>(e.id));
  PutU64(out + 8, e.offset);
  PutU64(out + 16, e.block_size);
  PutU64(out + 24, e.num_points);
  PutU64(out + 32, static_cast<uint64_t>(e.k));
  PutF64(out + 40, e.delta);
  PutF64(out + 48, e.min_x);
  PutF64(out + 56, e.min_y);
  PutF64(out + 64, e.max_x);
  PutF64(out + 72, e.max_y);
  PutF64(out + 80, e.t_min);
  PutF64(out + 88, e.t_max);
  PutU64(out + 96, 0);  // reserved
}

StoreEntry DecodeEntry(const char* in) {
  StoreEntry e;
  e.id = static_cast<int64_t>(GetU64(in + 0));
  e.offset = GetU64(in + 8);
  e.block_size = GetU64(in + 16);
  e.num_points = GetU64(in + 24);
  e.k = static_cast<int64_t>(GetU64(in + 32));
  e.delta = GetF64(in + 40);
  e.min_x = GetF64(in + 48);
  e.min_y = GetF64(in + 56);
  e.max_x = GetF64(in + 64);
  e.max_y = GetF64(in + 72);
  e.t_min = GetF64(in + 80);
  e.t_max = GetF64(in + 88);
  return e;
}

}  // namespace

void AppendTrajectoryRecord(std::string* out, const Trajectory& t) {
  out->append("traj ");
  out->append(std::to_string(t.id()));
  out->push_back(' ');
  out->append(std::to_string(t.object_id()));
  out->push_back(' ');
  out->append(std::to_string(t.parent_id()));
  out->push_back(' ');
  out->append(std::to_string(t.requirement().k));
  out->push_back(' ');
  AppendDouble(out, t.requirement().delta);
  out->push_back(' ');
  out->append(std::to_string(t.size()));
  out->push_back('\n');
  for (const Point& p : t.points()) {
    AppendDouble(out, p.x);
    out->push_back(' ');
    AppendDouble(out, p.y);
    out->push_back(' ');
    AppendDouble(out, p.t);
    out->push_back('\n');
  }
}

Result<Trajectory> ParseTrajectoryRecord(std::string_view payload,
                                         size_t* pos) {
  TokenScanner scan(payload, *pos);
  WCOP_ASSIGN_OR_RETURN(std::string_view marker, scan.Next());
  if (marker != "traj") {
    return Status::DataLoss("store record: missing 'traj' marker");
  }
  WCOP_ASSIGN_OR_RETURN(int64_t id, scan.NextI64());
  WCOP_ASSIGN_OR_RETURN(int64_t object_id, scan.NextI64());
  WCOP_ASSIGN_OR_RETURN(int64_t parent_id, scan.NextI64());
  WCOP_ASSIGN_OR_RETURN(int64_t k, scan.NextI64());
  WCOP_ASSIGN_OR_RETURN(double delta, scan.NextDouble());
  WCOP_ASSIGN_OR_RETURN(int64_t num_points, scan.NextI64());
  if (num_points < 0 ||
      static_cast<uint64_t>(num_points) > payload.size() - *pos) {
    return Status::DataLoss("store record: implausible point count");
  }
  std::vector<Point> points;
  points.reserve(static_cast<size_t>(num_points));
  for (int64_t i = 0; i < num_points; ++i) {
    WCOP_ASSIGN_OR_RETURN(double x, scan.NextDouble());
    WCOP_ASSIGN_OR_RETURN(double y, scan.NextDouble());
    WCOP_ASSIGN_OR_RETURN(double t, scan.NextDouble());
    points.push_back(Point{x, y, t});
  }
  Trajectory t(id, std::move(points),
               Requirement{static_cast<int>(k), delta});
  t.set_object_id(object_id);
  t.set_parent_id(parent_id);
  *pos = scan.pos();
  return t;
}

Result<TrajectoryStoreWriter> TrajectoryStoreWriter::Create(
    const std::string& path) {
  WCOP_FAILPOINT("store.create");
  TrajectoryStoreWriter w;
  w.path_ = path;
  w.tmp_path_ = path + ".tmp";
  w.live_tmp_ = ScopedLiveArtifact(w.tmp_path_);
  w.file_.reset(std::fopen(w.tmp_path_.c_str(), "wb"));
  if (w.file_ == nullptr) {
    return Status::IoError("cannot open " + w.tmp_path_ + ": " +
                           std::strerror(errno));
  }
  char header[kHeaderSize];
  std::memcpy(header, kFileMagic, 8);
  PutU32(header + 8, kStoreFormatVersion);
  PutU32(header + 12, 0);
  WCOP_RETURN_IF_ERROR(WriteAll(w.file_.get(), header, kHeaderSize,
                                w.tmp_path_));
  w.offset_ = kHeaderSize;
  return w;
}

TrajectoryStoreWriter::~TrajectoryStoreWriter() {
  if (!finished_ && file_ != nullptr) {
    file_.reset();
    std::remove(tmp_path_.c_str());
  }
}

Status TrajectoryStoreWriter::Append(const Trajectory& t) {
  if (file_ == nullptr || finished_) {
    return Status::FailedPrecondition("store writer is closed");
  }
  WCOP_RETURN_IF_ERROR(t.Validate());
  WCOP_FAILPOINT("store.write_block");
  std::string payload;
  payload.reserve(64 + t.size() * 60);
  AppendTrajectoryRecord(&payload, t);
  if (payload.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("trajectory record exceeds block limit");
  }
  char block_header[kBlockHeaderSize];
  PutU32(block_header, static_cast<uint32_t>(payload.size()));
  PutU32(block_header + 4, Crc32(payload));
  WCOP_RETURN_IF_ERROR(WriteAll(file_.get(), block_header, kBlockHeaderSize,
                                tmp_path_));
  WCOP_RETURN_IF_ERROR(WriteAll(file_.get(), payload.data(), payload.size(),
                                tmp_path_));
  index_.push_back(
      MakeEntry(t, offset_, kBlockHeaderSize + payload.size()));
  offset_ += kBlockHeaderSize + payload.size();
  return Status::OK();
}

Status TrajectoryStoreWriter::Finish() {
  if (file_ == nullptr || finished_) {
    return Status::FailedPrecondition("store writer is closed");
  }
  Status status = [&]() -> Status {
    WCOP_FAILPOINT("store.write_index");
    std::string section;
    section.reserve(8 + 8 + index_.size() * kEntrySize + 4);
    section.append(kIndexMagic, 8);
    char buf[kEntrySize];
    PutU64(buf, index_.size());
    section.append(buf, 8);
    for (const StoreEntry& e : index_) {
      EncodeEntry(buf, e);
      section.append(buf, kEntrySize);
    }
    // CRC over the count and the entries (everything after the marker).
    const uint32_t crc =
        Crc32(std::string_view(section).substr(8));
    PutU32(buf, crc);
    section.append(buf, 4);
    char footer[kFooterSize];
    PutU64(footer, offset_);
    std::memcpy(footer + 8, kEndMagic, 8);
    section.append(footer, kFooterSize);
    WCOP_RETURN_IF_ERROR(WriteAll(file_.get(), section.data(),
                                  section.size(), tmp_path_));
    if (std::fflush(file_.get()) != 0) {
      return Status::IoError("flush failed on " + tmp_path_ + ": " +
                             std::strerror(errno));
    }
    WCOP_FAILPOINT("store.fsync");
    if (::fsync(fileno(file_.get())) != 0) {
      return Status::IoError("fsync failed on " + tmp_path_ + ": " +
                             std::strerror(errno));
    }
    return Status::OK();
  }();
  file_.reset();
  if (status.ok()) {
    // Fired by hand (not WCOP_FAILPOINT, which returns): an injected rename
    // failure must still fall through to the temp-file cleanup below.
    if (FailpointRegistry::Instance().active()) {
      status = FailpointRegistry::Instance().Fire("store.rename");
    }
    if (status.ok() &&
        std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      status = Status::IoError("rename " + tmp_path_ + " -> " + path_ +
                               " failed: " + std::strerror(errno));
    }
  }
  if (!status.ok()) {
    std::remove(tmp_path_.c_str());
  }
  live_tmp_.Release();
  finished_ = true;
  return status;
}

Result<TrajectoryStoreReader> TrajectoryStoreReader::Open(
    const std::string& path) {
  WCOP_FAILPOINT("store.open");
  TrajectoryStoreReader r;
  r.path_ = path;
  r.mutex_ = std::make_unique<std::mutex>();
  r.file_.reset(std::fopen(path.c_str(), "rb"));
  if (r.file_ == nullptr) {
    return Status::NotFound("cannot open store " + path + ": " +
                            std::strerror(errno));
  }
  std::FILE* f = r.file_.get();
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("seek failed on " + path);
  }
  const long end = std::ftell(f);
  if (end < 0) {
    return Status::IoError("ftell failed on " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(end);
  if (file_size < kHeaderSize + kFooterSize) {
    return Status::DataLoss("store " + path + ": file too small");
  }
  char header[kHeaderSize];
  WCOP_RETURN_IF_ERROR(ReadExact(f, 0, header, kHeaderSize, path));
  if (std::memcmp(header, kFileMagic, 8) != 0) {
    return Status::DataLoss("store " + path + ": bad magic");
  }
  const uint32_t version = GetU32(header + 8);
  if (version != kStoreFormatVersion) {
    return Status::FailedPrecondition("store " + path +
                                      ": unsupported version " +
                                      std::to_string(version));
  }
  char footer[kFooterSize];
  WCOP_RETURN_IF_ERROR(
      ReadExact(f, file_size - kFooterSize, footer, kFooterSize, path));
  if (std::memcmp(footer + 8, kEndMagic, 8) != 0) {
    return Status::DataLoss("store " + path +
                            ": missing end marker (truncated?)");
  }
  const uint64_t index_offset = GetU64(footer);
  if (index_offset < kHeaderSize ||
      index_offset + 8 + 8 + 4 + kFooterSize > file_size) {
    return Status::DataLoss("store " + path + ": index offset out of range");
  }
  WCOP_FAILPOINT("store.read_index");
  char index_header[16];
  WCOP_RETURN_IF_ERROR(ReadExact(f, index_offset, index_header, 16, path));
  if (std::memcmp(index_header, kIndexMagic, 8) != 0) {
    return Status::DataLoss("store " + path + ": bad index marker");
  }
  const uint64_t count = GetU64(index_header + 8);
  if (count > file_size / kEntrySize) {
    return Status::DataLoss("store " + path + ": implausible index count");
  }
  const uint64_t index_bytes = 8 + count * kEntrySize;
  if (index_offset + 8 + index_bytes + 4 + kFooterSize != file_size) {
    return Status::DataLoss("store " + path + ": index size mismatch");
  }
  std::string section(index_bytes, '\0');
  WCOP_RETURN_IF_ERROR(
      ReadExact(f, index_offset + 8, section.data(), section.size(), path));
  char crc_buf[4];
  WCOP_RETURN_IF_ERROR(
      ReadExact(f, index_offset + 8 + index_bytes, crc_buf, 4, path));
  if (Crc32(section) != GetU32(crc_buf)) {
    return Status::DataLoss("store " + path + ": index CRC mismatch");
  }
  r.index_.reserve(count);
  r.by_id_.reserve(count);
  uint64_t expected_offset = kHeaderSize;
  for (uint64_t i = 0; i < count; ++i) {
    StoreEntry e = DecodeEntry(section.data() + 8 + i * kEntrySize);
    if (e.offset != expected_offset || e.block_size < kBlockHeaderSize ||
        e.offset + e.block_size > index_offset) {
      return Status::DataLoss("store " + path + ": corrupt index entry " +
                              std::to_string(i));
    }
    expected_offset = e.offset + e.block_size;
    r.total_points_ += e.num_points;
    if (!r.by_id_.emplace(e.id, i).second) {
      return Status::DataLoss("store " + path + ": duplicate id " +
                              std::to_string(e.id));
    }
    r.index_.push_back(e);
  }
  if (expected_offset != index_offset) {
    return Status::DataLoss("store " + path + ": blocks do not cover file");
  }
  return r;
}

Result<Trajectory> TrajectoryStoreReader::Read(size_t i) const {
  if (i >= index_.size()) {
    return Status::InvalidArgument("store read out of range");
  }
  WCOP_FAILPOINT("store.read_block");
  const StoreEntry& e = index_[i];
  std::string block(e.block_size, '\0');
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    WCOP_RETURN_IF_ERROR(
        ReadExact(file_.get(), e.offset, block.data(), block.size(), path_));
  }
  const uint32_t payload_size = GetU32(block.data());
  const uint32_t crc = GetU32(block.data() + 4);
  if (payload_size != e.block_size - kBlockHeaderSize) {
    return Status::DataLoss("store " + path_ + ": block " +
                            std::to_string(i) + " size mismatch");
  }
  const std::string_view payload =
      std::string_view(block).substr(kBlockHeaderSize);
  if (Crc32(payload) != crc) {
    return Status::DataLoss("store " + path_ + ": block " +
                            std::to_string(i) + " CRC mismatch");
  }
  size_t pos = 0;
  WCOP_ASSIGN_OR_RETURN(Trajectory t, ParseTrajectoryRecord(payload, &pos));
  if (t.id() != e.id || t.size() != e.num_points) {
    return Status::DataLoss("store " + path_ + ": block " +
                            std::to_string(i) + " does not match index");
  }
  return t;
}

Result<Trajectory> TrajectoryStoreReader::ReadById(int64_t id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("store " + path_ + ": no trajectory " +
                            std::to_string(id));
  }
  return Read(it->second);
}

Result<Dataset> TrajectoryStoreReader::ReadAll(
    const RunContext* context) const {
  Dataset dataset;
  dataset.mutable_trajectories().reserve(index_.size());
  for (size_t i = 0; i < index_.size(); ++i) {
    if (i % 256 == 0) {
      WCOP_RETURN_IF_ERROR(CheckRunContext(context));
    }
    WCOP_ASSIGN_OR_RETURN(Trajectory t, Read(i));
    dataset.Add(std::move(t));
  }
  return dataset;
}

Status WriteDatasetStore(const Dataset& dataset, const std::string& path) {
  WCOP_ASSIGN_OR_RETURN(TrajectoryStoreWriter writer,
                        TrajectoryStoreWriter::Create(path));
  for (const Trajectory& t : dataset.trajectories()) {
    WCOP_RETURN_IF_ERROR(writer.Append(t));
  }
  return writer.Finish();
}

Result<size_t> SweepStaleArtifacts(const std::string& dir,
                                   telemetry::Telemetry* telemetry) {
  WCOP_FAILPOINT("janitor.sweep");
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    if (errno == ENOENT) {
      return size_t{0};  // nothing there yet, nothing to sweep
    }
    return Status::IoError("janitor: cannot open directory " + dir + ": " +
                           std::strerror(errno));
  }
  size_t removed = 0;
  size_t live_skipped = 0;
  Status first_error;
  for (struct dirent* entry = ::readdir(handle); entry != nullptr;
       entry = ::readdir(handle)) {
    const std::string_view name(entry->d_name);
    constexpr std::string_view kSuffix = ".tmp";
    if (name.size() <= kSuffix.size() ||
        name.substr(name.size() - kSuffix.size()) != kSuffix) {
      continue;
    }
    const std::string path = dir + "/" + std::string(name);
    if (IsLiveArtifact(path)) {
      // An in-flight writer in this process owns the file; it is not an
      // orphan, and deleting it would tear a live publish.
      ++live_skipped;
      log::Debug("janitor: skipped live artifact", {{"path", path}});
      continue;
    }
    if (std::remove(path.c_str()) != 0) {
      if (errno == ENOENT) {
        // Lost the race with a concurrent atomic publish: the temp was
        // renamed (or cleaned by its owner) between readdir and here.
        // The file became someone's committed output — not an orphan,
        // not an error.
        continue;
      }
      if (first_error.ok()) {
        first_error = Status::IoError("janitor: cannot remove " + path +
                                      ": " + std::strerror(errno));
      }
      continue;
    }
    ++removed;
    log::Info("janitor: removed stale artifact", {{"path", path}});
  }
  ::closedir(handle);
  if (!first_error.ok()) {
    return first_error;
  }
  if (telemetry != nullptr && removed > 0) {
    telemetry->metrics().GetCounter("janitor.stale_removed")->Add(removed);
  }
  if (telemetry != nullptr && live_skipped > 0) {
    telemetry->metrics().GetCounter("janitor.live_skipped")->Add(live_skipped);
  }
  return removed;
}

}  // namespace store
}  // namespace wcop
