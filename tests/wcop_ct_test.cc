#include <gtest/gtest.h>

#include <algorithm>

#include "anon/verifier.h"
#include "anon/wcop_ct.h"
#include "common/run_context.h"
#include "common/telemetry.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

TEST(WcopCtTest, EndToEndPassesIndependentVerifier) {
  const Dataset d = SmallSynthetic(40, 50, /*k_max=*/5, /*delta_max=*/250.0);
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_TRUE(result.ok()) << result.status();
  const VerificationReport report = VerifyAnonymity(d, *result);
  EXPECT_TRUE(report.ok) << (report.messages.empty()
                                 ? "no messages"
                                 : report.messages.front());
  EXPECT_GT(report.clusters_checked, 0u);
}

TEST(WcopCtTest, ReportIsInternallyConsistent) {
  const Dataset d = SmallSynthetic(40, 50);
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_TRUE(result.ok());
  const AnonymizationReport& r = result->report;
  EXPECT_EQ(r.input_trajectories, d.size());
  EXPECT_EQ(r.trashed_trajectories, result->trashed_ids.size());
  EXPECT_EQ(result->sanitized.size() + r.trashed_trajectories, d.size());
  EXPECT_EQ(r.num_clusters, result->clusters.size());
  EXPECT_GE(r.ttd, 0.0);
  EXPECT_DOUBLE_EQ(r.total_distortion, r.ttd);  // no editing in plain CT
  EXPECT_GT(r.omega, 0.0);
  EXPECT_GT(r.discernibility, 0.0);
  EXPECT_GE(r.runtime_seconds, 0.0);
  // Trash bounded by the 10% default.
  EXPECT_LE(r.trashed_trajectories, d.size() / 10);
}

TEST(WcopCtTest, SanitizedPreservesIdsInInputOrder) {
  const Dataset d = SmallSynthetic(30, 40);
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_TRUE(result.ok());
  // ids of published trajectories appear in the same relative order as the
  // input.
  int64_t prev = -1;
  for (const Trajectory& t : result->sanitized.trajectories()) {
    EXPECT_GT(t.id(), prev);
    prev = t.id();
  }
}

TEST(WcopCtTest, DeterministicForSeed) {
  const Dataset d = SmallSynthetic(30, 40);
  WcopOptions options;
  options.seed = 1234;
  const auto a = RunWcopCt(d, options);
  const auto b = RunWcopCt(d, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->report.ttd, b->report.ttd);
  EXPECT_EQ(a->report.num_clusters, b->report.num_clusters);
}

TEST(WcopCtTest, EveryClusterSatisfiesItsMembersRequirements) {
  const Dataset d = SmallSynthetic(50, 40, /*k_max=*/6);
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_TRUE(result.ok());
  for (const AnonymityCluster& c : result->clusters) {
    for (size_t m : c.members) {
      EXPECT_GE(c.members.size(),
                static_cast<size_t>(d[m].requirement().k));
      EXPECT_LE(c.delta, d[m].requirement().delta + 1e-9);
    }
  }
}

TEST(WcopCtTest, TelemetryCountsMatchRunContextAccounting) {
  const Dataset d = SmallSynthetic();
  RunContext context;
  telemetry::Telemetry telemetry;
  WcopOptions options;
  options.run_context = &context;
  options.telemetry = &telemetry;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_TRUE(result.ok()) << result.status();

  const telemetry::MetricsSnapshot& m = result->report.metrics;
  ASSERT_FALSE(m.empty());

  // Both accounting systems charge at the same site (one computed,
  // non-cached pairwise distance), so they must agree exactly.
  const uint64_t counted =
      m.CounterValue(DistanceCallCounterName(options.distance));
  EXPECT_GT(counted, 0u);
  EXPECT_EQ(counted, context.distance_computations());
  EXPECT_DOUBLE_EQ(m.GaugeValue("run_context.distance_computations"),
                   static_cast<double>(context.distance_computations()));
  EXPECT_DOUBLE_EQ(m.GaugeValue("run_context.candidate_pairs"),
                   static_cast<double>(context.candidate_pairs()));

  // The clustering phase ran: attempts happened and some were accepted
  // (leftover assignment may still alter the final cluster count).
  EXPECT_GT(m.CounterValue("cluster.attempts"), 0u);
  EXPECT_GT(m.CounterValue("cluster.accepted"), 0u);
  EXPECT_GE(m.CounterValue("cluster.attempts"),
            m.CounterValue("cluster.accepted"));

  // Phase spans were recorded with the documented names and proper nesting
  // (translate under run).
  const std::string trace = telemetry.trace().ToChromeTraceJson();
  EXPECT_NE(trace.find("wcop_ct/run"), std::string::npos);
  EXPECT_NE(trace.find("wcop_ct/translate"), std::string::npos);
}

TEST(WcopCtTest, NoTelemetryLeavesReportMetricsEmpty) {
  const Dataset d = SmallSynthetic(20, 40);
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.metrics.empty());
}

TEST(WcopCtTest, RejectsEmptyDataset) {
  EXPECT_FALSE(RunWcopCt(Dataset()).ok());
}

TEST(WcopCtTest, ResolveOptionsFillsAutoFields) {
  const Dataset d = SmallSynthetic(20, 40);
  const WcopOptions resolved = ResolveOptions(d, WcopOptions{});
  EXPECT_GT(resolved.radius_max, 0.0);
  EXPECT_GT(resolved.distance.edr_scale, 0.0);
  EXPECT_GT(resolved.distance.tolerance.dx, 0.0);
  EXPECT_GT(resolved.distance.tolerance.dt, 0.0);
  // Explicit values survive resolution.
  WcopOptions pinned;
  pinned.radius_max = 777.0;
  EXPECT_DOUBLE_EQ(ResolveOptions(d, pinned).radius_max, 777.0);
}

TEST(WcopCtTest, TrashOverrideWins) {
  const Dataset d = SmallSynthetic(30, 40);
  WcopOptions options;
  options.trash_max_override = 0;  // forbid any trash
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  // Either it succeeds with zero trash or reports unsatisfiable; both are
  // acceptable outcomes depending on the data, but zero-trash must hold on
  // success.
  if (result.ok()) {
    EXPECT_EQ(result->report.trashed_trajectories, 0u);
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kUnsatisfiable);
  }
}

}  // namespace
}  // namespace wcop
