#ifndef WCOP_COMMON_PROCESS_STATS_H_
#define WCOP_COMMON_PROCESS_STATS_H_

#include <cstdint>

#include "common/telemetry.h"

namespace wcop {
namespace telemetry {

/// Point-in-time view of the calling process, read from /proc (Linux).
/// On platforms without /proc the read fails and the metrics are simply
/// not published — consumers must treat every field as best-effort.
struct ProcessStats {
  double resident_memory_bytes = 0.0;
  double virtual_memory_bytes = 0.0;
  double cpu_seconds_total = 0.0;    ///< user + system
  double open_fds = 0.0;
  double threads = 0.0;
  double start_time_seconds = 0.0;   ///< Unix epoch seconds
  double uptime_seconds = 0.0;       ///< now - start_time_seconds
};

/// Fills `out` from /proc/self/stat, /proc/stat (btime) and /proc/self/fd.
/// Returns false (leaving `out` partially filled with zeros) when /proc is
/// unavailable or unparsable.
bool ReadProcessStats(ProcessStats* out);

/// Reads the current process stats and publishes them as gauges on
/// `registry` under the conventional Prometheus process_* names
/// (process.resident_memory_bytes, process.cpu_seconds_total, ...).
/// Call on each /metrics scrape so the exposed values are fresh.
/// No-op (returns false) when /proc is unavailable.
bool PublishProcessMetrics(MetricsRegistry* registry);

}  // namespace telemetry
}  // namespace wcop

#endif  // WCOP_COMMON_PROCESS_STATS_H_
