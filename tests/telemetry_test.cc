#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"

namespace wcop {
namespace telemetry {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator for the trace-export round-trip test. It
// accepts exactly the RFC 8259 grammar (no trailing commas, no NaN), which
// is what chrome://tracing and `python3 -m json.tool` require.
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (Peek() != ':') {
        return false;
      }
      ++pos_;
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) {
      return false;
    }
    pos_ += w.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(JsonScannerTest, SanityOnKnownInputs) {
  EXPECT_TRUE(JsonScanner(R"({"a":[1,2.5,-3e4],"b":"x\"y","c":null})").Valid());
  EXPECT_FALSE(JsonScanner(R"({"a":1,})").Valid());
  EXPECT_FALSE(JsonScanner(R"({"a":nan})").Valid());
  EXPECT_FALSE(JsonScanner(R"({"a":1)").Valid());
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistryTest, CountersAccumulateAndSnapshot) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("cluster.attempts");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);

  // Same name resolves to the same counter; a second handle sees the adds.
  EXPECT_EQ(registry.GetCounter("cluster.attempts"), c);
  EXPECT_NE(registry.GetCounter("cluster.accepted"), c);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("cluster.attempts"), 42u);
  EXPECT_EQ(snapshot.CounterValue("cluster.accepted"), 0u);
  EXPECT_EQ(snapshot.CounterValue("no.such.counter"), 0u);
}

TEST(MetricsRegistryTest, GaugesHoldLastWrite) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("run_context.distance_computations");
  g->Set(10.0);
  g->Set(3.5);
  EXPECT_DOUBLE_EQ(registry.Snapshot().GaugeValue(
                       "run_context.distance_computations"),
                   3.5);
  EXPECT_DOUBLE_EQ(registry.Snapshot().GaugeValue("absent"), 0.0);
}

TEST(MetricsRegistryTest, HandlePointersStableAcrossGrowth) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("metric.000");
  for (int i = 1; i < 200; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "metric.%03d", i);
    registry.GetCounter(name);
  }
  first->Add(7);
  EXPECT_EQ(registry.GetCounter("metric.000")->value(), 7u);
  EXPECT_EQ(registry.Snapshot().counters.size(), 200u);
}

TEST(MetricsRegistryTest, CounterAddHelperIsNullSafe) {
  CounterAdd(nullptr);        // must not crash
  CounterAdd(nullptr, 1000);  // ditto
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("x");
  CounterAdd(c, 3);
  EXPECT_EQ(c->value(), 3u);
}

// ---------------------------------------------------------------------------
// Histogram bucketing.

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket b >= 1 holds
  // [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Histogram::BucketFor(1023), 10u);
  EXPECT_EQ(Histogram::BucketFor(1024), 11u);
  EXPECT_EQ(Histogram::BucketFor(UINT64_MAX), Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);

  // Round trip: every value lands in a bucket whose range contains it.
  for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 100ull, 65535ull, 1ull << 40}) {
    const size_t b = Histogram::BucketFor(v);
    EXPECT_GE(v, Histogram::BucketLowerBound(b)) << v;
    if (b + 1 < Histogram::kBuckets) {
      EXPECT_LT(v, Histogram::BucketLowerBound(b + 1)) << v;
    }
  }
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  Histogram h;
  for (uint64_t v : {5u, 1u, 100u, 7u}) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 113u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket_count(Histogram::BucketFor(5)), 2u);  // 5 and 7
}

TEST(HistogramTest, SnapshotPercentilesWithinRange) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency");
  for (uint64_t v = 1; v <= 1000; ++v) {
    h->Record(v);
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSummary* s = snapshot.FindHistogram("latency");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1000u);
  EXPECT_EQ(s->min, 1u);
  EXPECT_EQ(s->max, 1000u);
  EXPECT_DOUBLE_EQ(s->mean, 500.5);
  // Log-scale buckets give coarse percentiles; assert ordering and range,
  // not exact values.
  EXPECT_GE(s->p50, 1.0);
  EXPECT_LE(s->p50, s->p90);
  EXPECT_LE(s->p90, s->p99);
  EXPECT_LE(s->p99, 1000.0);
  EXPECT_EQ(snapshot.FindHistogram("absent"), nullptr);
}

// ---------------------------------------------------------------------------
// Concurrency (run under WCOP_SANITIZE=thread in CI).

TEST(TelemetryConcurrencyTest, ConcurrentCountersAndHistograms) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolving by name concurrently exercises the registry mutex; the
      // adds exercise the lock-free paths.
      Counter* c = registry.GetCounter("shared.counter");
      Histogram* h = registry.GetHistogram("shared.histogram");
      Gauge* g = registry.GetGauge("shared.gauge");
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Record(static_cast<uint64_t>(i));
        g->Set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("shared.counter"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const HistogramSummary* h = snapshot.FindHistogram("shared.histogram");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, static_cast<uint64_t>(kPerThread) - 1);
}

TEST(TelemetryConcurrencyTest, ConcurrentSpansGetDistinctThreadNumbers) {
  Telemetry telemetry;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&telemetry] {
      for (int i = 0; i < 50; ++i) {
        WCOP_TRACE_SPAN(&telemetry, "test/worker");
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const std::vector<TraceEvent> events = telemetry.trace().Events();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * 50);
  uint32_t max_tid = 0;
  for (const TraceEvent& e : events) {
    max_tid = std::max(max_tid, e.tid);
  }
  EXPECT_EQ(max_tid, static_cast<uint32_t>(kThreads) - 1);
}

// ---------------------------------------------------------------------------
// Trace spans.

TEST(TraceTest, SpansNestAndRecordDepth) {
  Telemetry telemetry;
  {
    WCOP_TRACE_SPAN(&telemetry, "outer");
    {
      WCOP_TRACE_SPAN(&telemetry, "inner");
    }
  }
  const std::vector<TraceEvent> events = telemetry.trace().Events();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it is recorded first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  // The inner interval is contained in the outer one.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
}

TEST(TraceTest, NullTelemetryRecordsNothing) {
  Telemetry* null_telemetry = nullptr;
  {
    WCOP_TRACE_SPAN(null_telemetry, "never");
  }
  // Depth bookkeeping must also stay untouched: a real span opened after
  // null ones still starts at depth 0.
  Telemetry telemetry;
  {
    WCOP_TRACE_SPAN(&telemetry, "real");
  }
  const std::vector<TraceEvent> events = telemetry.trace().Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].depth, 0u);
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  Telemetry telemetry;
  {
    WCOP_TRACE_SPAN(&telemetry, "wcop_ct/run");
    {
      WCOP_TRACE_SPAN(&telemetry, "cluster/greedy");
    }
    {
      WCOP_TRACE_SPAN(&telemetry, "wcop_ct/translate");
    }
  }
  const std::string json = telemetry.trace().ToChromeTraceJson();
  EXPECT_TRUE(JsonScanner(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster/greedy\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceTest, TraceIdAppearsInChromeJson) {
  Telemetry telemetry;
  telemetry.trace().set_trace_id("wcop-job-00c0ffee00c0ffee");
  {
    WCOP_TRACE_SPAN(&telemetry, "server/job");
  }
  EXPECT_EQ(telemetry.trace().trace_id(), "wcop-job-00c0ffee00c0ffee");
  const std::string json = telemetry.trace().ToChromeTraceJson();
  EXPECT_TRUE(JsonScanner(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceId\":\"wcop-job-00c0ffee00c0ffee\""),
            std::string::npos)
      << json;
}

TEST(TraceTest, MergeFromFoldsShardLanesIntoOneTimeline) {
  TraceRecorder parent;
  TraceRecorder shard0;
  TraceRecorder shard1;
  shard0.Record("shard/anonymize", 100, 200, 0);
  shard1.Record("shard/anonymize", 50, 150, 0);
  parent.Record("server/job", 0, 300, 0);
  parent.MergeFrom(shard0, /*pid=*/2);
  parent.MergeFrom(shard1, /*pid=*/3);

  const std::vector<TraceEvent> events = parent.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].pid, 1u);  // coordinator lane
  EXPECT_EQ(events[1].pid, 2u);
  EXPECT_EQ(events[2].pid, 3u);
  // Durations survive the clock re-basing exactly.
  EXPECT_EQ(events[1].dur_ns, 100u);
  EXPECT_EQ(events[2].dur_ns, 100u);

  const std::string json = parent.ToChromeTraceJson();
  EXPECT_TRUE(JsonScanner(json).Valid()) << json;
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos) << json;
}

TEST(MetricsTest, SnapshotCarriesExactBucketCounts) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  h->Record(0);
  h->Record(3);
  h->Record(3);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSummary* summary = snapshot.FindHistogram("h");
  ASSERT_NE(summary, nullptr);
  ASSERT_EQ(summary->buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(summary->buckets[0], 1u);                      // the zero
  EXPECT_EQ(summary->buckets[Histogram::BucketFor(3)], 2u);
}

TEST(MetricsTest, AccumulateSnapshotRollsUpExactly) {
  // Per-job registry -> snapshot -> service registry, twice, as the
  // service worker does after each job.
  MetricsRegistry service;
  for (int job = 0; job < 2; ++job) {
    MetricsRegistry per_job;
    per_job.GetCounter("jobs.work")->Add(5);
    per_job.GetGauge("jobs.last_size")->Set(10.0 + job);
    Histogram* h = per_job.GetHistogram("jobs.ns");
    h->Record(7);
    h->Record(90);
    AccumulateSnapshot(&service, per_job.Snapshot());
  }
  const MetricsSnapshot rolled = service.Snapshot();
  EXPECT_EQ(rolled.CounterValue("jobs.work"), 10u);
  EXPECT_EQ(rolled.GaugeValue("jobs.last_size"), 11.0);  // last write wins
  const HistogramSummary* h = rolled.FindHistogram("jobs.ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_EQ(h->sum, 2u * (7 + 90));
  EXPECT_EQ(h->min, 7u);
  EXPECT_EQ(h->max, 90u);
  // Bucket resolution is preserved, not flattened into count/sum.
  EXPECT_EQ(h->buckets[Histogram::BucketFor(7)], 2u);
  EXPECT_EQ(h->buckets[Histogram::BucketFor(90)], 2u);
}

TEST(TraceTest, SummaryListsTopSpans) {
  Telemetry telemetry;
  for (int i = 0; i < 3; ++i) {
    WCOP_TRACE_SPAN(&telemetry, "phase/a");
  }
  {
    WCOP_TRACE_SPAN(&telemetry, "phase/b");
  }
  const std::string summary = telemetry.trace().Summary();
  EXPECT_NE(summary.find("phase/a"), std::string::npos);
  EXPECT_NE(summary.find("phase/b"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ScopedTimer (stopwatch satellite).

TEST(ScopedTimerTest, RecordsElapsedIntoHistogram) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("phase.test_ns");
  {
    ScopedTimer timer(h);
    EXPECT_GE(timer.watch().ElapsedNanos(), 0);
  }
  EXPECT_EQ(h->count(), 1u);
  {
    ScopedTimer noop(nullptr);  // null histogram: must not crash
  }
  EXPECT_EQ(h->count(), 1u);
}

TEST(StopwatchTest, ElapsedNanosMonotone) {
  Stopwatch watch;
  const int64_t a = watch.ElapsedNanos();
  const int64_t b = watch.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace telemetry
}  // namespace wcop
