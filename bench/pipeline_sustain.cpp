// Sustained continuous-publication bench: drive the out-of-core pipeline
// (pipeline/continuous.h) over a corpus spanning many windows at a fixed
// publication cadence and prove it keeps up — every window's wall time
// under the cadence budget — with bounded memory.
//
// The corpus is generated window tile by window tile (co-travelling groups
// inside each window plus boundary crossers that exercise the carry-over
// chain) and streamed straight into a trajectory store; neither the corpus
// nor any window is ever whole in memory. The bench then runs the pipeline
// end to end, records per-window latency through the progress sink, and
// fails (non-zero exit) if
//   - fewer than --min-windows windows were published,
//   - the p99 window latency exceeds --cadence-seconds (the pipeline would
//     fall behind a real-time feed publishing one window per cadence), or
//   - peak RSS exceeds --rss-budget-mb.
//
// Usage:
//   ./pipeline_sustain [--windows=24] [--groups-per-window=6]
//                      [--window=600] [--cadence-seconds=30]
//                      [--rss-budget-mb=512] [--dir=pipeline_sustain.tmp]
//                      [--keep-store] [--json-out=FILE]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/arg_parser.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "pipeline/continuous.h"
#include "store/store_file.h"

using namespace wcop;
using bench::JsonOut;

namespace {

// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 off Linux.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

/// One window's tile: `groups` clusters of three co-travelling lines that
/// live inside window `w`, plus one crosser per group that starts late
/// enough to spill a short fragment into window w+1 — so every boundary
/// carries state. Fragment ids are globally unique by construction.
Status AppendWindowTile(store::TrajectoryStoreWriter* writer, size_t w,
                        size_t groups, double window_seconds, Rng* rng) {
  const double t0 = static_cast<double>(w) * window_seconds;
  const double dt = 10.0;
  const size_t in_window_points =
      std::max<size_t>(4, static_cast<size_t>(window_seconds / dt) - 2);
  int64_t id = static_cast<int64_t>(w * groups * 4);
  for (size_t g = 0; g < groups; ++g) {
    const double gx = 4000.0 * static_cast<double>(g);
    const double gy = 50000.0 * static_cast<double>(w % 7);
    const int k = static_cast<int>(rng->UniformInt(2, 4));
    const double delta = rng->UniformReal(100.0, 300.0);
    for (int i = 0; i < 3; ++i) {
      std::vector<Point> pts;
      pts.reserve(in_window_points);
      for (size_t p = 0; p < in_window_points; ++p) {
        pts.emplace_back(gx + 5.0 * static_cast<double>(p),
                         gy + 30.0 * i, t0 + dt * static_cast<double>(p));
      }
      Trajectory t(id, std::move(pts), Requirement{k, delta});
      t.set_object_id(id);
      WCOP_RETURN_IF_ERROR(writer->Append(t));
      ++id;
    }
    // The crosser: starts one sample before the boundary, so window w
    // spills a single-point carry record that window w+1 must merge.
    std::vector<Point> cross;
    const double cross_t0 = t0 + window_seconds - dt;
    for (size_t p = 0; p < 6; ++p) {
      cross.emplace_back(gx + 5.0 * static_cast<double>(p), gy + 120.0,
                         cross_t0 + dt * static_cast<double>(p));
    }
    Trajectory t(id, std::move(cross), Requirement{2, 300.0});
    t.set_object_id(id);
    WCOP_RETURN_IF_ERROR(writer->Append(t));
    ++id;
  }
  return Status::OK();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const size_t i = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[i];
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const size_t windows = static_cast<size_t>(args.GetInt("windows", 24));
  const size_t groups =
      static_cast<size_t>(args.GetInt("groups-per-window", 6));
  const double window_seconds = args.GetDouble("window", 600.0);
  const double cadence_seconds = args.GetDouble("cadence-seconds", 30.0);
  const double rss_budget_mb = args.GetDouble("rss-budget-mb", 512.0);
  const size_t min_windows = static_cast<size_t>(args.GetInt(
      "min-windows", static_cast<int64_t>(windows)));
  const std::string dir = args.GetString("dir", "pipeline_sustain.tmp");
  JsonOut json_out(args);

  bench::PrintHeader("Sustained continuous publication (out-of-core)");
  std::printf("corpus: %zu windows x %zu groups (window %.0f s), cadence "
              "budget %.1f s/window, RSS budget %.0f MiB\n",
              windows, groups, window_seconds, cadence_seconds,
              rss_budget_mb);

  std::filesystem::create_directories(dir);
  const std::string store_path = dir + "/source.wst";

  // ---- Stream-generate the corpus: one window tile in memory at a time.
  Stopwatch gen_watch;
  {
    Result<store::TrajectoryStoreWriter> writer =
        store::TrajectoryStoreWriter::Create(store_path);
    if (!writer.ok()) {
      std::fprintf(stderr, "store create failed: %s\n",
                   writer.status().ToString().c_str());
      return 1;
    }
    Rng rng(7);
    for (size_t w = 0; w < windows; ++w) {
      if (Status s = AppendWindowTile(&*writer, w, groups, window_seconds,
                                      &rng);
          !s.ok()) {
        std::fprintf(stderr, "tile %zu failed: %s\n", w,
                     s.ToString().c_str());
        return 1;
      }
    }
    if (Status s = writer->Finish(); !s.ok()) {
      std::fprintf(stderr, "store finish failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const double gen_seconds = gen_watch.ElapsedSeconds();
  std::printf("generated + stored in %.2fs (%ju bytes)\n", gen_seconds,
              static_cast<uintmax_t>(
                  std::filesystem::file_size(store_path)));

  // ---- The sustained run: per-window latency through the progress sink.
  telemetry::Telemetry telemetry;
  pipeline::ContinuousPipelineOptions options;
  options.source_store = store_path;
  options.output_dir = dir + "/published";
  options.window_seconds = window_seconds;
  options.wcop.seed = 7;
  options.wcop.threads = 1;
  options.wcop.telemetry = &telemetry;
  RetryPolicy publish_retry;
  options.publish_retry = &publish_retry;
  std::vector<double> latencies;
  options.progress = [&latencies](const pipeline::PipelineProgress& p) {
    latencies.push_back(p.last_window_seconds);
    if (p.windows_done % 5 == 0 || p.windows_done == p.windows_total) {
      std::printf("  window %zu/%zu: %.2fs (published %llu, RSS %.0f MiB)\n",
                  p.windows_done, p.windows_total, p.last_window_seconds,
                  static_cast<unsigned long long>(p.published_fragments),
                  PeakRssMb());
      std::fflush(stdout);
    }
  };

  Stopwatch run_watch;
  Result<pipeline::ContinuousPipelineResult> result =
      pipeline::RunContinuousPipeline(options);
  const double run_seconds = run_watch.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const double peak_rss_mb = PeakRssMb();
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const double worst =
      latencies.empty()
          ? 0.0
          : *std::max_element(latencies.begin(), latencies.end());
  std::printf("published %llu fragments over %zu windows in %.1fs "
              "(%.2f windows/s)\n",
              static_cast<unsigned long long>(result->published_fragments),
              result->windows.size(), run_seconds,
              static_cast<double>(result->windows.size()) / run_seconds);
  std::printf("window latency: p50 %.2fs, p99 %.2fs, worst %.2fs "
              "(cadence budget %.1fs); peak RSS %.0f MiB (budget %.0f)\n",
              p50, p99, worst, cadence_seconds, peak_rss_mb, rss_budget_mb);

  json_out.Add(
      "pipeline_sustain",
      {{"windows", static_cast<double>(result->windows.size())},
       {"groups_per_window", static_cast<double>(groups)},
       {"window_seconds", window_seconds},
       {"published", static_cast<double>(result->published_fragments)},
       {"suppressed", static_cast<double>(result->suppressed_fragments)},
       {"clusters", static_cast<double>(result->total_clusters)},
       {"generate_seconds", gen_seconds},
       {"window_latency_p50_seconds", p50},
       {"window_latency_p99_seconds", p99},
       {"window_latency_worst_seconds", worst},
       {"cadence_budget_seconds", cadence_seconds},
       {"windows_per_second",
        static_cast<double>(result->windows.size()) / run_seconds},
       {"peak_rss_mb", peak_rss_mb},
       {"rss_budget_mb", rss_budget_mb}},
      run_seconds, telemetry.metrics().Snapshot());
  if (!json_out.Flush()) {
    return 1;
  }

  if (!args.GetBool("keep-store", false)) {
    std::filesystem::remove_all(dir);
  }
  if (result->windows.size() < min_windows) {
    std::fprintf(stderr, "FAIL: only %zu windows published (need %zu)\n",
                 result->windows.size(), min_windows);
    return 1;
  }
  if (p99 > cadence_seconds) {
    std::fprintf(stderr,
                 "FAIL: p99 window latency %.2fs exceeds the %.1fs cadence "
                 "budget — the publisher would fall behind\n",
                 p99, cadence_seconds);
    return 1;
  }
  if (peak_rss_mb > rss_budget_mb) {
    std::fprintf(stderr, "FAIL: peak RSS %.0f MiB exceeds budget %.0f MiB\n",
                 peak_rss_mb, rss_budget_mb);
    return 1;
  }
  std::printf("PASS: %zu windows sustained at <= %.1fs each within "
              "%.0f MiB\n",
              result->windows.size(), cadence_seconds, rss_budget_mb);
  return 0;
}
