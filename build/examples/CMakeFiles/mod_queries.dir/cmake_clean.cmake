file(REMOVE_RECURSE
  "CMakeFiles/mod_queries.dir/mod_queries.cpp.o"
  "CMakeFiles/mod_queries.dir/mod_queries.cpp.o.d"
  "mod_queries"
  "mod_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mod_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
