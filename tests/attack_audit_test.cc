// The red-team subsystem audits publications; these tests audit the red
// team: the out-of-core store path must agree with the in-memory dataset
// path, the audit JSON must be byte-identical across thread counts, the
// effective-k quantifier must flag a deliberately weakened publication
// (and must not cry wolf on a genuinely collapsed one), and the linkage
// attack must recover hand-built ground truth.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "anon/attack.h"
#include "anon/wcop.h"
#include "attack/audit.h"
#include "attack/candidate_source.h"
#include "attack/effective_k.h"
#include "attack/linkage.h"
#include "attack/reident.h"
#include "store/store_file.h"
#include "test_util.h"

namespace wcop {
namespace attack {
namespace {

using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

std::string TempPath(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::filesystem::remove_all(path);
  return path;
}

// Writes `dataset` to a fresh store and opens it as a candidate source.
Result<StoreCandidateSource> StoreSourceFor(const Dataset& dataset,
                                            const std::string& name) {
  const std::string path = TempPath(name);
  WCOP_RETURN_IF_ERROR(store::WriteDatasetStore(dataset, path));
  return StoreCandidateSource::Open(path);
}

// ---------------------------------------------------------------------------
// Dataset source and store source must produce identical attack results.
// ---------------------------------------------------------------------------

TEST(ReidentEquivalence, StoreMatchesDatasetExactly) {
  const Dataset original = SmallSynthetic(30, 40, 4, 250.0, 21);
  WcopOptions wcop;
  wcop.seed = 5;
  Result<AnonymizationResult> anonymized = RunWcopCt(original, wcop);
  ASSERT_TRUE(anonymized.ok()) << anonymized.status();

  ReidentOptions options;
  options.adversary.observations = 4;
  options.adversary.noise = 20.0;

  const DatasetCandidateSource mem_original(original);
  const DatasetCandidateSource mem_published(anonymized->sanitized);
  Result<ReidentResult> mem =
      RunReidentAttack(mem_original, mem_published, options);
  ASSERT_TRUE(mem.ok()) << mem.status();

  Result<StoreCandidateSource> disk_original =
      StoreSourceFor(original, "attack_eq_orig.wst");
  ASSERT_TRUE(disk_original.ok()) << disk_original.status();
  Result<StoreCandidateSource> disk_published =
      StoreSourceFor(anonymized->sanitized, "attack_eq_pub.wst");
  ASSERT_TRUE(disk_published.ok()) << disk_published.status();
  Result<ReidentResult> disk =
      RunReidentAttack(*disk_original, *disk_published, options);
  ASSERT_TRUE(disk.ok()) << disk.status();

  EXPECT_EQ(mem->victims_attacked, disk->victims_attacked);
  EXPECT_EQ(mem->victims_suppressed, disk->victims_suppressed);
  EXPECT_DOUBLE_EQ(mem->top1_success, disk->top1_success);
  EXPECT_DOUBLE_EQ(mem->top5_success, disk->top5_success);
  EXPECT_DOUBLE_EQ(mem->mean_true_rank, disk->mean_true_rank);
  EXPECT_DOUBLE_EQ(mem->mean_reciprocal_rank, disk->mean_reciprocal_rank);
  EXPECT_EQ(mem->candidates_total, disk->candidates_total);
  // Pruning counts may differ (the dataset adapter synthesizes the same
  // MBRs, so in fact they should not) — but correctness only requires the
  // *scores* to agree; assert the strong property anyway to pin the
  // adapter's MBR synthesis.
  EXPECT_EQ(mem->candidates_pruned, disk->candidates_pruned);
}

// ---------------------------------------------------------------------------
// Determinism: the audit JSON is byte-identical across thread counts.
// ---------------------------------------------------------------------------

TEST(AuditDeterminism, JsonByteIdenticalAcrossThreadCounts) {
  const Dataset original = SmallSynthetic(36, 40, 4, 250.0, 33);
  WcopOptions wcop;
  wcop.seed = 9;
  Result<AnonymizationResult> anonymized = RunWcopCt(original, wcop);
  ASSERT_TRUE(anonymized.ok()) << anonymized.status();

  const std::string original_path = TempPath("attack_det_orig.wst");
  const std::string published_path = TempPath("attack_det_pub.wst");
  ASSERT_TRUE(store::WriteDatasetStore(original, original_path).ok());
  ASSERT_TRUE(
      store::WriteDatasetStore(anonymized->sanitized, published_path).ok());

  auto run_with = [&](int threads) {
    AuditOptions options;
    options.published_store = published_path;
    options.original_store = original_path;
    options.threads = threads;
    Result<AuditReport> report = RunAudit(options);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? AuditReportToJson(*report) : std::string();
  };
  const std::string serial = run_with(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_with(8));
  // And a victim-capped run is deterministic too (subset selection is a
  // seeded shuffle, not a schedule artifact).
  auto run_capped = [&](int threads) {
    AuditOptions options;
    options.published_store = published_path;
    options.original_store = original_path;
    options.victims = 10;
    options.threads = threads;
    Result<AuditReport> report = RunAudit(options);
    EXPECT_TRUE(report.ok()) << report.status();
    return report.ok() ? AuditReportToJson(*report) : std::string();
  };
  EXPECT_EQ(run_capped(1), run_capped(8));
}

// ---------------------------------------------------------------------------
// The effective-k property: a deliberately weakened publication (k = 1 in
// effect, whatever was requested) must be flagged — and a genuinely
// collapsed publication must not be.
// ---------------------------------------------------------------------------

// Far-apart users who all requested k = 5 but were published unmodified.
Dataset WeakenedPublication() {
  Dataset d;
  for (int i = 0; i < 12; ++i) {
    Trajectory t = MakeLineWithReq(i, 50000.0 * i, 0.0, 5.0, 3.0, 60,
                                   /*k=*/5, /*delta=*/200.0, /*dt=*/60.0);
    t.set_object_id(i);
    d.Add(std::move(t));
  }
  return d;
}

TEST(EffectiveK, FlagsWeakenedPublication) {
  const Dataset published = WeakenedPublication();
  Result<StoreCandidateSource> source =
      StoreSourceFor(published, "attack_weak.wst");
  ASSERT_TRUE(source.ok()) << source.status();

  EffectiveKOptions options;
  options.adversary.tau_seconds = 600.0;
  options.adversary.epsilon = 250.0;
  Result<EffectiveKResult> result = MeasureEffectiveK(*source, options);
  ASSERT_TRUE(result.ok()) << result.status();

  // Everyone is alone within epsilon: effective k = 1 < requested 5 for
  // every single user. The quantifier must not falsely pass anyone.
  EXPECT_EQ(result->users_measured, published.size());
  EXPECT_DOUBLE_EQ(result->violation_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result->mean_effective_k, 1.0);
  ASSERT_EQ(result->policies.size(), 1u);
  EXPECT_EQ(result->policies[0].k, 5);
  EXPECT_EQ(result->policies[0].violations, published.size());
  EXPECT_DOUBLE_EQ(result->policies[0].p50, 1.0);
}

TEST(EffectiveK, PassesCollapsedKGroups) {
  // Three groups of five co-located trajectories (the shape WCOP-CT's
  // translation step produces): every member's effective k is 5.
  Dataset published;
  int64_t id = 0;
  for (int group = 0; group < 3; ++group) {
    for (int member = 0; member < 5; ++member) {
      Trajectory t = MakeLineWithReq(
          id, 50000.0 * group, 10.0 * member, 5.0, 3.0, 60,
          /*k=*/5, /*delta=*/200.0, /*dt=*/60.0);
      t.set_object_id(id);
      published.Add(std::move(t));
      ++id;
    }
  }
  Result<StoreCandidateSource> source =
      StoreSourceFor(published, "attack_collapsed.wst");
  ASSERT_TRUE(source.ok()) << source.status();

  EffectiveKOptions options;
  options.adversary.tau_seconds = 600.0;
  options.adversary.epsilon = 250.0;
  Result<EffectiveKResult> result = MeasureEffectiveK(*source, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->users_measured, published.size());
  EXPECT_DOUBLE_EQ(result->violation_fraction, 0.0);
  EXPECT_DOUBLE_EQ(result->mean_effective_k, 5.0);
}

// ---------------------------------------------------------------------------
// Linkage attack against hand-built ground truth.
// ---------------------------------------------------------------------------

TEST(Linkage, RecoversHandBuiltContinuations) {
  // Four far-apart users, each cut into a window-0 fragment and its
  // window-1 continuation starting 5 minutes after the fragment ends,
  // displaced by roughly the fragment's own velocity. Fragment ids are
  // fresh per window (as the pipeline assigns them); parent_id carries
  // the ground truth.
  const std::string dir = TempPath("attack_linkage_windows");
  std::filesystem::create_directories(dir);
  const size_t kUsers = 4;
  {
    Result<store::TrajectoryStoreWriter> w0 =
        store::TrajectoryStoreWriter::Create(dir + "/window_00000.wst");
    ASSERT_TRUE(w0.ok()) << w0.status();
    Result<store::TrajectoryStoreWriter> w1 =
        store::TrajectoryStoreWriter::Create(dir + "/window_00001.wst");
    ASSERT_TRUE(w1.ok()) << w1.status();
    for (size_t u = 0; u < kUsers; ++u) {
      const double x0 = 30000.0 * static_cast<double>(u);
      // Window 0: 20 points, 30 s apart, moving at (4, 2) m/s.
      Trajectory head = MakeLineWithReq(
          static_cast<int64_t>(100 + u), x0, 0.0, 120.0, 60.0, 20,
          /*k=*/2, /*delta=*/200.0, /*dt=*/30.0, /*t0=*/0.0);
      head.set_object_id(static_cast<int64_t>(u));
      head.set_parent_id(static_cast<int64_t>(u));
      ASSERT_TRUE(w0->Append(head).ok());
      // Window 1: continues 300 s after the last fix, from where the
      // constant-velocity extrapolation lands.
      const Point& tail = head[head.size() - 1];
      Trajectory cont = MakeLineWithReq(
          static_cast<int64_t>(200 + u), tail.x + 4.0 * 300.0,
          tail.y + 2.0 * 300.0, 120.0, 60.0, 20,
          /*k=*/2, /*delta=*/200.0, /*dt=*/30.0, /*t0=*/tail.t + 300.0);
      cont.set_object_id(static_cast<int64_t>(u));
      cont.set_parent_id(static_cast<int64_t>(u));
      ASSERT_TRUE(w1->Append(cont).ok());
    }
    ASSERT_TRUE(w0->Finish().ok());
    ASSERT_TRUE(w1->Finish().ok());
  }

  Result<std::vector<std::string>> windows = ListWindowStores(dir);
  ASSERT_TRUE(windows.ok()) << windows.status();
  ASSERT_EQ(windows->size(), 2u);

  LinkageOptions options;
  Result<LinkageResult> result = RunLinkageAttack(*windows, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->boundaries, 1u);
  EXPECT_EQ(result->joins_attempted, kUsers);
  EXPECT_EQ(result->joins_correct, kUsers);
  EXPECT_DOUBLE_EQ(result->linkage_rate, 1.0);
  EXPECT_EQ(result->users_tracked, kUsers);
  EXPECT_DOUBLE_EQ(result->trackable_fraction, 1.0);

  // A gate too tight to reach the 300 s gap finds nothing — and reports
  // that honestly rather than joining wrong candidates.
  LinkageOptions tight = options;
  tight.max_gap_seconds = 60.0;
  Result<LinkageResult> none = RunLinkageAttack(*windows, tight);
  ASSERT_TRUE(none.ok()) << none.status();
  EXPECT_EQ(none->joins_correct, 0u);
  EXPECT_EQ(none->users_tracked, 0u);
}

TEST(Linkage, EmptyDirectoryIsNotFound) {
  const std::string dir = TempPath("attack_linkage_empty");
  std::filesystem::create_directories(dir);
  Result<std::vector<std::string>> windows = ListWindowStores(dir);
  EXPECT_EQ(windows.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// RunContext: budgets and deadlines trip instead of running forever.
// ---------------------------------------------------------------------------

TEST(AttackRunContext, DistanceBudgetTrips) {
  const Dataset d = SmallSynthetic(24, 30, 3, 200.0, 7);
  const DatasetCandidateSource source(d);
  RunContext context;
  ResourceBudget budget;
  budget.max_distance_computations = 5;
  context.set_budget(budget);
  ReidentOptions options;
  options.run_context = &context;
  Result<ReidentResult> result = RunReidentAttack(source, source, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(AttackRunContext, CancellationStopsTheAudit) {
  const Dataset d = SmallSynthetic(24, 30, 3, 200.0, 7);
  const DatasetCandidateSource source(d);
  RunContext context;
  CancellationToken token;
  context.set_cancellation_token(token);
  token.RequestCancellation();
  ReidentOptions options;
  options.run_context = &context;
  Result<ReidentResult> result = RunReidentAttack(source, source, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Legacy anon/attack.h entry points route through the new engine: they now
// honour RunContext and emit attack.* telemetry.
// ---------------------------------------------------------------------------

TEST(LegacyWiring, SimulateLinkageAttackEmitsTelemetryAndHonoursBudget) {
  const Dataset d = SmallSynthetic(24, 30, 3, 200.0, 13);
  telemetry::Telemetry telemetry;
  AttackOptions options;
  options.telemetry = &telemetry;
  Result<AttackResult> result = SimulateLinkageAttack(d, d, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const telemetry::MetricsSnapshot snapshot =
      telemetry.metrics().Snapshot();
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& [key, value] : snapshot.counters) {
      if (key == name) {
        return value;
      }
    }
    return 0;
  };
  EXPECT_GT(counter("attack.victims"), 0u);
  EXPECT_GT(counter("attack.candidates") +
                counter("attack.candidates.pruned"),
            0u);

  RunContext context;
  ResourceBudget budget;
  budget.max_distance_computations = 2;
  context.set_budget(budget);
  AttackOptions limited;
  limited.run_context = &context;
  Result<AttackResult> tripped = SimulateLinkageAttack(d, d, limited);
  ASSERT_FALSE(tripped.ok());
  EXPECT_EQ(tripped.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Audit plumbing: option validation and JSON shape.
// ---------------------------------------------------------------------------

TEST(Audit, RejectsAmbiguousOrMissingTargets) {
  AuditOptions none;
  EXPECT_EQ(RunAudit(none).status().code(), StatusCode::kInvalidArgument);
  AuditOptions both;
  both.published_store = "a.wst";
  both.windows_dir = "dir";
  EXPECT_EQ(RunAudit(both).status().code(), StatusCode::kInvalidArgument);
}

TEST(Audit, JsonMarksAbsentSectionsAsNull) {
  const Dataset published = WeakenedPublication();
  const std::string path = TempPath("attack_json_null.wst");
  ASSERT_TRUE(store::WriteDatasetStore(published, path).ok());
  AuditOptions options;
  options.published_store = path;  // no original: reident cannot run
  Result<AuditReport> report = RunAudit(options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->has_reident);
  EXPECT_TRUE(report->has_effective_k);
  const std::string json = AuditReportToJson(*report);
  EXPECT_NE(json.find("\"reident\":null"), std::string::npos);
  EXPECT_NE(json.find("\"linkage\":null"), std::string::npos);
  EXPECT_NE(json.find("\"effective_k\":{"), std::string::npos);
}

}  // namespace
}  // namespace attack
}  // namespace wcop
