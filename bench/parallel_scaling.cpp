// Parallel-scaling benchmark: the fig5-style WCOP-CT workload at 1/2/4/8
// worker threads. Beyond wall-clock speedup, the harness *checks* the two
// determinism invariants the parallel layer promises:
//
//   * the published (sanitized) dataset is bit-identical at every thread
//     count (verified via an FNV-1a hash over ids and coordinate bit
//     patterns), and
//   * the distance-call counters — and with them the RunContext budget
//     accounting — are identical at every thread count.
//
// A violation exits non-zero, so the bench doubles as a determinism gate.
// Speedups are reported against the measured --threads=1 run; on machines
// with fewer cores than the sweep's thread counts the extra threads cannot
// help, which is why the json record carries `hardware_concurrency`.
//
// Run:  ./parallel_scaling [--trajectories=238] [--points=120]
//                          [--kmax=5] [--dmax=250]
//                          [--repeats=1] [--json-out=FILE]
//                          [--max-edr-calls=N]
//
// `--max-edr-calls=N` (0 = off) turns the bench into a regression gate on
// the lower-bound cascade: the run fails if the reference (serial) run
// computes more than N exact EDR distances. CI pins N to a checked-in
// ceiling so a change that silently erodes the pruning shows up red.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

using namespace wcop;
using namespace wcop::bench;

namespace {

uint64_t HashBits(uint64_t h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    h = (h ^ ((bits >> shift) & 0xFF)) * 0x100000001B3ull;  // FNV-1a
  }
  return h;
}

/// FNV-1a over every published id, requirement, and point bit pattern:
/// equal hashes across thread counts certify bit-identical output.
uint64_t HashDataset(const Dataset& dataset) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (const Trajectory& t : dataset.trajectories()) {
    h = HashBits(h, static_cast<double>(t.id()));
    h = HashBits(h, static_cast<double>(t.requirement().k));
    h = HashBits(h, t.requirement().delta);
    for (const Point& p : t.points()) {
      h = HashBits(h, p.x);
      h = HashBits(h, p.y);
      h = HashBits(h, p.t);
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchScale scale = BenchScale::FromArgs(args);
  const int k_max = static_cast<int>(args.GetInt("kmax", 5));
  const double delta_max = args.GetDouble("dmax", 250.0);
  const int repeats = static_cast<int>(args.GetInt("repeats", 1));
  const uint64_t max_edr_calls =
      static_cast<uint64_t>(args.GetInt("max-edr-calls", 0));
  JsonOut json_out(args);

  Dataset dataset = MakeBenchDataset(scale);
  AssignPaperRequirements(&dataset, k_max, delta_max, scale.seed + 1);
  std::printf("dataset: %s\n", dataset.DebugString().c_str());
  const int hardware = parallel::HardwareThreads();
  std::printf("hardware_concurrency: %d\n", hardware);

  PrintHeader("Parallel scaling: WCOP-CT, 1/2/4/8 threads");
  TablePrinter table({"threads", "seconds", "speedup", "distance calls",
                      "cache hits", "output hash"});
  double serial_seconds = 0.0;
  uint64_t reference_hash = 0;
  uint64_t reference_calls = 0;
  bool ok = true;
  for (int threads : {1, 2, 4, 8}) {
    WcopOptions options;
    options.seed = scale.seed + 2;
    options.threads = threads;
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    double best_seconds = 0.0;
    uint64_t hash = 0;
    uint64_t calls = 0;
    uint64_t hits = 0;
    telemetry::MetricsSnapshot metrics;
    for (int rep = 0; rep < repeats; ++rep) {
      Stopwatch timer;
      Result<AnonymizationResult> r = RunWcopCt(dataset, options);
      const double seconds = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::cerr << "run failed at --threads=" << threads << ": "
                  << r.status() << "\n";
        return 1;
      }
      if (rep == 0 || seconds < best_seconds) {
        best_seconds = seconds;
      }
      hash = HashDataset(r->sanitized);
      calls = r->report.metrics.CounterValue("distance.calls.edr");
      hits = r->report.metrics.CounterValue("distance.cache_hits");
      metrics = r->report.metrics;
    }
    if (threads == 1) {
      serial_seconds = best_seconds;
      reference_hash = hash;
      reference_calls = calls;
    } else {
      if (hash != reference_hash) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: --threads=%d output hash "
                     "%016llx != serial %016llx\n",
                     threads, static_cast<unsigned long long>(hash),
                     static_cast<unsigned long long>(reference_hash));
        ok = false;
      }
      if (calls != reference_calls) {
        std::fprintf(stderr,
                     "ACCOUNTING VIOLATION: --threads=%d distance calls "
                     "%llu != serial %llu\n",
                     threads, static_cast<unsigned long long>(calls),
                     static_cast<unsigned long long>(reference_calls));
        ok = false;
      }
    }
    char hash_buf[32];
    std::snprintf(hash_buf, sizeof(hash_buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    table.AddRow({std::to_string(threads), FormatSignificant(best_seconds, 3),
                  FormatSignificant(serial_seconds / best_seconds, 3),
                  std::to_string(calls), std::to_string(hits), hash_buf});
    json_out.Add("parallel_scaling/wcop_ct",
                 {{"threads", static_cast<double>(threads)},
                  {"trajectories", static_cast<double>(scale.trajectories)},
                  {"points", static_cast<double>(scale.points)},
                  {"hardware_concurrency", static_cast<double>(hardware)},
                  {"speedup", serial_seconds / best_seconds},
                  {"distance_calls", static_cast<double>(calls)},
                  {"output_identical", threads == 1 ? 1.0
                                                    : (hash == reference_hash
                                                           ? 1.0
                                                           : 0.0)}},
                 best_seconds, metrics);
  }
  table.Print(std::cout);
  if (!json_out.Flush()) {
    return 1;
  }
  if (max_edr_calls > 0 && reference_calls > max_edr_calls) {
    std::fprintf(stderr,
                 "EDR CALL CEILING EXCEEDED: %llu exact distance "
                 "computations > --max-edr-calls=%llu (cascade regression)\n",
                 static_cast<unsigned long long>(reference_calls),
                 static_cast<unsigned long long>(max_edr_calls));
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "FAILED: results differ across thread counts\n");
    return 1;
  }
  std::printf("all thread counts produced identical output and accounting\n");
  return 0;
}
