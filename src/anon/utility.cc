#include "anon/utility.h"

#include <algorithm>
#include <cmath>

#include "geo/bounding_box.h"
#include "geo/segment_geometry.h"

namespace wcop {

namespace {

/// True iff the spatial segment (a, b) intersects the query box.
bool SegmentIntersectsBox(double ax, double ay, double bx, double by,
                          const RangeQuery& q) {
  return SegmentIntersectsRect(ax, ay, bx, by, q.x_lo, q.x_hi, q.y_lo,
                               q.y_hi);
}

}  // namespace

bool TrajectoryMatchesQuery(const Trajectory& trajectory,
                            const RangeQuery& query) {
  if (trajectory.empty()) {
    return false;
  }
  if (trajectory.EndTime() < query.t_lo || trajectory.StartTime() > query.t_hi) {
    return false;
  }
  // Single point alive during the window.
  if (trajectory.size() == 1) {
    const Point& p = trajectory.front();
    return p.x >= query.x_lo && p.x <= query.x_hi && p.y >= query.y_lo &&
           p.y <= query.y_hi;
  }
  for (size_t i = 0; i + 1 < trajectory.size(); ++i) {
    const Point& a = trajectory[i];
    const Point& b = trajectory[i + 1];
    if (b.t < query.t_lo || a.t > query.t_hi) {
      continue;
    }
    // Clip the segment to the time window (linear interpolation).
    const double span = b.t - a.t;
    const double alpha_lo =
        span > 0.0 ? std::clamp((query.t_lo - a.t) / span, 0.0, 1.0) : 0.0;
    const double alpha_hi =
        span > 0.0 ? std::clamp((query.t_hi - a.t) / span, 0.0, 1.0) : 1.0;
    const double ax = a.x + alpha_lo * (b.x - a.x);
    const double ay = a.y + alpha_lo * (b.y - a.y);
    const double bx = a.x + alpha_hi * (b.x - a.x);
    const double by = a.y + alpha_hi * (b.y - a.y);
    if (SegmentIntersectsBox(ax, ay, bx, by, query)) {
      return true;
    }
  }
  return false;
}

size_t CountMatches(const Dataset& dataset, const RangeQuery& query) {
  size_t matches = 0;
  for (const Trajectory& t : dataset.trajectories()) {
    if (TrajectoryMatchesQuery(t, query)) {
      ++matches;
    }
  }
  return matches;
}

std::vector<RangeQuery> GenerateRangeQueries(const Dataset& dataset,
                                             size_t count,
                                             double spatial_fraction,
                                             double temporal_fraction,
                                             Rng* rng) {
  std::vector<RangeQuery> queries;
  if (dataset.empty() || count == 0) {
    return queries;
  }
  const double radius = dataset.Bounds().HalfDiagonal();
  const double half_extent = std::max(1.0, radius * spatial_fraction);
  double t_min = dataset[0].StartTime();
  double t_max = dataset[0].EndTime();
  for (const Trajectory& t : dataset.trajectories()) {
    t_min = std::min(t_min, t.StartTime());
    t_max = std::max(t_max, t.EndTime());
  }
  const double half_window =
      std::max(1.0, (t_max - t_min) * temporal_fraction);

  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    // Centre on a random recorded point so queries hit populated space.
    const Trajectory& t = dataset[rng->UniformIndex(dataset.size())];
    const Point& center = t[rng->UniformIndex(t.size())];
    RangeQuery query;
    query.x_lo = center.x - half_extent;
    query.x_hi = center.x + half_extent;
    query.y_lo = center.y - half_extent;
    query.y_hi = center.y + half_extent;
    query.t_lo = center.t - half_window;
    query.t_hi = center.t + half_window;
    queries.push_back(query);
  }
  return queries;
}

RangeQueryDistortionResult RangeQueryDistortion(
    const Dataset& original, const Dataset& sanitized,
    const std::vector<RangeQuery>& queries) {
  RangeQueryDistortionResult result;
  result.num_queries = queries.size();
  if (queries.empty()) {
    return result;
  }
  double abs_error = 0.0;
  double rel_error = 0.0;
  for (const RangeQuery& query : queries) {
    const size_t orig = CountMatches(original, query);
    const size_t sani = CountMatches(sanitized, query);
    result.total_original_matches += orig;
    result.total_sanitized_matches += sani;
    const double diff = std::abs(static_cast<double>(orig) -
                                 static_cast<double>(sani));
    abs_error += diff;
    rel_error += diff / std::max<double>(1.0, static_cast<double>(orig));
  }
  result.mean_absolute_error = abs_error / static_cast<double>(queries.size());
  result.mean_relative_error = rel_error / static_cast<double>(queries.size());
  return result;
}

double SpatialDensityDivergence(const Dataset& original,
                                const Dataset& sanitized,
                                size_t cells_per_axis) {
  if (cells_per_axis == 0 || original.empty() || sanitized.empty()) {
    return original.empty() == sanitized.empty() ? 0.0 : 1.0;
  }
  BoundingBox box = original.Bounds();
  box.Extend(sanitized.Bounds());
  const double width = std::max(box.width(), 1e-9);
  const double height = std::max(box.height(), 1e-9);
  const size_t cells = cells_per_axis * cells_per_axis;

  auto histogram = [&](const Dataset& dataset) {
    std::vector<double> h(cells, 0.0);
    size_t total = 0;
    for (const Trajectory& t : dataset.trajectories()) {
      for (const Point& p : t.points()) {
        const size_t cx = std::min(
            cells_per_axis - 1,
            static_cast<size_t>((p.x - box.min_x()) / width *
                                static_cast<double>(cells_per_axis)));
        const size_t cy = std::min(
            cells_per_axis - 1,
            static_cast<size_t>((p.y - box.min_y()) / height *
                                static_cast<double>(cells_per_axis)));
        h[cy * cells_per_axis + cx] += 1.0;
        ++total;
      }
    }
    if (total > 0) {
      for (double& v : h) {
        v /= static_cast<double>(total);
      }
    }
    return h;
  };

  const std::vector<double> ho = histogram(original);
  const std::vector<double> hs = histogram(sanitized);
  double l1 = 0.0;
  for (size_t i = 0; i < cells; ++i) {
    l1 += std::abs(ho[i] - hs[i]);
  }
  return 0.5 * l1;  // total variation distance
}

}  // namespace wcop
