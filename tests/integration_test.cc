#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>

#include "anon/wcop.h"
#include "traj/io.h"
#include "segment/convoy.h"
#include "segment/traclus.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

/// Parameterized over (algorithm, seed): every WCOP algorithm must produce a
/// result that passes the independent anonymity audit for several random
/// requirement assignments.
class WcopSuiteProperty
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(WcopSuiteProperty, OutputAlwaysPassesVerifier) {
  const auto [algorithm, seed] = GetParam();
  const Dataset d = SmallSynthetic(35, 45, /*k_max=*/5, /*delta_max=*/250.0,
                                   seed);
  WcopOptions options;
  options.seed = seed * 31 + 1;

  Dataset verification_base = d;
  AnonymizationResult result;
  if (algorithm == "nv") {
    Result<AnonymizationResult> r = RunWcopNv(d, options);
    ASSERT_TRUE(r.ok()) << r.status();
    result = std::move(r).value();
    // NV runs with the universal requirements: audit against those.
    for (Trajectory& t : verification_base.mutable_trajectories()) {
      t.set_requirement(Requirement{d.MaxK(), d.MinDelta()});
    }
  } else if (algorithm == "ct") {
    Result<AnonymizationResult> r = RunWcopCt(d, options);
    ASSERT_TRUE(r.ok()) << r.status();
    result = std::move(r).value();
  } else if (algorithm == "sa-traclus") {
    TraclusSegmenter segmenter;
    Result<WcopSaResult> r = RunWcopSa(d, &segmenter, options);
    ASSERT_TRUE(r.ok()) << r.status();
    verification_base = r->segmented;
    result = std::move(r->anonymization);
  } else if (algorithm == "sa-convoy") {
    ConvoyOptions convoy_options;
    convoy_options.min_objects = 2;
    convoy_options.eps = 300.0;
    convoy_options.snapshot_interval = 30.0;
    ConvoySegmenter segmenter(convoy_options);
    Result<WcopSaResult> r = RunWcopSa(d, &segmenter, options);
    ASSERT_TRUE(r.ok()) << r.status();
    verification_base = r->segmented;
    result = std::move(r->anonymization);
  } else {
    FAIL() << "unknown algorithm " << algorithm;
  }

  const VerificationReport report = VerifyAnonymity(verification_base, result);
  EXPECT_TRUE(report.ok) << algorithm << " seed " << seed << ": "
                         << (report.messages.empty() ? "?"
                                                     : report.messages[0]);
  // Structural accounting.
  EXPECT_EQ(result.sanitized.size() + result.trashed_ids.size(),
            verification_base.size());
  EXPECT_LE(result.report.trashed_trajectories,
            verification_base.size() / 10);
  EXPECT_GT(result.report.total_distortion, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndSeeds, WcopSuiteProperty,
    ::testing::Combine(::testing::Values("nv", "ct", "sa-traclus",
                                         "sa-convoy"),
                       ::testing::Values(1u, 7u, 21u)),
    [](const ::testing::TestParamInfo<WcopSuiteProperty::ParamType>& info) {
      std::string name = std::get<0>(info.param) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(IntegrationTest, PersonalizedBeatsUniversalOnDistortion) {
  // The paper's headline claim (Table 3): WCOP-CT reduces total distortion
  // and improves discernibility vs the universal WCOP-NV. Check across
  // seeds and accept the claim on the majority (greedy clustering is
  // randomized; individual draws can tie).
  int ct_wins_distortion = 0;
  int ct_wins_discernibility = 0;
  const int kTrials = 3;
  for (int trial = 0; trial < kTrials; ++trial) {
    const Dataset d = SmallSynthetic(40, 45, /*k_max=*/6, /*delta_max=*/250.0,
                                     100 + trial);
    WcopOptions options;
    options.seed = trial + 5;
    Result<AnonymizationResult> nv = RunWcopNv(d, options);
    Result<AnonymizationResult> ct = RunWcopCt(d, options);
    ASSERT_TRUE(nv.ok());
    ASSERT_TRUE(ct.ok());
    if (ct->report.total_distortion <= nv->report.total_distortion) {
      ++ct_wins_distortion;
    }
    if (ct->report.discernibility <= nv->report.discernibility) {
      ++ct_wins_discernibility;
    }
    // Structural claim that holds deterministically: CT creates at least as
    // many clusters (finer granularity).
    EXPECT_GE(ct->report.num_clusters, nv->report.num_clusters);
  }
  EXPECT_GE(ct_wins_distortion, 2) << "CT should usually beat NV";
  EXPECT_GE(ct_wins_discernibility, 2);
}

TEST(IntegrationTest, WcopBReducesDistortionAgainstPlainCt) {
  // Figure 8's headline: editing a few demanding trajectories lowers total
  // distortion versus the unedited run on demanding datasets.
  const Dataset d = SmallSynthetic(40, 45, /*k_max=*/8, /*delta_max=*/100.0,
                                   77);
  WcopOptions options;
  options.seed = 13;
  Result<AnonymizationResult> ct = RunWcopCt(d, options);
  ASSERT_TRUE(ct.ok());
  WcopBOptions b;
  b.distort_max = 0.0;
  b.step = 2;
  b.max_edit_size = 10;
  Result<WcopBResult> bounded = RunWcopB(d, options, b);
  ASSERT_TRUE(bounded.ok());
  double best = 1e300;
  for (const WcopBRound& round : bounded->rounds) {
    best = std::min(best, round.total_distortion);
  }
  // Some edit size in the sweep should match or improve on plain CT.
  EXPECT_LE(best, ct->report.total_distortion * 1.05);
}

TEST(IntegrationTest, CsvRoundTripThenAnonymize) {
  // Pipeline smoke test: generate -> write csv -> read csv -> anonymize.
  const Dataset d = SmallSynthetic(20, 40);
  const std::string path = ::testing::TempDir() + "/wcop_integration.csv";
  ASSERT_TRUE(WriteDatasetCsv(d, path).ok());
  Result<Dataset> loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  Result<AnonymizationResult> result = RunWcopCt(*loaded);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(VerifyAnonymity(*loaded, *result).ok);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcop
