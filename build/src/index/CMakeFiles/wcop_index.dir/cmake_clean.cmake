file(REMOVE_RECURSE
  "CMakeFiles/wcop_index.dir/grid_index.cc.o"
  "CMakeFiles/wcop_index.dir/grid_index.cc.o.d"
  "libwcop_index.a"
  "libwcop_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
