#include "attack/reident.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "geo/point.h"

namespace wcop {
namespace attack {

namespace {

/// Per-victim outcome, reduced in victim-index order on the coordinator so
/// the aggregate doubles are summed in one deterministic order regardless
/// of scheduling.
struct VictimOutcome {
  Status status;
  bool suppressed = false;
  double top1 = 0.0;
  double top5 = 0.0;
  double rank = 0.0;
  double reciprocal = 0.0;
  uint64_t scored = 0;
  uint64_t pruned = 0;
};

VictimOutcome AttackVictim(const CandidateSource& original,
                           const CandidateSource& published, size_t victim,
                           const ReidentOptions& options) {
  VictimOutcome out;
  const int64_t key = original.KeyOf(victim);
  Result<size_t> truth_index = published.FindByKey(key);
  if (!truth_index.ok()) {
    out.suppressed = true;
    return out;
  }
  Result<Trajectory> truth = original.Read(victim);
  if (!truth.ok()) {
    out.status = truth.status();
    return out;
  }
  const std::vector<Point> observations = SampleObservations(
      *truth, options.adversary, static_cast<uint64_t>(key));

  // Exact score of the true candidate first: the certified lower bound of
  // every other candidate is compared against it.
  Result<Trajectory> truth_published = published.Read(*truth_index);
  if (!truth_published.ok()) {
    out.status = truth_published.status();
    return out;
  }
  double s_true = 0.0;
  for (const Point& obs : observations) {
    s_true += SpatialDistance(truth_published->PositionAt(obs.t), obs);
  }
  out.scored = 1;

  // Walk the index: a candidate whose lower bound (sum of observation-to-
  // MBR distances) strictly exceeds s_true scores strictly worse than the
  // truth — it can neither outrank nor tie it, so it is counted as "worse"
  // without reading its block. Everything else is read and scored exactly,
  // preserving the legacy tie semantics (exact == on the score sum).
  size_t better = 0;
  size_t tied = 1;  // the truth itself
  const size_t n = published.size();
  if (options.run_context != nullptr) {
    options.run_context->ChargeCandidatePairs(n);
  }
  for (size_t j = 0; j < n; ++j) {
    if (j == *truth_index) {
      continue;
    }
    const store::StoreEntry& e = published.entry(j);
    double bound = 0.0;
    for (const Point& obs : observations) {
      bound += PointToEntryDistance(e, obs);
      if (bound > s_true) {
        break;
      }
    }
    if (bound > s_true) {
      ++out.pruned;
      continue;
    }
    Result<Trajectory> candidate = published.Read(j);
    if (!candidate.ok()) {
      out.status = candidate.status();
      return out;
    }
    if (options.run_context != nullptr) {
      options.run_context->ChargeDistance();
    }
    double score = 0.0;
    for (const Point& obs : observations) {
      score += SpatialDistance(candidate->PositionAt(obs.t), obs);
    }
    ++out.scored;
    if (score < s_true) {
      ++better;
    } else if (score == s_true) {
      ++tied;
    }
  }

  // Uniform tie-breaking over the tied block: expected rank is the block
  // midpoint; the truth lands in the top-m when it draws one of the first
  // m - better slots of the block.
  const double block = static_cast<double>(tied);
  out.rank = static_cast<double>(better) + (block + 1.0) / 2.0;
  out.top1 = better == 0 ? 1.0 / block : 0.0;
  if (better < 5) {
    out.top5 = std::min(block, 5.0 - static_cast<double>(better)) / block;
  }
  out.reciprocal = 1.0 / out.rank;
  return out;
}

}  // namespace

Result<ReidentResult> RunReidentAttack(const CandidateSource& original,
                                       const CandidateSource& published,
                                       const ReidentOptions& options) {
  if (original.size() == 0 || published.size() == 0) {
    return Status::InvalidArgument("attack needs non-empty datasets");
  }
  if (options.adversary.observations == 0) {
    return Status::InvalidArgument("need at least one observation");
  }
  WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  WCOP_TRACE_SPAN(options.telemetry, "attack/reident");

  telemetry::Counter* victims_counter = nullptr;
  telemetry::Counter* candidates_counter = nullptr;
  telemetry::Counter* pruned_counter = nullptr;
  telemetry::Counter* top1_counter = nullptr;
  telemetry::Histogram* rank_histogram = nullptr;
  if (options.telemetry != nullptr) {
    auto& metrics = options.telemetry->metrics();
    victims_counter = metrics.GetCounter("attack.victims");
    candidates_counter = metrics.GetCounter("attack.candidates");
    pruned_counter = metrics.GetCounter("attack.candidates.pruned");
    top1_counter = metrics.GetCounter("attack.matches.top1");
    rank_histogram = metrics.GetHistogram("attack.rank");
  }

  // Victim selection: a deterministic shuffle of the victim universe,
  // independent of thread count (the per-victim observation streams are
  // keyed on the truth key, not on draw order).
  std::vector<size_t> victims(original.size());
  std::iota(victims.begin(), victims.end(), 0);
  if (options.num_victims > 0 && options.num_victims < victims.size()) {
    Rng rng(options.adversary.seed);
    std::shuffle(victims.begin(), victims.end(), rng.engine());
    victims.resize(options.num_victims);
    std::sort(victims.begin(), victims.end());
  }

  ReidentResult result;
  double top1_sum = 0.0;
  double top5_sum = 0.0;
  double rank_sum = 0.0;
  double reciprocal_sum = 0.0;

  // Victims are processed in bounded blocks: each block fans out over the
  // pool, then the coordinator reduces the outcomes in victim order and
  // reports progress — memory stays O(block), aggregation order stays
  // fixed, and a tripped RunContext surfaces between blocks.
  constexpr size_t kBlock = 256;
  parallel::ParallelOptions popts;
  popts.threads = options.threads;
  popts.grain = 1;
  popts.context = options.run_context;
  popts.telemetry = options.telemetry;
  for (size_t begin = 0; begin < victims.size(); begin += kBlock) {
    const size_t count = std::min(kBlock, victims.size() - begin);
    Result<std::vector<VictimOutcome>> outcomes =
        parallel::ParallelMap<VictimOutcome>(
            count,
            [&](size_t i) {
              return AttackVictim(original, published, victims[begin + i],
                                  options);
            },
            popts);
    if (!outcomes.ok()) {
      return outcomes.status();
    }
    for (const VictimOutcome& out : *outcomes) {
      if (!out.status.ok()) {
        return out.status;
      }
      if (out.suppressed) {
        ++result.victims_suppressed;
        continue;
      }
      ++result.victims_attacked;
      top1_sum += out.top1;
      top5_sum += out.top5;
      rank_sum += out.rank;
      reciprocal_sum += out.reciprocal;
      result.candidates_total += published.size();
      result.candidates_scored += out.scored;
      result.candidates_pruned += out.pruned;
      if (rank_histogram != nullptr) {
        rank_histogram->Record(
            static_cast<uint64_t>(std::llround(out.rank)));
      }
    }
    if (options.progress) {
      options.progress(std::min(begin + count, victims.size()),
                       victims.size());
    }
    WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  }

  if (result.victims_attacked > 0) {
    const double n = static_cast<double>(result.victims_attacked);
    result.top1_success = top1_sum / n;
    result.top5_success = top5_sum / n;
    result.mean_true_rank = rank_sum / n;
    result.mean_reciprocal_rank = reciprocal_sum / n;
  }
  telemetry::CounterAdd(victims_counter, result.victims_attacked);
  telemetry::CounterAdd(candidates_counter, result.candidates_scored);
  telemetry::CounterAdd(pruned_counter, result.candidates_pruned);
  telemetry::CounterAdd(
      top1_counter, static_cast<uint64_t>(std::llround(top1_sum)));
  return result;
}

}  // namespace attack
}  // namespace wcop
