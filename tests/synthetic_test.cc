#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.h"
#include "test_util.h"

namespace wcop {
namespace {

SyntheticOptions FastOptions() {
  SyntheticOptions options;
  options.seed = 123;
  options.num_users = 10;
  options.num_trajectories = 30;
  options.points_per_trajectory = 50;
  options.sampling_interval = 5.0;
  options.region_half_diagonal = 10000.0;
  options.num_hubs = 6;
  options.num_routes = 6;
  options.dataset_duration_days = 5.0;
  return options;
}

TEST(SyntheticTest, ShapeMatchesOptions) {
  Result<Dataset> d = GenerateSyntheticGeoLife(FastOptions());
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->size(), 30u);
  EXPECT_EQ(d->TotalPoints(), 30u * 50u);
  for (const Trajectory& t : d->trajectories()) {
    EXPECT_EQ(t.size(), 50u);
  }
  EXPECT_TRUE(d->Validate().ok());
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  const Dataset a = GenerateSyntheticGeoLife(FastOptions()).value();
  const Dataset b = GenerateSyntheticGeoLife(FastOptions()).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j], b[i][j]);
    }
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticOptions other = FastOptions();
  other.seed = 321;
  const Dataset a = GenerateSyntheticGeoLife(FastOptions()).value();
  const Dataset b = GenerateSyntheticGeoLife(other).value();
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = !(a[i][0] == b[i][0]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, AllUsersRepresented) {
  const Dataset d = GenerateSyntheticGeoLife(FastOptions()).value();
  std::set<int64_t> users;
  for (const Trajectory& t : d.trajectories()) {
    users.insert(t.object_id());
  }
  EXPECT_EQ(users.size(), 10u);
}

TEST(SyntheticTest, SpeedsNearTarget) {
  SyntheticOptions options = FastOptions();
  options.num_trajectories = 60;
  const Dataset d = GenerateSyntheticGeoLife(options).value();
  const DatasetStats stats = d.ComputeStats();
  // Generator draws speeds around avg_speed; the realized dataset mean
  // should land in a loose band around it.
  EXPECT_GT(stats.avg_speed, 3.0);
  EXPECT_LT(stats.avg_speed, 10.0);
}

TEST(SyntheticTest, StaysWithinRegionScale) {
  const SyntheticOptions options = FastOptions();
  const Dataset d = GenerateSyntheticGeoLife(options).value();
  // Trajectories live on routes inside the region; allow slack for lane
  // offsets and noise.
  EXPECT_LT(d.Bounds().HalfDiagonal(), options.region_half_diagonal * 1.2);
}

TEST(SyntheticTest, Table2ScaleConfigurationIsConsistent) {
  // Default options mirror Table 2 (not generated here in full: this checks
  // the arithmetic that the full-scale run relies on).
  const SyntheticOptions defaults;
  EXPECT_EQ(defaults.num_users, 72u);
  EXPECT_EQ(defaults.num_trajectories, 238u);
  EXPECT_NEAR(static_cast<double>(defaults.num_trajectories *
                                  defaults.points_per_trajectory),
              343129.0, 3500.0);
  EXPECT_NEAR(defaults.region_half_diagonal, 51982.0, 1.0);
  EXPECT_NEAR(defaults.avg_speed, 6.36, 1e-9);
}

TEST(SyntheticTest, RejectsBadOptions) {
  SyntheticOptions options = FastOptions();
  options.num_trajectories = 0;
  EXPECT_FALSE(GenerateSyntheticGeoLife(options).ok());
  options = FastOptions();
  options.points_per_trajectory = 1;
  EXPECT_FALSE(GenerateSyntheticGeoLife(options).ok());
  options = FastOptions();
  options.sampling_interval = 0.0;
  EXPECT_FALSE(GenerateSyntheticGeoLife(options).ok());
  options = FastOptions();
  options.num_hubs = 1;
  EXPECT_FALSE(GenerateSyntheticGeoLife(options).ok());
}

TEST(RequirementAssignmentTest, UniformRespectsRanges) {
  Dataset d = GenerateSyntheticGeoLife(FastOptions()).value();
  Rng rng(5);
  AssignUniformRequirements(&d, 2, 100, 10.0, 1400.0, &rng);
  int k_min_seen = 1000, k_max_seen = 0;
  for (const Trajectory& t : d.trajectories()) {
    EXPECT_GE(t.requirement().k, 2);
    EXPECT_LE(t.requirement().k, 100);
    EXPECT_GE(t.requirement().delta, 10.0);
    EXPECT_LE(t.requirement().delta, 1400.0);
    k_min_seen = std::min(k_min_seen, t.requirement().k);
    k_max_seen = std::max(k_max_seen, t.requirement().k);
  }
  EXPECT_LT(k_min_seen, k_max_seen);  // actually varied
}

TEST(RequirementAssignmentTest, ProfileSplitsStrictAndRelaxed) {
  Dataset d = GenerateSyntheticGeoLife(FastOptions()).value();
  Rng rng(5);
  RequirementProfile profile;
  profile.strict_fraction = 0.5;
  AssignProfileRequirements(&d, profile, &rng);
  size_t strict = 0, relaxed = 0;
  for (const Trajectory& t : d.trajectories()) {
    if (t.requirement().k == profile.strict_k) {
      ++strict;
    } else if (t.requirement().k == profile.relaxed_k) {
      ++relaxed;
    } else {
      FAIL() << "unexpected k " << t.requirement().k;
    }
  }
  EXPECT_GT(strict, 0u);
  EXPECT_GT(relaxed, 0u);
}

TEST(SyntheticTest, OutlierFractionProducesLoners) {
  SyntheticOptions options = FastOptions();
  options.num_trajectories = 60;
  options.outlier_fraction = 0.2;
  const Dataset with = GenerateSyntheticGeoLife(options).value();
  options.outlier_fraction = 0.0;
  const Dataset without = GenerateSyntheticGeoLife(options).value();
  ASSERT_EQ(with.size(), without.size());
  EXPECT_TRUE(with.Validate().ok());
  // Outliers meander instead of pacing a route, so the datasets differ and
  // the outlier variant covers at least as much area.
  bool any_diff = false;
  for (size_t i = 0; i < with.size() && !any_diff; ++i) {
    any_diff = !(with[i][0] == without[i][0]);
  }
  EXPECT_TRUE(any_diff);
  // Every trajectory still has the exact requested point count.
  for (const Trajectory& t : with.trajectories()) {
    EXPECT_EQ(t.size(), options.points_per_trajectory);
  }
}

TEST(SyntheticTest, OutlierFractionOneIsAllOutliers) {
  SyntheticOptions options = FastOptions();
  options.outlier_fraction = 1.0;
  const Dataset d = GenerateSyntheticGeoLife(options).value();
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.size(), options.num_trajectories);
  // Random walks stay inside the region.
  const double half_side = options.region_half_diagonal / std::sqrt(2.0);
  const BoundingBox box = d.Bounds();
  EXPECT_GE(box.min_x(), -half_side - 1.0);
  EXPECT_LE(box.max_x(), half_side + 1.0);
}

TEST(SyntheticTest, SmallSyntheticHelperIsUsable) {
  const Dataset d = testing_util::SmallSynthetic();
  EXPECT_EQ(d.size(), 40u);
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_GE(d.MaxK(), 2);
  EXPECT_GE(d.MinDelta(), 10.0);
}

}  // namespace
}  // namespace wcop
