#include <gtest/gtest.h>

#include "anon/metrics.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

TEST(TranslationDistortionTest, IdenticalIsZero) {
  const Trajectory t = MakeLine(1, 0, 0, 1, 0, 10);
  EXPECT_DOUBLE_EQ(TranslationDistortion(t, t, 100.0), 0.0);
}

TEST(TranslationDistortionTest, ConstantOffsetSums) {
  const Trajectory orig = MakeLine(1, 0, 0, 1, 0, 10);
  const Trajectory moved = MakeLine(1, 0, 3, 1, 0, 10);  // +3 m north
  EXPECT_NEAR(TranslationDistortion(orig, moved, 100.0), 30.0, 1e-9);
}

TEST(TranslationDistortionTest, TrashedCostsSizeTimesOmega) {
  const Trajectory orig = MakeLine(1, 0, 0, 1, 0, 25);
  EXPECT_DOUBLE_EQ(TranslationDistortion(orig, Trajectory(), 7.0), 175.0);
}

TEST(TranslationDistortionTest, SanitizedAtDifferentTimesUsesInterpolation) {
  // Original runs along x = t; sanitized has one point at t=0.5 offset 1 m.
  const Trajectory orig(1, {Point(0, 0, 0), Point(1, 0, 1)});
  const Trajectory sanitized(1, {Point(0.5, 1.0, 0.5)});
  EXPECT_NEAR(TranslationDistortion(orig, sanitized, 10.0), 1.0, 1e-9);
}

TEST(TotalTranslationDistortionTest, MixesPublishedAndTrashed) {
  Dataset d;
  d.Add(MakeLine(0, 0, 0, 1, 0, 10));
  d.Add(MakeLine(1, 0, 0, 1, 0, 5));
  const Trajectory moved = MakeLine(0, 0, 2, 1, 0, 10);
  std::vector<const Trajectory*> sanitized_of = {&moved, nullptr};
  // 10 points * 2 m + 5 points * omega(=3).
  EXPECT_NEAR(TotalTranslationDistortion(d, sanitized_of, 3.0), 35.0, 1e-9);
}

TEST(DiscernibilityTest, FormulaMatches) {
  std::vector<AnonymityCluster> clusters(2);
  clusters[0].members = {0, 1, 2};     // 9
  clusters[1].members = {3, 4, 5, 6};  // 16
  EXPECT_DOUBLE_EQ(Discernibility(clusters, 2, 10), 9.0 + 16.0 + 20.0);
  EXPECT_DOUBLE_EQ(Discernibility({}, 0, 10), 0.0);
}

// The paper's Table 1 worked example: kmax = 50, delta_min = 20.
TEST(DemandingnessTest, PaperTable1Values) {
  EXPECT_NEAR(Demandingness(Requirement{50, 30.0}, 50, 20.0), 0.83, 0.005);
  EXPECT_NEAR(Demandingness(Requirement{30, 20.0}, 50, 20.0), 0.80, 0.005);
  EXPECT_NEAR(Demandingness(Requirement{23, 100.0}, 50, 20.0), 0.33, 0.005);
  EXPECT_NEAR(Demandingness(Requirement{23, 220.0}, 50, 20.0), 0.27, 0.01);
  EXPECT_NEAR(Demandingness(Requirement{20, 200.0}, 50, 20.0), 0.25, 0.005);
}

TEST(DemandingnessTest, MonotoneInKAndInverseInDelta) {
  const double base = Demandingness(Requirement{10, 100.0}, 50, 20.0);
  EXPECT_GT(Demandingness(Requirement{20, 100.0}, 50, 20.0), base);
  EXPECT_GT(Demandingness(Requirement{10, 50.0}, 50, 20.0), base);
  EXPECT_LT(Demandingness(Requirement{10, 200.0}, 50, 20.0), base);
}

TEST(DemandingnessTest, WeightsShiftEmphasis) {
  const Requirement req{50, 40.0};
  const double k_only = Demandingness(req, 50, 20.0, 1.0, 0.0);
  const double d_only = Demandingness(req, 50, 20.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(k_only, 1.0);
  EXPECT_DOUBLE_EQ(d_only, 0.5);
}

TEST(DemandingnessTest, DegenerateInputsAreSafe) {
  EXPECT_DOUBLE_EQ(Demandingness(Requirement{5, 0.0}, 10, 0.0), 0.25);
  EXPECT_DOUBLE_EQ(Demandingness(Requirement{5, 10.0}, 0, 5.0), 0.25);
}

TEST(DatasetDemandingnessTest, UsesDatasetExtremes) {
  Dataset d;
  Trajectory a = MakeLine(0, 0, 0, 1, 0, 5);
  a.set_requirement(Requirement{50, 30.0});
  Trajectory b = MakeLine(1, 0, 0, 1, 0, 5);
  b.set_requirement(Requirement{10, 20.0});
  d.Add(a);
  d.Add(b);
  const std::vector<double> dd = DatasetDemandingness(d);
  ASSERT_EQ(dd.size(), 2u);
  EXPECT_NEAR(dd[0], 0.5 * 50.0 / 50.0 + 0.5 * 20.0 / 30.0, 1e-9);
  EXPECT_NEAR(dd[1], 0.5 * 10.0 / 50.0 + 0.5 * 20.0 / 20.0, 1e-9);
}

// Table 1 continued: threshold = tau_47 (0.33), max = tau_21 (0.83).
TEST(EditCostTest, PaperExampleValues) {
  const double d21 = Demandingness(Requirement{50, 30.0}, 50, 20.0);
  const double d5 = Demandingness(Requirement{30, 20.0}, 50, 20.0);
  const double d47 = Demandingness(Requirement{23, 100.0}, 50, 20.0);
  EXPECT_NEAR(EditCost(d21, d47, d21), 1.0, 1e-9);
  EXPECT_NEAR(EditCost(d5, d47, d21), 0.94, 0.01);
}

TEST(EditCostTest, OtherwiseBranchIsZero) {
  EXPECT_DOUBLE_EQ(EditCost(0.9, 0.5, 0.5), 0.0);   // max == threshold
  EXPECT_DOUBLE_EQ(EditCost(0.3, 0.5, 0.9), 0.0);   // below threshold clamps
}

TEST(EditingDistortionTest, Formula) {
  EXPECT_DOUBLE_EQ(EditingDistortion(100, 50.0, 0.5), 2500.0);
  EXPECT_DOUBLE_EQ(EditingDistortion(0, 50.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(EditingDistortion(10, 50.0, 0.0), 0.0);
}

}  // namespace
}  // namespace wcop
