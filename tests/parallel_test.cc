#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "anon/distance_cache.h"
#include "anon/types.h"
#include "common/run_context.h"
#include "common/telemetry.h"
#include "test_util.h"

namespace wcop {
namespace {

using parallel::ParallelFor;
using parallel::ParallelMap;
using parallel::ParallelOptions;
using parallel::ResolveThreads;
using parallel::ThreadPool;
using testing_util::SmallSynthetic;

ParallelOptions WithThreads(int threads, size_t grain = 0) {
  ParallelOptions options;
  options.threads = threads;
  options.grain = grain;
  return options;
}

// ---------------------------------------------------------------------------
// Thread-count resolution.
// ---------------------------------------------------------------------------

TEST(ParallelTest, ResolveThreadsPassesPositiveThrough) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(7), 7);
}

TEST(ParallelTest, ResolveThreadsDefaultsArePositive) {
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_GE(ResolveThreads(-3), 1);
  EXPECT_GE(parallel::DefaultThreads(), 1);
  EXPECT_GE(parallel::HardwareThreads(), 1);
}

// ---------------------------------------------------------------------------
// ParallelFor basics.
// ---------------------------------------------------------------------------

TEST(ParallelTest, EmptyRangeIsNoop) {
  bool touched = false;
  Status s = ParallelFor(0, [&](size_t) { touched = true; }, WithThreads(4));
  EXPECT_TRUE(s.ok());
  EXPECT_FALSE(touched);
}

TEST(ParallelTest, EveryIndexRunsExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    for (size_t grain : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      const size_t n = 257;
      std::vector<std::atomic<int>> hits(n);
      Status s = ParallelFor(
          n, [&](size_t i) { hits[i].fetch_add(1); },
          WithThreads(threads, grain));
      ASSERT_TRUE(s.ok()) << s;
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "index " << i << " threads=" << threads << " grain=" << grain;
      }
    }
  }
}

TEST(ParallelTest, SerialAndParallelResultsMatch) {
  const size_t n = 500;
  auto f = [](size_t i) {
    return static_cast<double>(i) * 1.5 + static_cast<double>(i % 7);
  };
  std::vector<double> serial(n), parallel_out(n);
  ASSERT_TRUE(
      ParallelFor(n, [&](size_t i) { serial[i] = f(i); }, WithThreads(1))
          .ok());
  ASSERT_TRUE(ParallelFor(
                  n, [&](size_t i) { parallel_out[i] = f(i); },
                  WithThreads(8, 3))
                  .ok());
  EXPECT_EQ(serial, parallel_out);
}

TEST(ParallelTest, ParallelMapPreservesIndexOrder) {
  for (int threads : {1, 4}) {
    Result<std::vector<size_t>> out = ParallelMap<size_t>(
        100, [](size_t i) { return i * i; }, WithThreads(threads));
    ASSERT_TRUE(out.ok()) << out.status();
    for (size_t i = 0; i < out->size(); ++i) {
      EXPECT_EQ((*out)[i], i * i);
    }
  }
}

TEST(ParallelTest, TasksCounterCoversAllChunks) {
  telemetry::Telemetry tel;
  ParallelOptions options = WithThreads(4, 10);
  options.telemetry = &tel;
  ASSERT_TRUE(ParallelFor(100, [](size_t) {}, options).ok());
  const telemetry::MetricsSnapshot snap = tel.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("parallel.tasks"), 10u);  // 100 items / 10
  EXPECT_EQ(snap.CounterValue("parallel.batches"), 1u);
}

// ---------------------------------------------------------------------------
// Exception propagation.
// ---------------------------------------------------------------------------

TEST(ParallelTest, ExceptionPropagatesSerial) {
  EXPECT_THROW(
      {
        Status s = ParallelFor(
            10,
            [](size_t i) {
              if (i == 3) {
                throw std::runtime_error("boom");
              }
            },
            WithThreads(1));
        (void)s;
      },
      std::runtime_error);
}

TEST(ParallelTest, ExceptionPropagatesParallel) {
  std::atomic<int> ran{0};
  EXPECT_THROW(
      {
        Status s = ParallelFor(
            1000,
            [&](size_t i) {
              ran.fetch_add(1);
              if (i == 17) {
                throw std::runtime_error("boom");
              }
            },
            WithThreads(4, 1));
        (void)s;
      },
      std::runtime_error);
  // The throwing chunk stops further claiming; in-flight chunks may finish.
  EXPECT_GE(ran.load(), 1);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation at chunk boundaries.
// ---------------------------------------------------------------------------

TEST(ParallelTest, CancellationStopsSerialLoopAtChunkBoundary) {
  CancellationToken token;
  RunContext context;
  context.set_cancellation_token(token);
  size_t executed = 0;
  ParallelOptions options = WithThreads(1, 5);
  options.context = &context;
  Status s = ParallelFor(
      1000,
      [&](size_t) {
        ++executed;
        token.RequestCancellation();  // trips before the *next* chunk
      },
      options);
  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s;
  EXPECT_EQ(executed, 5u);  // exactly the first chunk
}

TEST(ParallelTest, CancellationStopsParallelLoop) {
  CancellationToken token;
  RunContext context;
  context.set_cancellation_token(token);
  std::atomic<size_t> executed{0};
  ParallelOptions options = WithThreads(4, 1);
  options.context = &context;
  Status s = ParallelFor(
      100000,
      [&](size_t) {
        executed.fetch_add(1);
        token.RequestCancellation();
      },
      options);
  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s;
  EXPECT_LT(executed.load(), 100000u);  // the trip stopped chunk claiming
}

TEST(ParallelTest, PreCancelledContextRunsNothing) {
  CancellationToken token;
  token.RequestCancellation();
  RunContext context;
  context.set_cancellation_token(token);
  std::atomic<size_t> executed{0};
  for (int threads : {1, 4}) {
    ParallelOptions options = WithThreads(threads, 1);
    options.context = &context;
    Status s =
        ParallelFor(100, [&](size_t) { executed.fetch_add(1); }, options);
    EXPECT_EQ(s.code(), StatusCode::kCancelled) << s;
  }
  EXPECT_EQ(executed.load(), 0u);
}

// ---------------------------------------------------------------------------
// Pool lifecycle.
// ---------------------------------------------------------------------------

TEST(ParallelTest, PoolStartStopIsIdempotentAndRestartable) {
  ThreadPool& pool = ThreadPool::Global();
  pool.Shutdown();  // from any prior state
  pool.Shutdown();  // idempotent on a stopped pool
  EXPECT_EQ(pool.worker_count(), 0);

  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.worker_count(), 3);
  pool.EnsureWorkers(2);  // grow-only: shrinking requests are no-ops
  EXPECT_EQ(pool.worker_count(), 3);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.worker_count(), 3);

  pool.Shutdown();
  EXPECT_EQ(pool.worker_count(), 0);

  // Restart after shutdown: ParallelFor must work again.
  std::atomic<size_t> count{0};
  Status s = ParallelFor(
      100, [&](size_t) { count.fetch_add(1); }, WithThreads(4, 1));
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(count.load(), 100u);
  EXPECT_GE(pool.worker_count(), 1);
}

TEST(ParallelTest, SerialPathNeverStartsThePool) {
  ThreadPool& pool = ThreadPool::Global();
  pool.Shutdown();
  ASSERT_EQ(pool.worker_count(), 0);
  size_t executed = 0;
  ASSERT_TRUE(
      ParallelFor(50, [&](size_t) { ++executed; }, WithThreads(1)).ok());
  EXPECT_EQ(executed, 50u);
  EXPECT_EQ(pool.worker_count(), 0);
}

// ---------------------------------------------------------------------------
// ShardedPairDistanceCache: value correctness + exact accounting under
// concurrency (run under TSan in CI with WCOP_THREADS=4).
// ---------------------------------------------------------------------------

TEST(ShardedCacheTest, ValuesMatchDirectComputation) {
  const Dataset d = SmallSynthetic(16, 24);
  DistanceConfig config;
  config.edr_scale = 1000.0;
  config.tolerance = EdrTolerance{100.0, 100.0, 600.0};
  ShardedPairDistanceCache cache(d, config, nullptr, nullptr, 200);
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t j = 0; j < d.size(); ++j) {
      const double expected =
          i == j ? 0.0 : ClusterDistance(d[i], d[j], config);
      EXPECT_DOUBLE_EQ(cache.Get(i, j), expected) << i << "," << j;
    }
  }
}

TEST(ShardedCacheTest, ConcurrentStressKeepsExactAccounting) {
  const Dataset d = SmallSynthetic(24, 20);
  DistanceConfig config;
  config.edr_scale = 1000.0;
  config.tolerance = EdrTolerance{100.0, 100.0, 600.0};
  telemetry::Telemetry tel;
  RunContext context;
  const size_t n = d.size();
  ShardedPairDistanceCache cache(d, config, &context, &tel, n * n);

  // Hammer the same pair set from many threads, including same-key races
  // (every pair is looked up ~8 times) and both lookup flavours.
  const size_t lookups = n * n * 8;
  std::vector<double> got(lookups);
  Status s = ParallelFor(
      lookups,
      [&](size_t t) {
        const size_t i = (t / n) % n;
        const size_t j = t % n;
        got[t] = (t % 3 == 0)
                     ? cache.GetWithCutoff(i, j, 1e18)  // never abandons
                     : cache.Get(i, j);
      },
      WithThreads(8, 1));
  ASSERT_TRUE(s.ok()) << s;

  // Values: every slot equals the direct computation.
  for (size_t t = 0; t < lookups; ++t) {
    const size_t i = (t / n) % n;
    const size_t j = t % n;
    const double expected = i == j ? 0.0 : ClusterDistance(d[i], d[j], config);
    ASSERT_DOUBLE_EQ(got[t], expected) << "lookup " << t;
  }

  // Accounting: each distinct pair resolved exactly once — by the DP
  // (charged to distance.calls.edr and the RunContext budget) or by an
  // analytic cascade certificate (free) — and every other lookup is a
  // cache hit.
  const size_t distinct_pairs = n * (n - 1) / 2;
  const telemetry::MetricsSnapshot snap = tel.metrics().Snapshot();
  EXPECT_EQ(cache.computed() + cache.analytic(), distinct_pairs);
  EXPECT_EQ(snap.CounterValue("distance.calls.edr"), cache.computed());
  // No cutoff ever certified a bound (1e18 never abandons): the abandon
  // tally is exactly the analytic resolutions.
  EXPECT_EQ(cache.abandoned(), cache.analytic());
  const size_t diagonal_lookups = lookups / n;  // i == j short-circuits
  EXPECT_EQ(snap.CounterValue("distance.cache_hits"),
            lookups - diagonal_lookups - distinct_pairs);
  EXPECT_EQ(context.distance_computations(), cache.computed());
}

TEST(ShardedCacheTest, BoundEntriesUpgradeToExact) {
  // Legacy (cascade-off) semantics, kept alive by the kill-switch: two
  // trajectories of very different lengths make the length lower bound
  // exceed a small cutoff, so the first lookup abandons; a later lookup
  // with a generous cutoff must upgrade to the exact distance and charge
  // exactly once.
  Dataset d(std::vector<Trajectory>{
      testing_util::MakeLine(1, 0.0, 0.0, 10.0, 0.0, 4),
      testing_util::MakeLine(2, 0.0, 500.0, 10.0, 0.0, 40),
  });
  DistanceConfig config;
  config.edr_scale = 1000.0;
  config.tolerance = EdrTolerance{100.0, 100.0, 600.0};
  config.cascade = false;
  telemetry::Telemetry tel;
  ShardedPairDistanceCache cache(d, config, nullptr, &tel, 4);
  ASSERT_FALSE(cache.cascade_active());

  const double bound = cache.GetWithCutoff(0, 1, 1e-6);
  EXPECT_GT(bound, 1e-6);  // served the (abandoning) lower bound
  EXPECT_EQ(cache.abandoned(), 1u);
  EXPECT_EQ(cache.computed(), 0u);

  // Cutoff still below the stored bound: served from the cache as a hit.
  const double again = cache.GetWithCutoff(0, 1, 1e-6);
  EXPECT_DOUBLE_EQ(again, bound);
  EXPECT_EQ(cache.abandoned(), 1u);

  // A non-decisive access upgrades to the exact value.
  const double exact = cache.Get(0, 1);
  EXPECT_DOUBLE_EQ(exact, ClusterDistance(d[0], d[1], config));
  EXPECT_GE(exact, bound);  // it was a true lower bound
  EXPECT_EQ(cache.computed(), 1u);
  const telemetry::MetricsSnapshot snap = tel.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("distance.calls.edr"), 1u);
  EXPECT_EQ(snap.CounterValue("distance.early_abandoned"), 1u);
}

TEST(ShardedCacheTest, CascadeServesAnalyticExactsWithoutCharging) {
  // Same pair with the cascade on. The y-gap (500 > dy + dy-extent) makes
  // the dilated MBRs disjoint, so the separation rung *knows* the distance
  // is edr_scale without running the DP: a cutoff lookup first abandons on
  // the O(1) length bound, and the later unbounded lookup resolves
  // analytically — distance.calls.edr stays zero.
  Dataset d(std::vector<Trajectory>{
      testing_util::MakeLine(1, 0.0, 0.0, 10.0, 0.0, 4),
      testing_util::MakeLine(2, 0.0, 500.0, 10.0, 0.0, 40),
  });
  DistanceConfig config;
  config.edr_scale = 1000.0;
  config.tolerance = EdrTolerance{100.0, 100.0, 600.0};
  telemetry::Telemetry tel;
  ShardedPairDistanceCache cache(d, config, nullptr, &tel, 4);
  ASSERT_TRUE(cache.cascade_active());

  const double bound = cache.GetWithCutoff(0, 1, 1e-6);
  EXPECT_GT(bound, 1e-6);
  EXPECT_EQ(cache.abandoned(), 1u);
  EXPECT_EQ(cache.computed(), 0u);

  const double exact = cache.Get(0, 1);
  EXPECT_DOUBLE_EQ(exact, ClusterDistance(d[0], d[1], config));
  EXPECT_DOUBLE_EQ(exact, config.edr_scale);  // separation: max-length cost
  EXPECT_GE(exact, bound);
  EXPECT_EQ(cache.computed(), 0u);
  EXPECT_EQ(cache.analytic(), 1u);
  const telemetry::MetricsSnapshot snap = tel.metrics().Snapshot();
  EXPECT_EQ(snap.CounterValue("distance.calls.edr"), 0u);
  // Two DP-free resolutions: the length-bound serve, then the analytic
  // separation exact; lb.* records the rung of each.
  EXPECT_EQ(snap.CounterValue("distance.early_abandoned"), 2u);
  EXPECT_EQ(snap.CounterValue("distance.lb.length_pruned"), 1u);
  EXPECT_EQ(snap.CounterValue("distance.lb.separation_pruned"), 1u);

  // CheapProbe on a resolved pair serves the cached exact as a hit.
  const auto probe = cache.CheapProbe(0, 1);
  EXPECT_TRUE(probe.exact);
  EXPECT_DOUBLE_EQ(probe.value, exact);
}

}  // namespace
}  // namespace wcop
