#ifndef WCOP_ATTACK_EFFECTIVE_K_H_
#define WCOP_ATTACK_EFFECTIVE_K_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "attack/adversary.h"
#include "attack/candidate_source.h"
#include "common/result.h"
#include "common/run_context.h"
#include "common/telemetry.h"

namespace wcop {
namespace attack {

/// Per-(k,δ)-policy summary of the effective anonymity-set sizes measured
/// for the users who requested exactly that policy.
struct PolicyEffectiveK {
  int k = 0;           ///< requested k_i
  double delta = 0.0;  ///< requested delta_i
  size_t users = 0;
  size_t violations = 0;  ///< users with effective k < requested k
  double mean = 0.0;
  double p5 = 0.0;  ///< nearest-rank percentiles of effective k
  double p25 = 0.0;
  double p50 = 0.0;
};

struct EffectiveKResult {
  size_t users_measured = 0;
  double mean_effective_k = 0.0;
  /// Fraction of measured users whose effective anonymity-set size under
  /// (τ, ε) sub-trajectory knowledge falls below their requested k_i —
  /// the headline "does the publication deliver what was promised" number.
  double violation_fraction = 0.0;
  std::vector<PolicyEffectiveK> policies;  ///< sorted by (k, delta)
};

struct EffectiveKOptions {
  /// τ (seconds of sub-trajectory the adversary knows) and ε (spatial
  /// tolerance, metres) come from the adversary model; `seed` keys the
  /// deterministic per-user choice of which τ-interval is known.
  AdversaryModel adversary;

  /// Timestamps sampled inside each τ-interval when testing candidate
  /// consistency. More samples = stricter matching.
  size_t samples = 8;

  /// How many published users to measure (0 = all; subsets are chosen by
  /// a deterministic shuffle of `adversary.seed`).
  size_t num_users = 0;

  int threads = 1;
  const RunContext* run_context = nullptr;
  /// `attack.effective_k` histogram + `attack.effective_k.violations`
  /// counter.
  telemetry::Telemetry* telemetry = nullptr;
  std::function<void(size_t, size_t)> progress;  ///< (done, total) users
};

/// Gramaglia-style k^{τ,ε} quantifier over a published source: for each
/// measured user, pick a deterministic τ-seconds sub-interval of its
/// published lifetime, sample `samples` timestamps inside it, and count
/// the published candidates that stay within ε metres of the user's
/// positions at *every* sampled timestamp (temporal overlap with the
/// interval required; the user itself always counts, so effective k >= 1).
/// That count is the user's effective anonymity-set size — the number of
/// records an adversary holding this sub-trajectory cannot tell apart —
/// and is compared against the user's requested k_i. Candidates whose
/// index MBR, dilated by ε, excludes any sampled position are skipped
/// without reading their block (certified, see PointToEntryDistance).
Result<EffectiveKResult> MeasureEffectiveK(const CandidateSource& published,
                                           const EffectiveKOptions& options);

/// Merges partial results (e.g. per-window measurements of a continuous
/// publication) into one: user counts add, policy rows regroup. Percentile
/// fields are recomputed from the per-policy value lists, which `partials`
/// must carry — use the internal accumulation helpers below.
struct EffectiveKSamples {
  /// One (requested k, requested delta, effective k) triple per user.
  struct Sample {
    int k = 0;
    double delta = 0.0;
    uint64_t effective_k = 0;
  };
  std::vector<Sample> samples;
};

/// Raw-sample variant powering cross-window merges: identical measurement,
/// but returns every per-user sample so callers can pool windows before
/// summarizing.
Result<EffectiveKSamples> MeasureEffectiveKSamples(
    const CandidateSource& published, const EffectiveKOptions& options);

/// Summarizes pooled samples into the reported result (deterministic:
/// samples are sorted before percentile extraction).
EffectiveKResult SummarizeEffectiveK(const EffectiveKSamples& samples,
                                     telemetry::Telemetry* telemetry);

}  // namespace attack
}  // namespace wcop

#endif  // WCOP_ATTACK_EFFECTIVE_K_H_
