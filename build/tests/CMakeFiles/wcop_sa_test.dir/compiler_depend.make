# Empty compiler generated dependencies file for wcop_sa_test.
# This may be replaced when dependencies are built.
