#include "related/path_perturbation.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "distance/euclidean.h"

namespace wcop {

namespace {

/// Finds the time of closest synchronized approach between two
/// trajectories over their temporal overlap (sampled at the union of their
/// vertex times). Returns false when they never overlap.
bool ClosestApproach(const Trajectory& a, const Trajectory& b, double* t_out,
                     double* dist_out) {
  const double t_lo = std::max(a.StartTime(), b.StartTime());
  const double t_hi = std::min(a.EndTime(), b.EndTime());
  if (t_lo > t_hi) {
    return false;
  }
  double best_t = t_lo;
  double best_d = std::numeric_limits<double>::infinity();
  auto consider = [&](double t) {
    if (t < t_lo || t > t_hi) {
      return;
    }
    const double d = SpatialDistance(a.PositionAt(t), b.PositionAt(t));
    if (d < best_d) {
      best_d = d;
      best_t = t;
    }
  };
  consider(t_lo);
  consider(t_hi);
  for (const Point& p : a.points()) {
    consider(p.t);
  }
  for (const Point& p : b.points()) {
    consider(p.t);
  }
  *t_out = best_t;
  *dist_out = best_d;
  return true;
}

/// Bends trajectory points within `window` seconds of `t_cross` towards
/// `target`, with a triangular weight peaking at t_cross (so the
/// perturbation fades in and out smoothly). The *cumulative* displacement
/// of every point relative to its position in `original` stays within
/// `max_move`, even across multiple crossings. Returns the summed
/// displacement applied by this call.
double BendTowards(Trajectory* t, const Trajectory& original, double t_cross,
                   const Point& target, double window, double max_move,
                   double* max_disp) {
  double total = 0.0;
  for (size_t i = 0; i < t->size(); ++i) {
    Point& p = t->mutable_points()[i];
    const Point& orig = original[i];
    const double dt = std::abs(p.t - t_cross);
    if (dt > window) {
      continue;
    }
    const double weight = 1.0 - dt / window;  // 1 at the crossing, 0 at edge
    const double before_x = p.x;
    const double before_y = p.y;
    double nx = p.x + (target.x - p.x) * weight;
    double ny = p.y + (target.y - p.y) * weight;
    // Clamp the cumulative displacement back into the radius around the
    // original position.
    const double ox = nx - orig.x;
    const double oy = ny - orig.y;
    const double norm = std::sqrt(ox * ox + oy * oy);
    if (norm > max_move && norm > 0.0) {
      nx = orig.x + ox * max_move / norm;
      ny = orig.y + oy * max_move / norm;
    }
    p.x = nx;
    p.y = ny;
    const double moved = std::sqrt((p.x - before_x) * (p.x - before_x) +
                                   (p.y - before_y) * (p.y - before_y));
    total += moved;
    const double cumulative = SpatialDistance(p, orig);
    *max_disp = std::max(*max_disp, cumulative);
  }
  return total;
}

}  // namespace

Result<PathPerturbationResult> RunPathPerturbation(
    const Dataset& dataset, const PathPerturbationOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (options.radius <= 0.0 || options.time_window <= 0.0) {
    return Status::InvalidArgument("radius and time_window must be positive");
  }
  Rng rng(options.seed);
  PathPerturbationResult result;
  result.perturbed = dataset;
  Dataset& out = result.perturbed;
  std::vector<size_t> crossings(dataset.size(), 0);

  // Consider each pair once, nearest encounters first would be ideal; the
  // original algorithm processes pairs within each time window. A simple
  // pair sweep suffices at library scale (the quadratic pair scan is the
  // same cost class as the clustering algorithms here).
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = i + 1; j < out.size(); ++j) {
      if (crossings[i] >= options.max_crossings_per_trajectory ||
          crossings[j] >= options.max_crossings_per_trajectory) {
        continue;
      }
      double t_cross = 0.0, dist = 0.0;
      if (!ClosestApproach(out[i], out[j], &t_cross, &dist)) {
        continue;
      }
      if (dist > options.radius || dist <= 0.0) {
        continue;  // too far to confuse, or already crossing
      }
      ++result.report.candidate_pairs;
      // Fake crossing point: a random point between the two positions at
      // the approach time (jittered so crossings do not all sit at
      // midpoints).
      const Point pa = out[i].PositionAt(t_cross);
      const Point pb = out[j].PositionAt(t_cross);
      const double alpha = rng.UniformReal(0.35, 0.65);
      const Point cross(pa.x + alpha * (pb.x - pa.x),
                        pa.y + alpha * (pb.y - pa.y), t_cross);
      double max_disp = result.report.max_displacement;
      result.report.total_displacement +=
          BendTowards(&out[i], dataset[i], t_cross, cross,
                      options.time_window, options.radius, &max_disp);
      result.report.total_displacement +=
          BendTowards(&out[j], dataset[j], t_cross, cross,
                      options.time_window, options.radius, &max_disp);
      result.report.max_displacement = max_disp;
      ++result.report.crossings_created;
      ++crossings[i];
      ++crossings[j];
    }
  }
  return result;
}

}  // namespace wcop
