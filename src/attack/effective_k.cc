#include "attack/effective_k.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <utility>

#include "common/parallel.h"
#include "common/rng.h"
#include "geo/point.h"

namespace wcop {
namespace attack {

namespace {

struct UserOutcome {
  Status status;
  bool skipped = false;  ///< degenerate lifetime, nothing to measure
  EffectiveKSamples::Sample sample;
};

UserOutcome MeasureUser(const CandidateSource& published, size_t user,
                        const EffectiveKOptions& options) {
  UserOutcome out;
  const store::StoreEntry& self = published.entry(user);
  Result<Trajectory> traj = published.Read(user);
  if (!traj.ok()) {
    out.status = traj.status();
    return out;
  }
  if (traj->empty()) {
    out.skipped = true;
    return out;
  }
  const double duration = traj->Duration();
  const double tau = std::min(options.adversary.tau_seconds, duration);

  // Deterministic choice of *which* τ-interval the adversary knows: a
  // per-user stream draws the interval start, so the measurement depends
  // only on (seed, user key), never on scheduling.
  Rng rng(MixSeed(options.adversary.seed, static_cast<uint64_t>(
                                              published.KeyOf(user))));
  const double slack = duration - tau;
  const double start =
      traj->StartTime() + (slack > 0.0 ? rng.UniformReal(0.0, slack) : 0.0);
  const double end = start + tau;

  const size_t samples = std::max<size_t>(options.samples, 1);
  std::vector<Point> known;
  known.reserve(samples);
  for (size_t s = 0; s < samples; ++s) {
    const double frac =
        samples == 1 ? 0.0
                     : static_cast<double>(s) /
                           static_cast<double>(samples - 1);
    const double t = start + frac * (end - start);
    known.push_back(traj->PositionAt(t));
  }

  const double epsilon = options.adversary.epsilon;
  uint64_t effective = 0;
  for (size_t j = 0; j < published.size(); ++j) {
    const store::StoreEntry& e = published.entry(j);
    // A record that does not overlap the known interval in time is
    // distinguishable from the victim outright.
    if (e.t_max < start || e.t_min > end) {
      continue;
    }
    // Certified prefilter: PositionAt never leaves the spatial MBR, so a
    // candidate whose ε-dilated MBR excludes any known position cannot be
    // within ε of it — skip without reading the block.
    bool possible = true;
    for (const Point& p : known) {
      if (PointToEntryDistance(e, p) > epsilon) {
        possible = false;
        break;
      }
    }
    if (!possible) {
      continue;
    }
    if (j == user) {
      ++effective;
      continue;
    }
    Result<Trajectory> candidate = published.Read(j);
    if (!candidate.ok()) {
      out.status = candidate.status();
      return out;
    }
    if (options.run_context != nullptr) {
      options.run_context->ChargeDistance();
    }
    bool consistent = true;
    for (const Point& p : known) {
      if (SpatialDistance(candidate->PositionAt(p.t), p) > epsilon) {
        consistent = false;
        break;
      }
    }
    if (consistent) {
      ++effective;
    }
  }
  out.sample.k = static_cast<int>(self.k);
  out.sample.delta = self.delta;
  out.sample.effective_k = effective;
  return out;
}

double NearestRankPercentile(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double n = static_cast<double>(sorted.size());
  size_t rank = static_cast<size_t>(std::ceil(p * n));
  rank = std::min(std::max<size_t>(rank, 1), sorted.size());
  return static_cast<double>(sorted[rank - 1]);
}

}  // namespace

Result<EffectiveKSamples> MeasureEffectiveKSamples(
    const CandidateSource& published, const EffectiveKOptions& options) {
  if (published.size() == 0) {
    return Status::InvalidArgument("effective-k needs a non-empty source");
  }
  WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  WCOP_TRACE_SPAN(options.telemetry, "attack/effective_k");

  std::vector<size_t> users(published.size());
  std::iota(users.begin(), users.end(), 0);
  if (options.num_users > 0 && options.num_users < users.size()) {
    Rng rng(options.adversary.seed);
    std::shuffle(users.begin(), users.end(), rng.engine());
    users.resize(options.num_users);
    std::sort(users.begin(), users.end());
  }

  EffectiveKSamples result;
  result.samples.reserve(users.size());
  constexpr size_t kBlock = 256;
  parallel::ParallelOptions popts;
  popts.threads = options.threads;
  popts.grain = 1;
  popts.context = options.run_context;
  popts.telemetry = options.telemetry;
  for (size_t begin = 0; begin < users.size(); begin += kBlock) {
    const size_t count = std::min(kBlock, users.size() - begin);
    if (options.run_context != nullptr) {
      options.run_context->ChargeCandidatePairs(count * published.size());
    }
    Result<std::vector<UserOutcome>> outcomes =
        parallel::ParallelMap<UserOutcome>(
            count,
            [&](size_t i) {
              return MeasureUser(published, users[begin + i], options);
            },
            popts);
    if (!outcomes.ok()) {
      return outcomes.status();
    }
    for (UserOutcome& out : *outcomes) {
      if (!out.status.ok()) {
        return out.status;
      }
      if (!out.skipped) {
        result.samples.push_back(out.sample);
      }
    }
    if (options.progress) {
      options.progress(std::min(begin + count, users.size()), users.size());
    }
    WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  }
  return result;
}

EffectiveKResult SummarizeEffectiveK(const EffectiveKSamples& samples,
                                     telemetry::Telemetry* telemetry) {
  telemetry::Histogram* histogram = nullptr;
  telemetry::Counter* violations_counter = nullptr;
  if (telemetry != nullptr) {
    histogram = telemetry->metrics().GetHistogram("attack.effective_k");
    violations_counter =
        telemetry->metrics().GetCounter("attack.effective_k.violations");
  }

  EffectiveKResult result;
  // Group by the exact requested (k, δ) pair; the map keeps policies in
  // deterministic (k, δ) order for the report.
  std::map<std::pair<int, double>, std::vector<uint64_t>> by_policy;
  double total = 0.0;
  size_t violations = 0;
  for (const EffectiveKSamples::Sample& s : samples.samples) {
    by_policy[{s.k, s.delta}].push_back(s.effective_k);
    total += static_cast<double>(s.effective_k);
    if (s.effective_k < static_cast<uint64_t>(std::max(s.k, 0))) {
      ++violations;
    }
    if (histogram != nullptr) {
      histogram->Record(s.effective_k);
    }
  }
  result.users_measured = samples.samples.size();
  if (result.users_measured > 0) {
    result.mean_effective_k = total / static_cast<double>(
                                          result.users_measured);
    result.violation_fraction =
        static_cast<double>(violations) /
        static_cast<double>(result.users_measured);
  }
  telemetry::CounterAdd(violations_counter, violations);
  for (auto& [policy, values] : by_policy) {
    std::sort(values.begin(), values.end());
    PolicyEffectiveK row;
    row.k = policy.first;
    row.delta = policy.second;
    row.users = values.size();
    row.mean = static_cast<double>(
                   std::accumulate(values.begin(), values.end(),
                                   static_cast<uint64_t>(0))) /
               static_cast<double>(values.size());
    row.p5 = NearestRankPercentile(values, 0.05);
    row.p25 = NearestRankPercentile(values, 0.25);
    row.p50 = NearestRankPercentile(values, 0.50);
    for (uint64_t v : values) {
      if (v < static_cast<uint64_t>(std::max(row.k, 0))) {
        ++row.violations;
      }
    }
    result.policies.push_back(row);
  }
  return result;
}

Result<EffectiveKResult> MeasureEffectiveK(const CandidateSource& published,
                                           const EffectiveKOptions& options) {
  WCOP_ASSIGN_OR_RETURN(EffectiveKSamples samples,
                        MeasureEffectiveKSamples(published, options));
  return SummarizeEffectiveK(samples, options.telemetry);
}

}  // namespace attack
}  // namespace wcop
