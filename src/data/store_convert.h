#ifndef WCOP_DATA_STORE_CONVERT_H_
#define WCOP_DATA_STORE_CONVERT_H_

/// CSV <-> trajectory store conversion (the `csv2store` path of
/// anonymize_csv). Conversion streams one trajectory at a time in both
/// directions, so converting a dataset never requires holding it in memory.

#include <string>

#include "common/result.h"
#include "common/run_context.h"
#include "common/status.h"
#include "store/store_file.h"

namespace wcop {

struct StoreConvertStats {
  size_t trajectories = 0;
  uint64_t points = 0;
};

/// Converts the exchange-CSV at `csv_path` (traj_id,object_id,parent_id,
/// k,delta,x,y,t — the WriteDatasetCsv format) into a trajectory store at
/// `store_path`. Values round-trip bit-exactly from the parsed CSV: the
/// store keeps the %.17g text of the doubles the parser produced.
Result<StoreConvertStats> ConvertCsvToStore(const std::string& csv_path,
                                            const std::string& store_path,
                                            const RunContext* context =
                                                nullptr);

/// Converts a trajectory store back to the exchange CSV format.
Result<StoreConvertStats> ConvertStoreToCsv(const std::string& store_path,
                                            const std::string& csv_path,
                                            const RunContext* context =
                                                nullptr);

}  // namespace wcop

#endif  // WCOP_DATA_STORE_CONVERT_H_
