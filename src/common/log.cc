#include "common/log.h"

#include <sys/time.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/arg_parser.h"

namespace wcop {
namespace log {
namespace {

// JSON string escaper (same rules as telemetry.cc's trace serializer):
// quotes, backslash, control characters.
void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Wall-clock seconds with microsecond resolution, for the "ts" field.
double NowWallSeconds() {
  struct timeval tv;
  if (gettimeofday(&tv, nullptr) != 0) {
    return 0.0;
  }
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) / 1e6;
}

template <typename T>
std::string FormatInt(T v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

template <typename T>
std::string FormatUint(T v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Field::Field(std::string_view k, int v)
    : key(k), value(FormatInt(v)), quoted(false) {}
Field::Field(std::string_view k, long v)
    : key(k), value(FormatInt(v)), quoted(false) {}
Field::Field(std::string_view k, long long v)
    : key(k), value(FormatInt(v)), quoted(false) {}
Field::Field(std::string_view k, unsigned v)
    : key(k), value(FormatUint(v)), quoted(false) {}
Field::Field(std::string_view k, unsigned long v)
    : key(k), value(FormatUint(v)), quoted(false) {}
Field::Field(std::string_view k, unsigned long long v)
    : key(k), value(FormatUint(v)), quoted(false) {}
Field::Field(std::string_view k, double v) : key(k), quoted(false) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

bool ParseLevel(std::string_view text, Level* out) {
  if (text == "debug") {
    *out = Level::kDebug;
  } else if (text == "info") {
    *out = Level::kInfo;
  } else if (text == "warn" || text == "warning") {
    *out = Level::kWarn;
  } else if (text == "error") {
    *out = Level::kError;
  } else if (text == "off" || text == "none") {
    *out = Level::kOff;
  } else {
    return false;
  }
  return true;
}

bool ParseFormat(std::string_view text, Format* out) {
  if (text == "text") {
    *out = Format::kText;
  } else if (text == "json") {
    *out = Format::kJson;
  } else {
    return false;
  }
  return true;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "info";
}

Logger::~Logger() {
  std::lock_guard<std::mutex> lock(mu_);
  if (owns_out_ && out_ != nullptr) {
    std::fclose(out_);
  }
}

bool Logger::SetOut(const std::string& path) {
  if (path.empty() || path == "-") {
    SetStream(nullptr);
    return true;
  }
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (owns_out_ && out_ != nullptr) {
    std::fclose(out_);
  }
  out_ = f;
  owns_out_ = true;
  return true;
}

void Logger::SetStream(FILE* stream) {
  std::lock_guard<std::mutex> lock(mu_);
  if (owns_out_ && out_ != nullptr) {
    std::fclose(out_);
  }
  out_ = stream;
  owns_out_ = false;
}

uint64_t Logger::suppressed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_total_ + window_suppressed_;
}

void Logger::Log(Level level, std::string_view msg,
                 const std::vector<Field>& fields) {
  if (!Enabled(level)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Token-bucket over 1-second wall-clock windows. A new window first
  // flushes the previous window's suppression count into the next record.
  uint64_t suppressed_note = 0;
  if (max_per_second_ > 0) {
    const int64_t now_s = static_cast<int64_t>(NowWallSeconds());
    if (now_s != window_start_s_) {
      suppressed_note = window_suppressed_;
      suppressed_total_ += window_suppressed_;
      window_start_s_ = now_s;
      window_count_ = 0;
      window_suppressed_ = 0;
    }
    if (window_count_ >= max_per_second_) {
      ++window_suppressed_;
      return;
    }
    ++window_count_;
  }
  WriteLine(level, msg, fields, suppressed_note);
}

void Logger::WriteLine(Level level, std::string_view msg,
                       const std::vector<Field>& fields,
                       uint64_t suppressed_note) {
  std::string line;
  line.reserve(96 + msg.size());
  if (format_ == Format::kJson) {
    char ts[48];
    std::snprintf(ts, sizeof(ts), "%.6f", NowWallSeconds());
    line += "{\"ts\":";
    line += ts;
    line += ",\"level\":\"";
    line += LevelName(level);
    line += "\",\"logger\":\"";
    AppendJsonEscaped(&line, name_);
    line += "\",\"msg\":\"";
    AppendJsonEscaped(&line, msg);
    line += "\"";
    for (const Field& f : fields) {
      line += ",\"";
      AppendJsonEscaped(&line, f.key);
      line += "\":";
      if (f.quoted) {
        line += "\"";
        AppendJsonEscaped(&line, f.value);
        line += "\"";
      } else {
        line += f.value.empty() ? "0" : f.value;
      }
    }
    if (suppressed_note > 0) {
      line += ",\"suppressed\":";
      line += FormatUint(suppressed_note);
    }
    line += "}\n";
  } else {
    line += name_;
    line += ": ";
    if (level == Level::kWarn) {
      line += "warning: ";
    } else if (level == Level::kError) {
      line += "error: ";
    }
    line.append(msg.data(), msg.size());
    for (const Field& f : fields) {
      line += " ";
      line += f.key;
      line += "=";
      line += f.value;
    }
    if (suppressed_note > 0) {
      line += " suppressed=";
      line += FormatUint(suppressed_note);
    }
    line += "\n";
  }
  FILE* out = out_ != nullptr ? out_ : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

Logger& Logger::Default() {
  static Logger* logger = new Logger();
  return *logger;
}

void ContextLogger::Log(Level level, std::string_view msg,
                        const std::vector<Field>& fields) const {
  if (logger_ == nullptr || !logger_->Enabled(level)) {
    return;
  }
  if (context_.empty()) {
    logger_->Log(level, msg, fields);
    return;
  }
  std::vector<Field> merged;
  merged.reserve(context_.size() + fields.size());
  merged.insert(merged.end(), context_.begin(), context_.end());
  merged.insert(merged.end(), fields.begin(), fields.end());
  logger_->Log(level, msg, merged);
}

bool ConfigureFromArgs(const ArgParser& args, const std::string& binary_name) {
  Logger& logger = Logger::Default();
  logger.set_name(binary_name);
  const std::string level_text = args.GetString("log-level", "info");
  Level level = Level::kInfo;
  if (!ParseLevel(level_text, &level)) {
    logger.Log(Level::kError, "unknown --log-level value",
               {{"value", level_text}});
    return false;
  }
  logger.set_level(level);
  const std::string format_text = args.GetString("log-format", "text");
  Format format = Format::kText;
  if (!ParseFormat(format_text, &format)) {
    logger.Log(Level::kError, "unknown --log-format value",
               {{"value", format_text}});
    return false;
  }
  logger.set_format(format);
  const std::string out = args.GetString("log-out", "");
  if (!out.empty() && !logger.SetOut(out)) {
    logger.Log(Level::kError, "cannot open --log-out file", {{"path", out}});
    return false;
  }
  return true;
}

void Debug(std::string_view msg, const std::vector<Field>& fields) {
  Logger::Default().Log(Level::kDebug, msg, fields);
}
void Info(std::string_view msg, const std::vector<Field>& fields) {
  Logger::Default().Log(Level::kInfo, msg, fields);
}
void Warn(std::string_view msg, const std::vector<Field>& fields) {
  Logger::Default().Log(Level::kWarn, msg, fields);
}
void Error(std::string_view msg, const std::vector<Field>& fields) {
  Logger::Default().Log(Level::kError, msg, fields);
}

}  // namespace log
}  // namespace wcop
