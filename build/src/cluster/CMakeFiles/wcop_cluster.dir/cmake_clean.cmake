file(REMOVE_RECURSE
  "CMakeFiles/wcop_cluster.dir/dbscan.cc.o"
  "CMakeFiles/wcop_cluster.dir/dbscan.cc.o.d"
  "libwcop_cluster.a"
  "libwcop_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
