#include "anon/greedy_clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "anon/distance_cache.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "index/grid_index.h"

namespace wcop {

namespace {

/// Bounded max-heap of the smallest `capacity` exact distances seen during
/// one pivot scan. Once full, Top() is a schedule-independent best-so-far
/// threshold: any candidate whose lower bound exceeds it already has
/// `capacity` exactly-known candidates ranked strictly ahead of it, so it
/// can never be among the taken nearest neighbours.
class TopKThreshold {
 public:
  void Reset(size_t capacity) {
    capacity_ = capacity;
    heap_.clear();
  }

  void Push(double value) {
    if (capacity_ == 0) {
      return;
    }
    if (heap_.size() < capacity_) {
      heap_.push_back(value);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (value < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = value;
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  bool Full() const { return capacity_ > 0 && heap_.size() == capacity_; }
  double Top() const { return heap_.front(); }

 private:
  size_t capacity_ = 0;
  std::vector<double> heap_;
};

}  // namespace

Result<ClusteringOutcome> GreedyClustering(const Dataset& dataset,
                                           size_t trash_max,
                                           const WcopOptions& options) {
  const size_t n = dataset.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot cluster an empty dataset");
  }
  if (options.radius_max <= 0.0) {
    return Status::InvalidArgument("radius_max must be positive");
  }
  if (options.radius_growth <= 1.0) {
    return Status::InvalidArgument("radius_growth must exceed 1");
  }

  const RunContext* context = options.run_context;
  telemetry::Telemetry* tel = options.telemetry;
  WCOP_TRACE_SPAN(tel, "cluster/greedy");
  // Counter handles resolved once up front; null when telemetry is off.
  telemetry::Counter* attempts = nullptr;
  telemetry::Counter* accepted = nullptr;
  telemetry::Counter* rejected_radius = nullptr;
  telemetry::Counter* rejected_exhausted = nullptr;
  telemetry::Counter* leftover_assigned = nullptr;
  telemetry::Counter* leftover_trashed = nullptr;
  telemetry::Counter* rounds_counter = nullptr;
  telemetry::Histogram* cluster_size = nullptr;
  if (tel != nullptr) {
    attempts = tel->metrics().GetCounter("cluster.attempts");
    accepted = tel->metrics().GetCounter("cluster.accepted");
    rejected_radius = tel->metrics().GetCounter("cluster.rejected.radius");
    rejected_exhausted =
        tel->metrics().GetCounter("cluster.rejected.exhausted");
    leftover_assigned = tel->metrics().GetCounter("cluster.leftover.assigned");
    leftover_trashed = tel->metrics().GetCounter("cluster.leftover.trashed");
    rounds_counter = tel->metrics().GetCounter("cluster.rounds");
    cluster_size = tel->metrics().GetHistogram("cluster.size");
  }
  // Memoizes symmetric pairwise distances across radius-relaxation rounds
  // (the distance function is deterministic, so recomputation is pure
  // waste). Sized for the pools the first round will scan; the cache only
  // ever holds distinct pairs, so cap at the full pair count.
  const size_t expected_pairs =
      std::min(n * (n - 1) / 2, n * size_t{64});
  ShardedPairDistanceCache distances(dataset, options.distance, context, tel,
                                     expected_pairs);
  // Filter-and-refine scaffolding (EDR cascade only — see DESIGN.md
  // "Distance engine: filter-and-refine"). MBR centers go into a uniform
  // grid sized to the maximum matching reach: two trajectories whose
  // centers are farther apart than the sum of their MBR half-diagonals
  // plus hypot(dx, dy) cannot contain a matching point pair, so their
  // normalized EDR is exactly 1.0 — assigned without any per-pair work.
  // K_global caps how many nearest neighbours any cluster can ever take
  // (cluster.k is the max member k), so the (K_global - 1) smallest exact
  // distances of a scan bound everything a pivot can still accept.
  const bool cascade = distances.cascade_active();
  telemetry::Counter* prefiltered_counter =
      tel != nullptr
          ? tel->metrics().GetCounter("distance.candidates.prefiltered")
          : nullptr;
  size_t top_needed = 0;
  double reach_pad = 0.0;
  double max_half_diag = 0.0;
  std::vector<double> center_x;
  std::vector<double> center_y;
  std::vector<double> half_diag;
  std::optional<GridIndex> grid;
  if (cascade) {
    int k_global = 2;
    for (const Trajectory& t : dataset.trajectories()) {
      k_global = std::max(k_global, t.requirement().k);
    }
    top_needed = static_cast<size_t>(k_global - 1);
    reach_pad = std::hypot(options.distance.tolerance.dx,
                           options.distance.tolerance.dy);
    center_x.resize(n);
    center_y.resize(n);
    half_diag.resize(n);
    for (size_t i = 0; i < n; ++i) {
      const BoundingBox bounds = dataset[i].Bounds();
      if (bounds.empty()) {
        center_x[i] = center_y[i] = half_diag[i] = 0.0;
      } else {
        center_x[i] = 0.5 * (bounds.min_x() + bounds.max_x());
        center_y[i] = 0.5 * (bounds.min_y() + bounds.max_y());
        half_diag[i] = bounds.HalfDiagonal();
      }
      max_half_diag = std::max(max_half_diag, half_diag[i]);
    }
    grid.emplace(std::max(max_half_diag + reach_pad, 1.0));
    grid->AttachTelemetry(tel);
    for (size_t i = 0; i < n; ++i) {
      grid->Insert(i, center_x[i], center_y[i]);
    }
  }
  // Scratch reused across pivot scans (cascade path).
  std::vector<size_t> reach;
  std::vector<char> in_reach;
  std::vector<size_t> near_candidates;
  std::vector<ShardedPairDistanceCache::ProbeResult> probe_results;
  struct RefineEntry {
    double bound;
    size_t index;
    ShardedPairDistanceCache::BoundRung rung;
  };
  std::vector<RefineEntry> refine;
  TopKThreshold threshold;
  // Pure distance evaluations fan out over the pool; every ordering and
  // tie-breaking decision below stays on this thread, so the outcome is
  // identical for any thread count (see DESIGN.md "Parallel execution").
  // Budget charges happen inside the cache; trips are observed at the same
  // per-cluster-attempt checks as the serial path, never mid-batch.
  parallel::ParallelOptions par;
  par.threads = options.threads;
  par.grain = 1;  // one EDR evaluation is orders of magnitude above overhead
  par.telemetry = tel;
  Rng rng(options.seed);
  double radius_max = options.radius_max;

  ClusteringOutcome best;
  size_t best_trash = std::numeric_limits<size_t>::max();

  for (size_t round = 0; round < options.max_clustering_rounds; ++round) {
    WCOP_FAILPOINT("cluster.greedy_round");
    WCOP_TRACE_SPAN(tel, "cluster/greedy_round");
    telemetry::CounterAdd(rounds_counter);
    std::vector<bool> active(n, true);
    std::vector<bool> clustered(n, false);
    std::vector<size_t> active_list(n);
    for (size_t i = 0; i < n; ++i) {
      active_list[i] = i;
    }
    std::vector<AnonymityCluster> clusters;

    // Set when the run context trips mid-round and allow_partial_results
    // turns the trip into degradation: no further clusters are formed and
    // every unclustered trajectory is suppressed.
    bool degraded = false;
    std::string degraded_reason;

    // --- Phase 1: pivot selection and cluster growth (lines 3-19). ---
    std::vector<size_t> chosen_pivots;
    std::vector<double> scratch_values;
    while (!active_list.empty()) {
      // Cooperative yield point: one check per cluster attempt.
      if (Status s = CheckRunContext(context); !s.ok()) {
        if (!options.allow_partial_results) {
          return s;
        }
        degraded = true;
        degraded_reason = s.ToString();
        break;
      }
      // Pivot selection: random (Algorithm 3) or farthest-first (the W4M
      // heuristic, exposed as an ablation).
      size_t pivot;
      if (options.pivot_policy == WcopOptions::PivotPolicy::kFarthestFirst &&
          !chosen_pivots.empty()) {
        // Batch the candidate scores (pure, exact distances); the argmax
        // with its first-wins tie-break runs serially below.
        scratch_values.assign(active_list.size(), 0.0);
        WCOP_TRACE_SPAN(tel, "cluster/farthest_scan");
        Status batch = parallel::ParallelFor(
            active_list.size(),
            [&](size_t t) {
              double nearest_pivot = std::numeric_limits<double>::infinity();
              for (size_t p : chosen_pivots) {
                nearest_pivot =
                    std::min(nearest_pivot, distances.Get(p, active_list[t]));
              }
              scratch_values[t] = nearest_pivot;
            },
            par);
        if (!batch.ok()) {
          return batch;
        }
        pivot = active_list[0];
        double best_score = -1.0;
        for (size_t t = 0; t < active_list.size(); ++t) {
          if (scratch_values[t] > best_score) {
            best_score = scratch_values[t];
            pivot = active_list[t];
          }
        }
      } else {
        pivot = active_list[rng.UniformIndex(active_list.size())];
      }
      chosen_pivots.push_back(pivot);
      WCOP_TRACE_SPAN(tel, "cluster/grow");
      telemetry::CounterAdd(attempts);

      AnonymityCluster cluster;
      cluster.pivot = pivot;
      cluster.members.push_back(pivot);
      cluster.k = dataset[pivot].requirement().k;
      cluster.delta = dataset[pivot].requirement().delta;

      // Distances from the pivot to every unclustered candidate, nearest
      // first (the pivot's NN pool of line 8 is D - Clustered). The batch
      // computes pure distances into per-candidate slots; candidates whose
      // length lower bound already exceeds radius_max keep the bound — they
      // sort after every in-radius candidate and can only appear in
      // clusters the radius test rejects anyway, so the accepted clusters
      // are exactly those of a full computation.
      std::vector<size_t> candidates;
      candidates.reserve(n);
      for (size_t cand = 0; cand < n; ++cand) {
        if (cand == pivot || clustered[cand]) {
          continue;
        }
        candidates.push_back(cand);
      }
      std::vector<std::pair<double, size_t>> pool;
      pool.reserve(candidates.size());
      if (!cascade) {
        scratch_values.assign(candidates.size(), 0.0);
        WCOP_TRACE_SPAN(tel, "cluster/pivot_scan");
        Status batch = parallel::ParallelFor(
            candidates.size(),
            [&](size_t t) {
              scratch_values[t] =
                  distances.GetWithCutoff(pivot, candidates[t], radius_max);
            },
            par);
        if (!batch.ok()) {
          return batch;
        }
        for (size_t t = 0; t < candidates.size(); ++t) {
          pool.emplace_back(scratch_values[t], candidates[t]);
        }
      } else {
        WCOP_TRACE_SPAN(tel, "cluster/pivot_scan");
        threshold.Reset(top_needed);
        // Grid pre-filter: every candidate the reach query cannot return
        // is certified unmatchable with the pivot — its normalized EDR is
        // exactly 1.0 (all-substitution alignment), entered into the pool
        // as that exact distance with zero per-pair work.
        reach.clear();
        grid->CandidateQuery(center_x[pivot], center_y[pivot],
                             half_diag[pivot] + max_half_diag + reach_pad,
                             &reach);
        in_reach.assign(n, 0);
        for (size_t c : reach) {
          in_reach[c] = 1;
        }
        near_candidates.clear();
        uint64_t prefiltered = 0;
        for (size_t cand : candidates) {
          if (in_reach[cand]) {
            near_candidates.push_back(cand);
            continue;
          }
          pool.emplace_back(options.distance.edr_scale, cand);
          threshold.Push(options.distance.edr_scale);
          ++prefiltered;
        }
        if (prefiltered > 0) {
          telemetry::CounterAdd(prefiltered_counter, prefiltered);
        }
        // Cheap bound probes (cache / length / separation / envelope) fan
        // out in parallel; classification and every ordering decision stay
        // on this thread.
        probe_results.assign(near_candidates.size(),
                             ShardedPairDistanceCache::ProbeResult{});
        Status batch = parallel::ParallelFor(
            near_candidates.size(),
            [&](size_t t) {
              probe_results[t] = distances.CheapProbe(pivot,
                                                      near_candidates[t]);
            },
            par);
        if (!batch.ok()) {
          return batch;
        }
        refine.clear();
        for (size_t t = 0; t < near_candidates.size(); ++t) {
          const auto& probe = probe_results[t];
          if (probe.exact) {
            pool.emplace_back(probe.value, near_candidates[t]);
            threshold.Push(probe.value);
          } else {
            refine.push_back(
                RefineEntry{probe.value, near_candidates[t], probe.rung});
          }
        }
        std::sort(refine.begin(), refine.end(),
                  [](const RefineEntry& a, const RefineEntry& b) {
                    return a.bound != b.bound ? a.bound < b.bound
                                              : a.index < b.index;
                  });
        // Cheapest-first refinement in growing block-synchronous batches:
        // the cutoff (best-so-far top-K threshold, capped by radius_max) is
        // frozen per block and tightened only between blocks, so the set of
        // pairs that reach the DP — and every counter event — is identical
        // for every thread count. A candidate pruned here has top_needed
        // exactly-known candidates strictly ahead of it (or is outside the
        // acceptance radius), so the exact distance could not have changed
        // any decision; its certified bound enters the pool instead.
        size_t pos = 0;
        size_t block = 32;
        while (pos < refine.size()) {
          const double cutoff =
              threshold.Full() ? std::min(radius_max, threshold.Top())
                               : radius_max;
          if (refine[pos].bound > cutoff) {
            for (size_t t = pos; t < refine.size(); ++t) {
              pool.emplace_back(refine[t].bound, refine[t].index);
              distances.CountBoundPrune(refine[t].rung);
            }
            break;
          }
          const size_t end = std::min(pos + block, refine.size());
          size_t split = end;
          while (split > pos && refine[split - 1].bound > cutoff) {
            --split;
          }
          scratch_values.assign(split - pos, 0.0);
          batch = parallel::ParallelFor(
              split - pos,
              [&](size_t t) {
                scratch_values[t] = distances.GetWithCutoff(
                    pivot, refine[pos + t].index, cutoff);
              },
              par);
          if (!batch.ok()) {
            return batch;
          }
          for (size_t t = 0; t < split - pos; ++t) {
            pool.emplace_back(scratch_values[t], refine[pos + t].index);
            if (scratch_values[t] <= cutoff) {
              threshold.Push(scratch_values[t]);
            }
          }
          pos = split;
          block = std::min(block * 2, size_t{1024});
        }
      }
      std::sort(pool.begin(), pool.end());
      if (context != nullptr) {
        context->ChargeCandidatePairs(pool.size());
      }

      size_t next_candidate = 0;
      bool grown = true;
      while (static_cast<size_t>(cluster.k) > cluster.members.size()) {
        if (next_candidate >= pool.size()) {
          grown = false;  // not enough unclustered trajectories remain
          break;
        }
        const size_t nn = pool[next_candidate].second;
        ++next_candidate;
        cluster.members.push_back(nn);
        cluster.k = std::max(cluster.k, dataset[nn].requirement().k);
        cluster.delta = std::min(cluster.delta, dataset[nn].requirement().delta);
      }

      // Acceptance test (line 13): pivot-to-member radius within bounds.
      // A cutoff lookup suffices — a lower bound only comes back when it
      // exceeds radius_max, in which case the true radius does too.
      double radius = 0.0;
      for (size_t m : cluster.members) {
        radius = std::max(radius,
                          distances.GetWithCutoff(pivot, m, radius_max));
      }
      if (grown && radius <= radius_max) {
        telemetry::CounterAdd(accepted);
        if (cluster_size != nullptr) {
          cluster_size->Record(cluster.members.size());
        }
        for (size_t m : cluster.members) {
          clustered[m] = true;
          active[m] = false;
        }
        clusters.push_back(std::move(cluster));
        // Compact the active list.
        active_list.erase(
            std::remove_if(active_list.begin(), active_list.end(),
                           [&](size_t idx) { return !active[idx]; }),
            active_list.end());
      } else {
        // Reject: only the pivot leaves the active set (line 18).
        telemetry::CounterAdd(grown ? rejected_radius : rejected_exhausted);
        active[pivot] = false;
        active_list.erase(
            std::remove(active_list.begin(), active_list.end(), pivot),
            active_list.end());
      }
    }

    // --- Phase 2: leftover assignment (lines 20-26). ---
    std::vector<size_t> trash;
    std::vector<size_t> eligible;
    for (size_t idx = 0; idx < n; ++idx) {
      if (clustered[idx]) {
        continue;
      }
      if (!degraded) {
        if (Status s = CheckRunContext(context); !s.ok()) {
          if (!options.allow_partial_results) {
            return s;
          }
          degraded = true;
          degraded_reason = s.ToString();
        }
      }
      if (degraded) {
        // Degradation: leftovers are suppressed without spending further
        // distance computations.
        telemetry::CounterAdd(leftover_trashed);
        trash.push_back(idx);
        continue;
      }
      const Requirement& req = dataset[idx].requirement();
      // Eligibility (cheap, metadata-only) on the coordinator; the eligible
      // pivot distances are batched. The nearest-compatible selection keeps
      // the serial first-wins tie-break over the cluster order.
      eligible.clear();
      for (size_t c = 0; c < clusters.size(); ++c) {
        const AnonymityCluster& cluster = clusters[c];
        // Eligibility: the cluster (including tau itself) satisfies tau's k,
        // and tau's delta tolerance is no stricter than the cluster's delta.
        if (cluster.members.size() + 1 < static_cast<size_t>(req.k)) {
          continue;
        }
        if (cluster.delta > req.delta) {
          continue;
        }
        eligible.push_back(c);
      }
      double best_dist = std::numeric_limits<double>::infinity();
      AnonymityCluster* best_cluster = nullptr;
      if (!cascade) {
        scratch_values.assign(eligible.size(), 0.0);
        Status batch = parallel::ParallelFor(
            eligible.size(),
            [&](size_t t) {
              scratch_values[t] = distances.GetWithCutoff(
                  clusters[eligible[t]].pivot, idx, radius_max);
            },
            par);
        if (!batch.ok()) {
          return batch;
        }
        for (size_t t = 0; t < eligible.size(); ++t) {
          const double d = scratch_values[t];
          if (d <= radius_max && d < best_dist) {
            best_dist = d;
            best_cluster = &clusters[eligible[t]];
          }
        }
      } else {
        // Serial best-so-far scan in cluster order: the running best
        // tightens the cutoff, and a probe bound above it certifies the
        // cluster cannot win (the selection takes strictly smaller
        // distances, so ties keep the first cluster exactly as the
        // exhaustive scan does).
        for (size_t c : eligible) {
          const double cutoff = std::min(radius_max, best_dist);
          const auto probe = distances.CheapProbe(clusters[c].pivot, idx);
          double d;
          if (probe.exact) {
            d = probe.value;
          } else if (probe.value > cutoff) {
            distances.CountBoundPrune(probe.rung);
            continue;
          } else {
            d = distances.GetWithCutoff(clusters[c].pivot, idx, cutoff);
          }
          if (d <= radius_max && d < best_dist) {
            best_dist = d;
            best_cluster = &clusters[c];
          }
        }
      }
      if (best_cluster != nullptr) {
        telemetry::CounterAdd(leftover_assigned);
        best_cluster->members.push_back(idx);
        best_cluster->k = std::max(best_cluster->k, req.k);
      } else {
        telemetry::CounterAdd(leftover_trashed);
        trash.push_back(idx);
      }
    }

    if (degraded) {
      // The trip ends the run here: later rounds would only spend more of
      // the exhausted budget. The clusters formed so far are complete
      // anonymity sets; everything else is trash (possibly > trash_max).
      ClusteringOutcome out;
      out.clusters = std::move(clusters);
      out.trash = std::move(trash);
      out.rounds = round + 1;
      out.final_radius = radius_max;
      out.degraded = true;
      out.degraded_reason = std::move(degraded_reason);
      return out;
    }

    if (trash.size() < best_trash) {
      best_trash = trash.size();
      best.clusters = clusters;
      best.trash = trash;
      best.rounds = round + 1;
      best.final_radius = radius_max;
    }
    if (trash.size() <= trash_max) {
      ClusteringOutcome out;
      out.clusters = std::move(clusters);
      out.trash = std::move(trash);
      out.rounds = round + 1;
      out.final_radius = radius_max;
      return out;
    }
    radius_max *= options.radius_growth;  // line 27: increase(radius_max)
  }

  return Status::Unsatisfiable(
      "clustering could not meet trash_max=" + std::to_string(trash_max) +
      " within " + std::to_string(options.max_clustering_rounds) +
      " radius relaxations (best trash: " + std::to_string(best_trash) + ")");
}

}  // namespace wcop
