#include "attack/audit.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "pipeline/manifest.h"

namespace wcop {
namespace attack {

namespace {

/// Folds one per-window re-identification result into the running
/// aggregate (rates are re-derived from victim-weighted sums at the end).
struct ReidentAccumulator {
  ReidentResult total;
  double top1_sum = 0.0;
  double top5_sum = 0.0;
  double rank_sum = 0.0;
  double reciprocal_sum = 0.0;

  void Fold(const ReidentResult& r) {
    const double n = static_cast<double>(r.victims_attacked);
    total.victims_attacked += r.victims_attacked;
    total.victims_suppressed += r.victims_suppressed;
    total.candidates_total += r.candidates_total;
    total.candidates_scored += r.candidates_scored;
    total.candidates_pruned += r.candidates_pruned;
    top1_sum += r.top1_success * n;
    top5_sum += r.top5_success * n;
    rank_sum += r.mean_true_rank * n;
    reciprocal_sum += r.mean_reciprocal_rank * n;
  }

  ReidentResult Finish() {
    if (total.victims_attacked > 0) {
      const double n = static_cast<double>(total.victims_attacked);
      total.top1_success = top1_sum / n;
      total.top5_success = top5_sum / n;
      total.mean_true_rank = rank_sum / n;
      total.mean_reciprocal_rank = reciprocal_sum / n;
    }
    return total;
  }
};

Result<DistortionSummary> ReadDistortion(const std::string& windows_dir,
                                         size_t windows) {
  DistortionSummary summary;
  for (size_t w = 0; w < windows; ++w) {
    char name[64];
    std::snprintf(name, sizeof(name), "/window_%05llu.mfr",
                  static_cast<unsigned long long>(w));
    Result<pipeline::WindowManifest> manifest =
        pipeline::ReadWindowManifest(windows_dir + name);
    if (!manifest.ok()) {
      if (manifest.status().code() == StatusCode::kNotFound) {
        continue;  // store published, manifest pruned: skip the window
      }
      return manifest.status();
    }
    ++summary.windows;
    summary.input_fragments += manifest->input_fragments;
    summary.published_fragments += manifest->published_fragments;
    summary.suppressed_fragments += manifest->suppressed_delta;
    summary.clusters += manifest->clusters;
    summary.ttd += manifest->ttd;
    if (manifest->degraded) {
      ++summary.degraded_windows;
    }
    if (manifest->skipped) {
      ++summary.skipped_windows;
    }
  }
  return summary;
}

void AppendDouble(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  os << buf;
}

void AppendReident(std::ostringstream& os, const ReidentResult& r) {
  os << "{\"victims_attacked\":" << r.victims_attacked
     << ",\"victims_suppressed\":" << r.victims_suppressed
     << ",\"top1_success\":";
  AppendDouble(os, r.top1_success);
  os << ",\"top5_success\":";
  AppendDouble(os, r.top5_success);
  os << ",\"mean_true_rank\":";
  AppendDouble(os, r.mean_true_rank);
  os << ",\"mean_reciprocal_rank\":";
  AppendDouble(os, r.mean_reciprocal_rank);
  os << ",\"candidates_total\":" << r.candidates_total
     << ",\"candidates_scored\":" << r.candidates_scored
     << ",\"candidates_pruned\":" << r.candidates_pruned << "}";
}

void AppendLinkage(std::ostringstream& os, const LinkageResult& r) {
  os << "{\"windows\":" << r.windows << ",\"boundaries\":" << r.boundaries
     << ",\"fragments\":" << r.fragments
     << ",\"pairs_gated\":" << r.pairs_gated
     << ",\"joins_attempted\":" << r.joins_attempted
     << ",\"joins_correct\":" << r.joins_correct << ",\"linkage_rate\":";
  AppendDouble(os, r.linkage_rate);
  os << ",\"users_total\":" << r.users_total
     << ",\"users_tracked\":" << r.users_tracked
     << ",\"trackable_fraction\":";
  AppendDouble(os, r.trackable_fraction);
  os << "}";
}

void AppendEffectiveK(std::ostringstream& os, const EffectiveKResult& r) {
  os << "{\"users_measured\":" << r.users_measured
     << ",\"mean_effective_k\":";
  AppendDouble(os, r.mean_effective_k);
  os << ",\"violation_fraction\":";
  AppendDouble(os, r.violation_fraction);
  os << ",\"policies\":[";
  for (size_t i = 0; i < r.policies.size(); ++i) {
    const PolicyEffectiveK& p = r.policies[i];
    if (i != 0) {
      os << ",";
    }
    os << "{\"k\":" << p.k << ",\"delta\":";
    AppendDouble(os, p.delta);
    os << ",\"users\":" << p.users << ",\"violations\":" << p.violations
       << ",\"mean\":";
    AppendDouble(os, p.mean);
    os << ",\"p5\":";
    AppendDouble(os, p.p5);
    os << ",\"p25\":";
    AppendDouble(os, p.p25);
    os << ",\"p50\":";
    AppendDouble(os, p.p50);
    os << "}";
  }
  os << "]}";
}

void AppendDistortion(std::ostringstream& os, const DistortionSummary& d) {
  os << "{\"windows\":" << d.windows
     << ",\"degraded_windows\":" << d.degraded_windows
     << ",\"skipped_windows\":" << d.skipped_windows
     << ",\"input_fragments\":" << d.input_fragments
     << ",\"published_fragments\":" << d.published_fragments
     << ",\"suppressed_fragments\":" << d.suppressed_fragments
     << ",\"clusters\":" << d.clusters << ",\"ttd\":";
  AppendDouble(os, d.ttd);
  os << "}";
}

}  // namespace

Result<AuditReport> RunAudit(const AuditOptions& options) {
  if (options.published_store.empty() && options.windows_dir.empty()) {
    return Status::InvalidArgument(
        "audit needs a published store or a windows directory");
  }
  if (!options.published_store.empty() && !options.windows_dir.empty()) {
    return Status::InvalidArgument(
        "audit takes either a published store or a windows directory, "
        "not both");
  }
  WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  WCOP_TRACE_SPAN(options.telemetry, "attack/audit");

  AuditReport report;
  report.adversary = options.adversary;

  auto phase_progress = [&options](const char* phase) {
    return [&options, phase](size_t done, size_t total) {
      if (options.progress) {
        options.progress(phase, done, total);
      }
    };
  };

  ReidentOptions reident_options;
  reident_options.adversary = options.adversary;
  reident_options.num_victims = options.victims;
  reident_options.threads = options.threads;
  reident_options.run_context = options.run_context;
  reident_options.telemetry = options.telemetry;

  EffectiveKOptions effective_options;
  effective_options.adversary = options.adversary;
  effective_options.samples = options.effective_k_samples;
  effective_options.num_users = options.victims;
  effective_options.threads = options.threads;
  effective_options.run_context = options.run_context;
  effective_options.telemetry = options.telemetry;
  effective_options.progress = phase_progress("effective_k");

  std::unique_ptr<StoreCandidateSource> original;
  if (!options.original_store.empty()) {
    WCOP_ASSIGN_OR_RETURN(
        StoreCandidateSource source,
        StoreCandidateSource::Open(options.original_store,
                                   StoreCandidateSource::TruthKey::kId,
                                   options.run_context));
    original =
        std::make_unique<StoreCandidateSource>(std::move(source));
  }

  if (!options.published_store.empty()) {
    // Single release: one published store, keys are trajectory ids.
    WCOP_ASSIGN_OR_RETURN(
        StoreCandidateSource published,
        StoreCandidateSource::Open(options.published_store,
                                   StoreCandidateSource::TruthKey::kId,
                                   options.run_context));
    if (original != nullptr) {
      reident_options.progress = phase_progress("reident");
      WCOP_ASSIGN_OR_RETURN(
          report.reident,
          RunReidentAttack(*original, published, reident_options));
      report.has_reident = true;
    }
    WCOP_ASSIGN_OR_RETURN(report.effective_k,
                          MeasureEffectiveK(published, effective_options));
    report.has_effective_k = true;
    return report;
  }

  // Continuous mode: audit each window, join consecutive releases.
  WCOP_ASSIGN_OR_RETURN(std::vector<std::string> windows,
                        ListWindowStores(options.windows_dir));

  LinkageOptions linkage_options = options.linkage;
  linkage_options.threads = options.threads;
  linkage_options.run_context = options.run_context;
  linkage_options.telemetry = options.telemetry;
  linkage_options.progress = phase_progress("linkage");
  WCOP_ASSIGN_OR_RETURN(report.linkage,
                        RunLinkageAttack(windows, linkage_options));
  report.has_linkage = true;

  ReidentAccumulator reident_accumulator;
  EffectiveKSamples pooled;
  for (size_t w = 0; w < windows.size(); ++w) {
    WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
    WCOP_ASSIGN_OR_RETURN(
        StoreCandidateSource published,
        StoreCandidateSource::Open(
            windows[w], StoreCandidateSource::TruthKey::kParentId,
            options.run_context));
    if (published.size() == 0) {
      continue;  // fully suppressed window
    }
    if (original != nullptr) {
      reident_options.progress = phase_progress("reident");
      WCOP_ASSIGN_OR_RETURN(
          ReidentResult r,
          RunReidentAttack(*original, published, reident_options));
      reident_accumulator.Fold(r);
      report.has_reident = true;
    }
    WCOP_ASSIGN_OR_RETURN(
        EffectiveKSamples samples,
        MeasureEffectiveKSamples(published, effective_options));
    pooled.samples.insert(pooled.samples.end(), samples.samples.begin(),
                          samples.samples.end());
  }
  if (report.has_reident) {
    report.reident = reident_accumulator.Finish();
  }
  report.effective_k = SummarizeEffectiveK(pooled, options.telemetry);
  report.has_effective_k = true;

  WCOP_ASSIGN_OR_RETURN(
      report.distortion,
      ReadDistortion(options.windows_dir, windows.size()));
  report.has_distortion = report.distortion.windows > 0;
  return report;
}

std::string AuditReportToJson(const AuditReport& report) {
  std::ostringstream os;
  const AdversaryModel& a = report.adversary;
  os << "{\"adversary\":{\"observations\":" << a.observations
     << ",\"noise\":";
  AppendDouble(os, a.noise);
  os << ",\"pmc_delta\":";
  AppendDouble(os, a.pmc_delta);
  os << ",\"tau_seconds\":";
  AppendDouble(os, a.tau_seconds);
  os << ",\"epsilon\":";
  AppendDouble(os, a.epsilon);
  os << ",\"seed\":" << a.seed << "}";

  os << ",\"reident\":";
  if (report.has_reident) {
    AppendReident(os, report.reident);
  } else {
    os << "null";
  }
  os << ",\"linkage\":";
  if (report.has_linkage) {
    AppendLinkage(os, report.linkage);
  } else {
    os << "null";
  }
  os << ",\"effective_k\":";
  if (report.has_effective_k) {
    AppendEffectiveK(os, report.effective_k);
  } else {
    os << "null";
  }
  os << ",\"distortion\":";
  if (report.has_distortion) {
    AppendDistortion(os, report.distortion);
  } else {
    os << "null";
  }
  os << "}";
  return os.str();
}

}  // namespace attack
}  // namespace wcop
