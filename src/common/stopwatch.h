#ifndef WCOP_COMMON_STOPWATCH_H_
#define WCOP_COMMON_STOPWATCH_H_

#include <chrono>

namespace wcop {

/// Wall-clock stopwatch used by the benchmark harness to report algorithm
/// runtimes (the "runtime (seconds)" row of Table 3).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wcop

#endif  // WCOP_COMMON_STOPWATCH_H_
