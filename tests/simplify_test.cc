#include <gtest/gtest.h>

#include "test_util.h"
#include "traj/simplify.h"

namespace wcop {
namespace {

using testing_util::MakeLine;
using testing_util::SmallSynthetic;

TEST(SimplifyTest, StraightLineCollapsesToEndpoints) {
  const Trajectory t = MakeLine(1, 0, 0, 10, 0, 50);
  const Trajectory s = SimplifyDouglasPeucker(t, 1.0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.front(), t.front());
  EXPECT_EQ(s.back(), t.back());
}

TEST(SimplifyTest, CornerSurvives) {
  // An L-shape: the corner point deviates far from the endpoint chord.
  std::vector<Point> points;
  for (int i = 0; i <= 10; ++i) {
    points.emplace_back(i * 10.0, 0.0, i);
  }
  for (int i = 1; i <= 10; ++i) {
    points.emplace_back(100.0, i * 10.0, 10 + i);
  }
  const Trajectory t(1, points);
  const Trajectory s = SimplifyDouglasPeucker(t, 5.0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s[1].x, 100.0);
  EXPECT_DOUBLE_EQ(s[1].y, 0.0);
}

TEST(SimplifyTest, ErrorBoundHolds) {
  const Dataset d = SmallSynthetic(10, 80);
  for (double epsilon : {5.0, 25.0, 100.0}) {
    for (const Trajectory& t : d.trajectories()) {
      const Trajectory s = SimplifyDouglasPeucker(t, epsilon);
      EXPECT_LE(MaxSimplificationError(t, s), epsilon + 1e-6)
          << "epsilon=" << epsilon;
      EXPECT_GE(s.size(), 2u);
      EXPECT_TRUE(s.Validate().ok());
      EXPECT_EQ(s.front(), t.front());
      EXPECT_EQ(s.back(), t.back());
    }
  }
}

TEST(SimplifyTest, LargerEpsilonKeepsFewerPoints) {
  const Dataset d = SmallSynthetic(5, 80);
  for (const Trajectory& t : d.trajectories()) {
    const size_t fine = SimplifyDouglasPeucker(t, 2.0).size();
    const size_t coarse = SimplifyDouglasPeucker(t, 200.0).size();
    EXPECT_LE(coarse, fine);
  }
}

TEST(SimplifyTest, NonPositiveEpsilonIsIdentity) {
  const Trajectory t = MakeLine(1, 0, 0, 1, 1, 10);
  EXPECT_EQ(SimplifyDouglasPeucker(t, 0.0).size(), 10u);
  EXPECT_EQ(SimplifyDouglasPeucker(t, -5.0).size(), 10u);
}

TEST(SimplifyTest, TinyTrajectoriesUntouched) {
  const Trajectory two = MakeLine(1, 0, 0, 1, 0, 2);
  EXPECT_EQ(SimplifyDouglasPeucker(two, 100.0).size(), 2u);
  const Trajectory one(1, {Point(5, 5, 0)});
  EXPECT_EQ(SimplifyDouglasPeucker(one, 100.0).size(), 1u);
}

TEST(SimplifyTest, MetadataPreserved) {
  Trajectory t = MakeLine(7, 0, 0, 10, 0, 30);
  t.set_object_id(3);
  t.set_requirement(Requirement{5, 120.0});
  const Trajectory s = SimplifyDouglasPeucker(t, 1.0);
  EXPECT_EQ(s.id(), 7);
  EXPECT_EQ(s.object_id(), 3);
  EXPECT_EQ(s.requirement().k, 5);
}

TEST(SimplifyTest, DatasetVariant) {
  const Dataset d = SmallSynthetic(8, 60);
  const Dataset s = SimplifyDataset(d, 50.0);
  ASSERT_EQ(s.size(), d.size());
  EXPECT_LE(s.TotalPoints(), d.TotalPoints());
  EXPECT_TRUE(s.Validate().ok());
}

}  // namespace
}  // namespace wcop
