#include "anon/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "anon/streaming.h"
#include "anon/wcop_b.h"
#include "common/failpoint.h"
#include "common/snapshot.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

// Compact deterministic dataset: three groups of three co-travelling lines,
// all inside [0, 290] s, so a 100 s window yields exactly three windows and
// every fragment is clusterable under k=2, delta=300.
Dataset CompactDataset() {
  std::vector<Trajectory> trajectories;
  int64_t id = 0;
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 3; ++i) {
      Trajectory t = MakeLineWithReq(id, 2000.0 * g, 30.0 * i, 5.0, 0.0,
                                     /*n=*/30, /*k=*/2, /*delta=*/300.0,
                                     /*dt=*/10.0);
      t.set_object_id(id);
      trajectories.push_back(std::move(t));
      ++id;
    }
  }
  return Dataset(std::move(trajectories));
}

void ExpectTrajectoriesIdentical(const Trajectory& a, const Trajectory& b) {
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.object_id(), b.object_id());
  EXPECT_EQ(a.parent_id(), b.parent_id());
  EXPECT_EQ(a.requirement().k, b.requirement().k);
  EXPECT_EQ(a.requirement().delta, b.requirement().delta);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Bitwise double equality: resume must be exact, not approximate.
    EXPECT_EQ(a.points()[i].x, b.points()[i].x) << i;
    EXPECT_EQ(a.points()[i].y, b.points()[i].y) << i;
    EXPECT_EQ(a.points()[i].t, b.points()[i].t) << i;
  }
}

void ExpectDatasetsIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectTrajectoriesIdentical(a[i], b[i]);
  }
}

uint64_t CounterValue(const telemetry::MetricsSnapshot& metrics,
                      const std::string& name) {
  for (const auto& [counter_name, value] : metrics.counters) {
    if (counter_name == name) {
      return value;
    }
  }
  return 0;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("checkpoint_test_" + std::string(::testing::UnitTest::GetInstance()
                                                 ->current_test_info()
                                                 ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Codec round-trips.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, StreamingCheckpointRoundTrips) {
  StreamingCheckpoint original;
  original.fingerprint = 0xdeadbeefcafef00dULL;
  original.windows_done = 7;
  original.next_fragment_id = 42;
  original.suppressed_fragments = 3;
  original.total_clusters = 11;
  original.total_ttd = 0.1 + 0.2;  // not exactly 0.3 — must survive verbatim
  original.degraded = true;
  original.degraded_reason = "deadline exceeded: newline \n and spaces ok";
  StreamingWindowSummary w;
  w.window_start = 1.0 / 3.0;
  w.input_fragments = 5;
  w.published_fragments = 4;
  w.clusters = 2;
  w.ttd = 123.456789012345678;
  w.skipped = false;
  original.windows.push_back(w);
  w.skipped = true;
  original.windows.push_back(w);
  Trajectory t = MakeLineWithReq(9, 0.125, -3.5, 0.1, 0.2, 4, 3, 250.0);
  t.set_object_id(2);
  t.set_parent_id(77);
  original.published.push_back(t);
  original.counters = {{"streaming.windows", 7}, {"odd name with spaces", 1}};

  Result<StreamingCheckpoint> decoded =
      DecodeStreamingCheckpoint(EncodeStreamingCheckpoint(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->fingerprint, original.fingerprint);
  EXPECT_EQ(decoded->windows_done, original.windows_done);
  EXPECT_EQ(decoded->next_fragment_id, original.next_fragment_id);
  EXPECT_EQ(decoded->suppressed_fragments, original.suppressed_fragments);
  EXPECT_EQ(decoded->total_clusters, original.total_clusters);
  EXPECT_EQ(decoded->total_ttd, original.total_ttd);
  EXPECT_EQ(decoded->degraded, original.degraded);
  EXPECT_EQ(decoded->degraded_reason, original.degraded_reason);
  ASSERT_EQ(decoded->windows.size(), 2u);
  EXPECT_EQ(decoded->windows[0].window_start, original.windows[0].window_start);
  EXPECT_EQ(decoded->windows[0].ttd, original.windows[0].ttd);
  EXPECT_FALSE(decoded->windows[0].skipped);
  EXPECT_TRUE(decoded->windows[1].skipped);
  ASSERT_EQ(decoded->published.size(), 1u);
  ExpectTrajectoriesIdentical(decoded->published[0], t);
  EXPECT_EQ(decoded->counters, original.counters);
}

TEST_F(CheckpointTest, WcopBCheckpointRoundTrips) {
  WcopBCheckpoint original;
  original.fingerprint = 123456789;
  original.next_edit_size = 6;
  original.terminal = true;
  original.bound_satisfied = false;
  original.final_edit_size = 5;
  WcopBRound round;
  round.edit_size = 5;
  round.ttd = 17.25;
  round.editing_distortion = 0.7;
  round.total_distortion = 17.95;
  round.num_clusters = 4;
  round.trashed = 1;
  original.rounds.push_back(round);
  Trajectory t = MakeLineWithReq(3, 1.0, 2.0, 0.5, -0.25, 3, 2, 100.0);
  original.anonymization.sanitized = Dataset({t});
  original.anonymization.trashed_ids = {8, -1};
  AnonymityCluster cluster;
  cluster.pivot = 0;
  cluster.k = 2;
  cluster.delta = 100.0;
  cluster.members = {0, 1, 2};
  original.anonymization.clusters.push_back(cluster);
  original.anonymization.report.ttd = 17.25;
  original.anonymization.report.omega = 3.5;
  original.anonymization.report.degraded = true;
  original.anonymization.report.degraded_reason = "budget";
  original.counters = {{"wcop_b.rounds", 5}};

  Result<WcopBCheckpoint> decoded =
      DecodeWcopBCheckpoint(EncodeWcopBCheckpoint(original));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->fingerprint, original.fingerprint);
  EXPECT_EQ(decoded->next_edit_size, original.next_edit_size);
  EXPECT_EQ(decoded->terminal, original.terminal);
  EXPECT_EQ(decoded->bound_satisfied, original.bound_satisfied);
  EXPECT_EQ(decoded->final_edit_size, original.final_edit_size);
  ASSERT_EQ(decoded->rounds.size(), 1u);
  EXPECT_EQ(decoded->rounds[0].edit_size, round.edit_size);
  EXPECT_EQ(decoded->rounds[0].ttd, round.ttd);
  EXPECT_EQ(decoded->rounds[0].total_distortion, round.total_distortion);
  ExpectDatasetsIdentical(decoded->anonymization.sanitized,
                          original.anonymization.sanitized);
  EXPECT_EQ(decoded->anonymization.trashed_ids,
            original.anonymization.trashed_ids);
  ASSERT_EQ(decoded->anonymization.clusters.size(), 1u);
  EXPECT_EQ(decoded->anonymization.clusters[0].members, cluster.members);
  EXPECT_EQ(decoded->anonymization.report.ttd, 17.25);
  EXPECT_EQ(decoded->anonymization.report.degraded_reason, "budget");
  EXPECT_EQ(decoded->counters, original.counters);
}

TEST_F(CheckpointTest, DecodeRejectsGarbageAsDataLoss) {
  Result<StreamingCheckpoint> streaming =
      DecodeStreamingCheckpoint("not a checkpoint at all");
  ASSERT_FALSE(streaming.ok());
  EXPECT_EQ(streaming.status().code(), StatusCode::kDataLoss);

  Result<WcopBCheckpoint> wcop_b = DecodeWcopBCheckpoint("");
  ASSERT_FALSE(wcop_b.ok());
  EXPECT_EQ(wcop_b.status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointTest, DecodeRejectsTruncationAsDataLoss) {
  StreamingCheckpoint checkpoint;
  checkpoint.windows.push_back(StreamingWindowSummary{});
  checkpoint.counters = {{"a", 1}};
  const std::string payload = EncodeStreamingCheckpoint(checkpoint);
  for (size_t cut : {payload.size() - 1, payload.size() / 2, size_t{5}}) {
    Result<StreamingCheckpoint> decoded =
        DecodeStreamingCheckpoint(payload.substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST_F(CheckpointTest, DecodeRejectsUnknownVersionAsFailedPrecondition) {
  Result<StreamingCheckpoint> streaming =
      DecodeStreamingCheckpoint("wcop-streaming-checkpoint 999\n");
  ASSERT_FALSE(streaming.ok());
  EXPECT_EQ(streaming.status().code(), StatusCode::kFailedPrecondition);

  Result<WcopBCheckpoint> wcop_b =
      DecodeWcopBCheckpoint("wcop-b-checkpoint 999\n");
  ASSERT_FALSE(wcop_b.ok());
  EXPECT_EQ(wcop_b.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Fingerprints: any change to the data or the options that shape the run
// must change the fingerprint, so stale checkpoints are rejected.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, FingerprintsAreSensitive) {
  const Dataset d = CompactDataset();
  Dataset moved = d;
  moved[0].mutable_points()[0].x += 1e-9;

  EXPECT_NE(DatasetFingerprint(d), DatasetFingerprint(moved));

  StreamingOptions streaming;
  StreamingOptions wider = streaming;
  wider.window_seconds *= 2.0;
  EXPECT_EQ(StreamingConfigFingerprint(d, streaming),
            StreamingConfigFingerprint(d, streaming));
  EXPECT_NE(StreamingConfigFingerprint(d, streaming),
            StreamingConfigFingerprint(d, wider));
  EXPECT_NE(StreamingConfigFingerprint(d, streaming),
            StreamingConfigFingerprint(moved, streaming));

  WcopOptions wcop;
  WcopBOptions b;
  WcopBOptions bigger_step = b;
  bigger_step.step = b.step + 1;
  EXPECT_EQ(WcopBConfigFingerprint(d, wcop, b),
            WcopBConfigFingerprint(d, wcop, b));
  EXPECT_NE(WcopBConfigFingerprint(d, wcop, b),
            WcopBConfigFingerprint(d, wcop, bigger_step));
  // Streaming and WCOP-B fingerprints live in different domains.
  EXPECT_NE(StreamingConfigFingerprint(d, streaming),
            WcopBConfigFingerprint(d, wcop, b));
}

// ---------------------------------------------------------------------------
// Streaming interrupt/resume: a run killed right after its first checkpoint
// resumes to output identical to an uninterrupted run.
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, StreamingResumeMatchesUninterruptedRun) {
  const Dataset d = CompactDataset();
  StreamingOptions options;
  options.window_seconds = 100.0;

  Result<StreamingResult> baseline = RunStreamingWcop(d, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GT(baseline->windows.size(), 1u);

  options.checkpoint_path = Path("stream.ckpt");
  {
    // Fail the run right after the first checkpoint lands on disk — the
    // in-process analogue of a crash between windows.
    ScopedFailpoint fp("streaming.checkpoint_saved",
                       Status::Internal("simulated crash"), /*max_fires=*/1);
    Result<StreamingResult> interrupted = RunStreamingWcop(d, options);
    ASSERT_FALSE(interrupted.ok());
    EXPECT_EQ(interrupted.status().code(), StatusCode::kInternal);
  }
  ASSERT_TRUE(std::filesystem::exists(options.checkpoint_path));

  Result<StreamingResult> resumed = RunStreamingWcop(d, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->resumed_windows, 1u);
  ExpectDatasetsIdentical(resumed->sanitized, baseline->sanitized);
  ASSERT_EQ(resumed->windows.size(), baseline->windows.size());
  for (size_t i = 0; i < baseline->windows.size(); ++i) {
    EXPECT_EQ(resumed->windows[i].window_start,
              baseline->windows[i].window_start) << i;
    EXPECT_EQ(resumed->windows[i].published_fragments,
              baseline->windows[i].published_fragments) << i;
    EXPECT_EQ(resumed->windows[i].ttd, baseline->windows[i].ttd) << i;
  }
  EXPECT_EQ(resumed->total_clusters, baseline->total_clusters);
  EXPECT_EQ(resumed->total_ttd, baseline->total_ttd);
  EXPECT_EQ(resumed->suppressed_fragments, baseline->suppressed_fragments);
  EXPECT_FALSE(resumed->degraded);
}

TEST_F(CheckpointTest, StreamingRerunFromCompleteCheckpointSplicesEverything) {
  const Dataset d = CompactDataset();
  StreamingOptions options;
  options.window_seconds = 100.0;
  options.checkpoint_path = Path("stream.ckpt");

  Result<StreamingResult> first = RunStreamingWcop(d, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->resumed);

  Result<StreamingResult> rerun = RunStreamingWcop(d, options);
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_TRUE(rerun->resumed);
  EXPECT_EQ(rerun->resumed_windows, first->windows.size());
  ExpectDatasetsIdentical(rerun->sanitized, first->sanitized);
  EXPECT_EQ(rerun->total_ttd, first->total_ttd);
}

TEST_F(CheckpointTest, StreamingRejectsForeignCheckpoint) {
  const Dataset d = CompactDataset();
  StreamingOptions options;
  options.window_seconds = 100.0;
  options.checkpoint_path = Path("stream.ckpt");
  ASSERT_TRUE(RunStreamingWcop(d, options).ok());

  // Same checkpoint, different window partition: refuse, loudly.
  StreamingOptions different = options;
  different.window_seconds = 50.0;
  Result<StreamingResult> r = RunStreamingWcop(d, different);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition) << r.status();

  // Different dataset, same options: also refused.
  Result<StreamingResult> r2 = RunStreamingWcop(SmallSynthetic(10, 30),
                                                options);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointTest, StreamingDiscardsCorruptCheckpointPayload) {
  const Dataset d = CompactDataset();
  StreamingOptions options;
  options.window_seconds = 100.0;
  options.checkpoint_path = Path("stream.ckpt");

  Result<StreamingResult> baseline = RunStreamingWcop(d, options);
  ASSERT_TRUE(baseline.ok());
  std::filesystem::remove(options.checkpoint_path);
  std::filesystem::remove(options.checkpoint_path + ".prev");

  // Valid snapshot envelopes whose payloads are not checkpoints (both depth
  // levels, so the fallback cannot save us): the driver must recompute from
  // scratch instead of trusting them.
  ASSERT_TRUE(WriteSnapshotRotating(options.checkpoint_path, "garbage",
                                    kStreamingCheckpointVersion).ok());
  ASSERT_TRUE(WriteSnapshotRotating(options.checkpoint_path, "more garbage",
                                    kStreamingCheckpointVersion).ok());

  Result<StreamingResult> fresh = RunStreamingWcop(d, options);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_FALSE(fresh->resumed);
  ExpectDatasetsIdentical(fresh->sanitized, baseline->sanitized);
}

TEST_F(CheckpointTest, StreamingResumeSplicesTelemetryCounters) {
  const Dataset d = CompactDataset();
  StreamingOptions options;
  options.window_seconds = 100.0;

  telemetry::Telemetry baseline_tel;
  options.wcop.telemetry = &baseline_tel;
  Result<StreamingResult> baseline = RunStreamingWcop(d, options);
  ASSERT_TRUE(baseline.ok());
  const uint64_t baseline_windows =
      CounterValue(baseline->metrics, "streaming.windows");
  ASSERT_GT(baseline_windows, 1u);

  options.checkpoint_path = Path("stream.ckpt");
  telemetry::Telemetry crashed_tel;
  options.wcop.telemetry = &crashed_tel;
  {
    ScopedFailpoint fp("streaming.checkpoint_saved",
                       Status::Internal("simulated crash"), /*max_fires=*/1);
    ASSERT_FALSE(RunStreamingWcop(d, options).ok());
  }

  // The resumed process gets a fresh sink (as a real restart would); the
  // spliced counters must cover the whole logical stream, not this process.
  telemetry::Telemetry resumed_tel;
  options.wcop.telemetry = &resumed_tel;
  Result<StreamingResult> resumed = RunStreamingWcop(d, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(CounterValue(resumed->metrics, "streaming.windows"),
            baseline_windows);
  EXPECT_EQ(CounterValue(resumed->metrics, "checkpoint.resumes"), 1u);
}

// A stream-level context trip is process-local: the checkpoint written on
// the way out must NOT be marked degraded, so the restarted run (fresh
// context) finishes clean and identical to an uninterrupted one.
TEST_F(CheckpointTest, StreamingDegradedTripIsNotPersisted) {
  const Dataset d = CompactDataset();
  StreamingOptions options;
  options.window_seconds = 100.0;

  Result<StreamingResult> baseline = RunStreamingWcop(d, options);
  ASSERT_TRUE(baseline.ok());

  options.checkpoint_path = Path("stream.ckpt");
  options.wcop.allow_partial_results = true;
  CancellationToken token;
  token.RequestCancellation();
  RunContext cancelled;
  cancelled.set_cancellation_token(token);
  options.wcop.run_context = &cancelled;

  Result<StreamingResult> tripped = RunStreamingWcop(d, options);
  ASSERT_TRUE(tripped.ok()) << tripped.status();
  EXPECT_TRUE(tripped->degraded);

  options.wcop.run_context = nullptr;
  Result<StreamingResult> resumed = RunStreamingWcop(d, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_FALSE(resumed->degraded) << resumed->degraded_reason;
  ExpectDatasetsIdentical(resumed->sanitized, baseline->sanitized);
}

// ---------------------------------------------------------------------------
// WCOP-B interrupt/resume.
// ---------------------------------------------------------------------------

void ExpectWcopBResultsIdentical(const WcopBResult& a, const WcopBResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].edit_size, b.rounds[i].edit_size) << i;
    EXPECT_EQ(a.rounds[i].ttd, b.rounds[i].ttd) << i;
    EXPECT_EQ(a.rounds[i].editing_distortion, b.rounds[i].editing_distortion)
        << i;
    EXPECT_EQ(a.rounds[i].total_distortion, b.rounds[i].total_distortion)
        << i;
    EXPECT_EQ(a.rounds[i].num_clusters, b.rounds[i].num_clusters) << i;
    EXPECT_EQ(a.rounds[i].trashed, b.rounds[i].trashed) << i;
  }
  EXPECT_EQ(a.final_edit_size, b.final_edit_size);
  EXPECT_EQ(a.bound_satisfied, b.bound_satisfied);
  ExpectDatasetsIdentical(a.anonymization.sanitized,
                          b.anonymization.sanitized);
  EXPECT_EQ(a.anonymization.trashed_ids, b.anonymization.trashed_ids);
  EXPECT_EQ(a.anonymization.report.ttd, b.anonymization.report.ttd);
  EXPECT_EQ(a.anonymization.report.total_distortion,
            b.anonymization.report.total_distortion);
}

TEST_F(CheckpointTest, WcopBResumeMatchesUninterruptedRun) {
  const Dataset d = SmallSynthetic(15, 20);
  WcopOptions options;
  WcopBOptions b;
  b.step = 1;
  b.max_edit_size = 3;
  b.distort_max = 0.0;  // unreachable -> sweep runs to exhaustion, 3 rounds

  Result<WcopBResult> baseline = RunWcopB(d, options, b);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_EQ(baseline->rounds.size(), 3u);

  b.checkpoint_path = Path("wcopb.ckpt");
  {
    ScopedFailpoint fp("wcop_b.checkpoint_saved",
                       Status::Internal("simulated crash"), /*max_fires=*/1);
    Result<WcopBResult> interrupted = RunWcopB(d, options, b);
    ASSERT_FALSE(interrupted.ok());
  }
  ASSERT_TRUE(std::filesystem::exists(b.checkpoint_path));

  Result<WcopBResult> resumed = RunWcopB(d, options, b);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->resumed_rounds, 1u);
  ExpectWcopBResultsIdentical(*resumed, *baseline);
}

TEST_F(CheckpointTest, WcopBTerminalCheckpointReplaysResult) {
  const Dataset d = SmallSynthetic(15, 20);
  WcopOptions options;
  WcopBOptions b;
  b.step = 1;
  b.max_edit_size = 2;
  b.distort_max = 0.0;
  b.checkpoint_path = Path("wcopb.ckpt");

  Result<WcopBResult> first = RunWcopB(d, options, b);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->resumed);

  // The terminal checkpoint stores the finished sweep: a re-run replays it
  // without recomputing any round.
  FailpointRegistry::Instance().EnableHitCounting(true);
  const uint64_t rounds_before =
      FailpointRegistry::Instance().HitCount("wcop_b.round");
  Result<WcopBResult> replay = RunWcopB(d, options, b);
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("wcop_b.round"),
            rounds_before);
  FailpointRegistry::Instance().EnableHitCounting(false);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->resumed);
  ExpectWcopBResultsIdentical(*replay, *first);
}

TEST_F(CheckpointTest, WcopBRejectsForeignCheckpoint) {
  const Dataset d = SmallSynthetic(15, 20);
  WcopOptions options;
  WcopBOptions b;
  b.step = 1;
  b.max_edit_size = 2;
  b.distort_max = 0.0;
  b.checkpoint_path = Path("wcopb.ckpt");
  ASSERT_TRUE(RunWcopB(d, options, b).ok());

  WcopBOptions different = b;
  different.max_edit_size = 3;
  Result<WcopBResult> r = RunWcopB(d, options, different);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition) << r.status();
}

// Degraded rounds are never checkpointed: a run whose context trips mid-
// sweep leaves either no checkpoint or one from before the trip, so the
// restart redoes the degraded work at full quality.
TEST_F(CheckpointTest, WcopBDegradedRoundIsNotCheckpointed) {
  const Dataset d = SmallSynthetic(15, 20);
  WcopOptions options;
  options.allow_partial_results = true;
  RunContext tight;
  ResourceBudget budget;
  budget.max_distance_computations = 1;  // trips during the first clustering
  tight.set_budget(budget);
  options.run_context = &tight;
  WcopBOptions b;
  b.step = 1;
  b.max_edit_size = 3;
  b.distort_max = 0.0;
  b.checkpoint_path = Path("wcopb.ckpt");

  Result<WcopBResult> tripped = RunWcopB(d, options, b);
  if (tripped.ok()) {
    EXPECT_TRUE(tripped->anonymization.report.degraded);
  }
  EXPECT_FALSE(std::filesystem::exists(b.checkpoint_path));
  EXPECT_FALSE(std::filesystem::exists(b.checkpoint_path + ".prev"));

  // Fresh context: the sweep runs from scratch at full quality.
  options.run_context = nullptr;
  options.allow_partial_results = false;
  Result<WcopBResult> clean = RunWcopB(d, options, b);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_FALSE(clean->resumed);
  EXPECT_FALSE(clean->anonymization.report.degraded);
}

}  // namespace
}  // namespace wcop
