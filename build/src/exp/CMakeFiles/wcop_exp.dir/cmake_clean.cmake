file(REMOVE_RECURSE
  "CMakeFiles/wcop_exp.dir/grid_sweep.cc.o"
  "CMakeFiles/wcop_exp.dir/grid_sweep.cc.o.d"
  "libwcop_exp.a"
  "libwcop_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
