file(REMOVE_RECURSE
  "CMakeFiles/wcop_b_test.dir/wcop_b_test.cc.o"
  "CMakeFiles/wcop_b_test.dir/wcop_b_test.cc.o.d"
  "wcop_b_test"
  "wcop_b_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_b_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
