#ifndef WCOP_COMMON_RESULT_H_
#define WCOP_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace wcop {

/// Value-or-Status, in the spirit of absl::StatusOr / arrow::Result.
///
/// A Result<T> holds either a T (status is OK) or a non-OK Status. Accessing
/// the value of an errored Result is a programming error and asserts in debug
/// builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value — enables `return value;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status — enables `return status;`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
/// Usage:
///   WCOP_ASSIGN_OR_RETURN(Dataset d, LoadDataset(path));
#define WCOP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define WCOP_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define WCOP_ASSIGN_OR_RETURN_NAME(a, b) WCOP_ASSIGN_OR_RETURN_CONCAT(a, b)
#define WCOP_ASSIGN_OR_RETURN(lhs, expr) \
  WCOP_ASSIGN_OR_RETURN_IMPL(            \
      WCOP_ASSIGN_OR_RETURN_NAME(_wcop_result_, __LINE__), lhs, expr)

}  // namespace wcop

#endif  // WCOP_COMMON_RESULT_H_
