#include "geo/projection.h"

#include <cmath>

namespace wcop {

namespace {
// Mean Earth radius (IUGG), metres.
constexpr double kEarthRadiusMetres = 6371008.8;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

LocalProjection::LocalProjection(double ref_lat_deg, double ref_lon_deg)
    : ref_lat_deg_(ref_lat_deg), ref_lon_deg_(ref_lon_deg) {
  metres_per_deg_lat_ = kEarthRadiusMetres * kDegToRad;
  metres_per_deg_lon_ =
      kEarthRadiusMetres * kDegToRad * std::cos(ref_lat_deg * kDegToRad);
}

Point LocalProjection::ToMetric(double lat_deg, double lon_deg,
                                double time) const {
  return Point((lon_deg - ref_lon_deg_) * metres_per_deg_lon_,
               (lat_deg - ref_lat_deg_) * metres_per_deg_lat_, time);
}

void LocalProjection::ToGeographic(const Point& p, double* lat_deg,
                                   double* lon_deg) const {
  *lat_deg = ref_lat_deg_ + p.y / metres_per_deg_lat_;
  *lon_deg = ref_lon_deg_ + p.x / metres_per_deg_lon_;
}

}  // namespace wcop
