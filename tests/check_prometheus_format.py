#!/usr/bin/env python3
"""Validates Prometheus text exposition format 0.0.4 read from stdin.

Used by the CI observability job to gate the daemon's /metrics output:

    curl --unix-socket wcop.sock http://d/metrics | \
        python3 tests/check_prometheus_format.py

Checks (stdlib only, no prometheus_client dependency):
  * line grammar: comments are `# HELP <name> <docstring>` or
    `# TYPE <name> <counter|gauge|histogram|summary|untyped>`; samples are
    `name{labels} value [timestamp]`
  * metric and label names match the legal charsets
    ([a-zA-Z_:][a-zA-Z0-9_:]* and [a-zA-Z_][a-zA-Z0-9_]*)
  * label values use only the \\\\, \\", \\n escapes
  * values parse as Go-style floats (incl. NaN, +Inf, -Inf)
  * at most one HELP and one TYPE per family, both before its samples,
    and samples of one family are contiguous
  * counters end in _total (process_* families are exempt per convention)
  * histograms: bucket counts are cumulative/monotone in le order, the
    +Inf bucket exists and equals _count, and _sum/_count are present

Exit code 0 on success; 1 with a line-numbered diagnosis on failure.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name, optional {labels}, value, optional timestamp
SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(.*)\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)"
    r"(?: (-?[0-9]+))?$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def base_family(sample_name):
    """Family a sample belongs to (strips histogram/summary suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def le_key(value):
    return float("inf") if value == "+Inf" else float(value)


def fail(line_no, line, why):
    sys.stderr.write(
        "check_prometheus_format: line %d: %s\n  %s\n" % (line_no, why, line)
    )
    sys.exit(1)


def main():
    text = sys.stdin.read()
    helps = {}
    types = {}
    # family -> list of (line_no, name, labels dict, float value)
    samples = {}
    family_order = []  # first-seen order, to check contiguity
    last_family = None

    for line_no, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[0] != "#":
                fail(line_no, line, "malformed comment line")
            keyword, name = parts[1], parts[2]
            if keyword == "HELP":
                if name in helps:
                    fail(line_no, line, "second HELP for family %r" % name)
                if samples.get(name):
                    fail(line_no, line, "HELP after samples of %r" % name)
                helps[name] = parts[3] if len(parts) > 3 else ""
            elif keyword == "TYPE":
                if name in types:
                    fail(line_no, line, "second TYPE for family %r" % name)
                if samples.get(name):
                    fail(line_no, line, "TYPE after samples of %r" % name)
                if len(parts) != 4 or parts[3] not in VALID_TYPES:
                    fail(line_no, line, "bad metric type")
                types[name] = parts[3]
            else:
                # Free-form comments are legal; ignore.
                pass
            continue

        m = SAMPLE.match(line)
        if not m:
            fail(line_no, line, "unparsable sample line")
        name, labels_raw, value = m.group(1), m.group(2), m.group(3)
        if not METRIC_NAME.match(name):
            fail(line_no, line, "illegal metric name %r" % name)

        labels = {}
        if labels_raw is not None:
            consumed = 0
            for pair in LABEL_PAIR.finditer(labels_raw):
                if pair.start() != consumed:
                    fail(line_no, line, "garbage between label pairs")
                if not LABEL_NAME.match(pair.group(1)):
                    fail(line_no, line, "illegal label name %r" % pair.group(1))
                raw = pair.group(2)
                if re.search(r'\\[^\\n"]', raw):
                    fail(line_no, line, "illegal escape in label value")
                labels[pair.group(1)] = raw
                consumed = pair.end()
                if consumed < len(labels_raw):
                    if labels_raw[consumed] != ",":
                        fail(line_no, line, "malformed label separator")
                    consumed += 1
            if consumed < len(labels_raw):
                fail(line_no, line, "trailing garbage in label block")

        family = base_family(name)
        # A family's type decides whether the suffix-stripped name applies:
        # only histograms/summaries own _bucket/_sum/_count children.
        if family != name and types.get(family) not in ("histogram", "summary"):
            family = name
        if family not in samples:
            samples[family] = []
            family_order.append(family)
        elif last_family != family:
            fail(line_no, line, "samples of family %r are not contiguous" % family)
        last_family = family
        samples[family].append((line_no, name, labels, le_key(value)))

    for family in family_order:
        ftype = types.get(family)
        if ftype == "counter":
            if not family.endswith("_total") and not family.startswith("process_"):
                fail(
                    samples[family][0][0],
                    family,
                    "counter family does not end in _total",
                )
        if ftype == "histogram":
            buckets = []
            count = None
            has_sum = False
            for line_no, name, labels, value in samples[family]:
                if name.endswith("_bucket"):
                    if "le" not in labels:
                        fail(line_no, name, "histogram bucket without le label")
                    buckets.append((line_no, le_key(labels["le"]), value))
                elif name.endswith("_count"):
                    count = value
                elif name.endswith("_sum"):
                    has_sum = True
            if not buckets or buckets[-1][1] != float("inf"):
                fail(
                    samples[family][0][0],
                    family,
                    "histogram has no +Inf bucket (or it is not last)",
                )
            for (_, lo_le, lo_v), (line_no, hi_le, hi_v) in zip(
                buckets, buckets[1:]
            ):
                if hi_le <= lo_le:
                    fail(line_no, family, "bucket le bounds not increasing")
                if hi_v < lo_v:
                    fail(line_no, family, "bucket counts not cumulative")
            if count is None or not has_sum:
                fail(samples[family][0][0], family, "histogram missing _sum/_count")
            if buckets[-1][2] != count:
                fail(
                    samples[family][0][0],
                    family,
                    "+Inf bucket (%g) != _count (%g)" % (buckets[-1][2], count),
                )

    n_samples = sum(len(v) for v in samples.values())
    if n_samples == 0:
        sys.stderr.write("check_prometheus_format: no samples in input\n")
        sys.exit(1)
    print(
        "check_prometheus_format: OK (%d families, %d samples)"
        % (len(family_order), n_samples)
    )


if __name__ == "__main__":
    main()
