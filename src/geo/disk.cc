#include "geo/disk.h"

#include <cmath>

namespace wcop {

Point ClampIntoDisk(const Point& p, const Point& center, double radius,
                    double keep_time) {
  const double dist = SpatialDistance(p, center);
  if (dist <= radius) {
    return Point(p.x, p.y, keep_time);
  }
  // Pull the point along the line towards the centre until it sits exactly on
  // the disk boundary — this is the minimum-distance translation.
  const double scale = radius / dist;
  return Point(center.x + (p.x - center.x) * scale,
               center.y + (p.y - center.y) * scale, keep_time);
}

Point RandomPointInDisk(const Point& center, double radius, double time,
                        Rng& rng) {
  const double angle = rng.UniformReal(0.0, 2.0 * M_PI);
  const double r = radius * std::sqrt(rng.UniformReal(0.0, 1.0));
  return Point(center.x + r * std::cos(angle), center.y + r * std::sin(angle),
               time);
}

bool InsideDisk(const Point& p, const Point& center, double radius,
                double epsilon) {
  return SpatialDistance(p, center) <= radius + epsilon;
}

}  // namespace wcop
