#include "common/failpoint.h"

#include <cstdlib>

namespace wcop {

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  // Environment-driven arming: WCOP_FAILPOINTS="site1,site2" arms each
  // listed site to inject Status::Internal on every hit. Lets a whole test
  // binary (or a staging deployment) run under injected faults without
  // recompiling.
  const char* env = std::getenv("WCOP_FAILPOINTS");
  if (env == nullptr || *env == '\0') {
    return;
  }
  std::string_view spec(env);
  while (!spec.empty()) {
    const size_t comma = spec.find(',');
    std::string_view site = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view()
                                           : spec.substr(comma + 1);
    // Trim surrounding whitespace.
    while (!site.empty() && site.front() == ' ') site.remove_prefix(1);
    while (!site.empty() && site.back() == ' ') site.remove_suffix(1);
    if (!site.empty()) {
      Arm(site, Status::Internal("injected fault (WCOP_FAILPOINTS) at " +
                                 std::string(site)));
    }
  }
}

void FailpointRegistry::Arm(std::string_view site, Status status,
                            int max_fires) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      sites_.insert_or_assign(std::string(site), Entry{std::move(status),
                                                       max_fires});
  (void)it;
  if (inserted) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.erase(std::string(site)) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(sites_.size()),
                         std::memory_order_relaxed);
  sites_.clear();
  hits_.clear();
}

Status FailpointRegistry::Fire(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  ++hits_[std::string(site)];
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) {
    return Status::OK();
  }
  Status injected = it->second.status;
  if (!injected.ok()) {
    fired_count_.fetch_add(1, std::memory_order_relaxed);
  }
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    sites_.erase(it);
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return injected;
}

uint64_t FailpointRegistry::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(std::string(site));
  return it == hits_.end() ? 0 : it->second;
}

std::vector<std::string> FailpointRegistry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [site, entry] : sites_) {
    out.push_back(site);
  }
  return out;
}

}  // namespace wcop
