#include <gtest/gtest.h>

#include "anon/verifier.h"
#include "anon/wcop_nv.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

TEST(WcopNvTest, PassesVerifier) {
  const Dataset d = SmallSynthetic(40, 50, /*k_max=*/4);
  Result<AnonymizationResult> result = RunWcopNv(d);
  ASSERT_TRUE(result.ok()) << result.status();
  const VerificationReport report = VerifyAnonymity(d, *result);
  EXPECT_TRUE(report.ok) << (report.messages.empty()
                                 ? "no messages"
                                 : report.messages.front());
}

TEST(WcopNvTest, EveryClusterMeetsUniversalK) {
  const Dataset d = SmallSynthetic(40, 50, /*k_max=*/4);
  const int k_uni = d.MaxK();
  const double delta_uni = d.MinDelta();
  Result<AnonymizationResult> result = RunWcopNv(d);
  ASSERT_TRUE(result.ok());
  for (const AnonymityCluster& c : result->clusters) {
    EXPECT_GE(c.members.size(), static_cast<size_t>(k_uni));
    EXPECT_DOUBLE_EQ(c.delta, delta_uni);
  }
}

TEST(WcopNvTest, OveranonymizesRelativeToPersonalized) {
  // The motivating claim of the paper: universal k = max k_i forces larger
  // clusters (coarser published data, fewer clusters) than the
  // personalized per-cluster k of WCOP-CT.
  const Dataset d = SmallSynthetic(50, 40, /*k_max=*/5);
  Result<AnonymizationResult> nv = RunWcopNv(d);
  ASSERT_TRUE(nv.ok());
  // Minimum cluster size under NV is k_uni; WCOP-CT can create clusters as
  // small as 2, so NV can never have more clusters on the same data.
  size_t min_size = d.size();
  for (const AnonymityCluster& c : nv->clusters) {
    min_size = std::min(min_size, c.members.size());
  }
  EXPECT_GE(min_size, static_cast<size_t>(d.MaxK()));
}

TEST(W4mTest, UniversalParametersApplied) {
  const Dataset d = SmallSynthetic(30, 40);
  Result<AnonymizationResult> result = RunW4m(d, /*k=*/3, /*delta=*/120.0);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const AnonymityCluster& c : result->clusters) {
    EXPECT_GE(c.members.size(), 3u);
    EXPECT_DOUBLE_EQ(c.delta, 120.0);
  }
}

TEST(W4mTest, RejectsBadUniversalParameters) {
  const Dataset d = SmallSynthetic(10, 30);
  EXPECT_FALSE(RunW4m(d, 0, 100.0).ok());
  EXPECT_FALSE(RunW4m(d, 2, -5.0).ok());
}

TEST(WcopNvTest, RejectsEmptyDataset) {
  EXPECT_FALSE(RunWcopNv(Dataset()).ok());
}

}  // namespace
}  // namespace wcop
