#include "common/snapshot.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/failpoint.h"

namespace wcop {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("snapshot_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  static std::string ReadRaw(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
  static void WriteRaw(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// CRC32 (reference vectors from the zlib/PNG polynomial).
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, Crc32KnownVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

// ---------------------------------------------------------------------------
// Round-trip and basic failure modes.
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, RoundTrip) {
  const std::string path = Path("snap");
  const std::string payload("hello checkpoint \0 binary ok", 29);
  ASSERT_TRUE(WriteSnapshotFile(path, payload, /*format_version=*/7).ok());

  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->format_version, 7u);
  EXPECT_EQ(read->payload, payload);
  // No temp file left behind after a clean write.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(SnapshotTest, EmptyPayloadRoundTrips) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "", 1).ok());
  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->payload.empty());
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  Result<Snapshot> read = ReadSnapshotFile(Path("nonexistent"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotTest, OverwriteReplacesPreviousSnapshot) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "old", 1).ok());
  ASSERT_TRUE(WriteSnapshotFile(path, "new", 2).ok());
  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->payload, "new");
  EXPECT_EQ(read->format_version, 2u);
}

// ---------------------------------------------------------------------------
// Corruption: every torn-file shape must come back as kDataLoss, never as a
// bogus payload and never as a crash/giant allocation.
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, CorruptMagicIsDataLoss) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "payload", 1).ok());
  std::string bytes = ReadRaw(path);
  bytes[0] = 'X';
  WriteRaw(path, bytes);

  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss) << read.status();
}

TEST_F(SnapshotTest, TruncatedHeaderIsDataLoss) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "payload", 1).ok());
  std::string bytes = ReadRaw(path);
  WriteRaw(path, bytes.substr(0, 10));  // shorter than the 24-byte header

  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss) << read.status();
}

TEST_F(SnapshotTest, TruncatedPayloadIsDataLoss) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "a payload long enough to cut", 1).ok());
  std::string bytes = ReadRaw(path);
  WriteRaw(path, bytes.substr(0, bytes.size() - 5));

  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss) << read.status();
}

TEST_F(SnapshotTest, TrailingGarbageIsDataLoss) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "payload", 1).ok());
  WriteRaw(path, ReadRaw(path) + "extra");

  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss) << read.status();
}

TEST_F(SnapshotTest, FlippedPayloadBitIsCrcMismatch) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "payload", 1).ok());
  std::string bytes = ReadRaw(path);
  bytes[bytes.size() - 1] ^= 0x01;  // flip one payload bit
  WriteRaw(path, bytes);

  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss) << read.status();
  EXPECT_NE(read.status().message().find("CRC"), std::string::npos)
      << read.status();
}

// A header claiming a huge payload over a tiny file must not allocate the
// claimed size; it reports the size mismatch instead.
TEST_F(SnapshotTest, HugeClaimedSizeIsDataLossNotAllocation) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "tiny", 1).ok());
  std::string bytes = ReadRaw(path);
  for (int i = 12; i < 20; ++i) {
    bytes[static_cast<size_t>(i)] = '\xff';  // payload size = ~2^64
  }
  WriteRaw(path, bytes);

  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss) << read.status();
}

// ---------------------------------------------------------------------------
// Rotation + fallback: a corrupt (or missing) current file falls back to the
// previous good snapshot, so a crash mid-write costs one interval at most.
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, RotatingWriteKeepsPrevious) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotRotating(path, "first", 1).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".prev"));
  ASSERT_TRUE(WriteSnapshotRotating(path, "second", 1).ok());
  ASSERT_TRUE(std::filesystem::exists(path + ".prev"));

  Result<Snapshot> current = ReadSnapshotFile(path);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->payload, "second");
  Result<Snapshot> previous = ReadSnapshotFile(path + ".prev");
  ASSERT_TRUE(previous.ok());
  EXPECT_EQ(previous->payload, "first");
}

TEST_F(SnapshotTest, FallbackPrefersCurrent) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotRotating(path, "first", 1).ok());
  ASSERT_TRUE(WriteSnapshotRotating(path, "second", 1).ok());
  Result<Snapshot> read = ReadSnapshotWithFallback(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->payload, "second");
}

TEST_F(SnapshotTest, FallbackUsesPreviousWhenCurrentCorrupt) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotRotating(path, "first", 1).ok());
  ASSERT_TRUE(WriteSnapshotRotating(path, "second", 1).ok());
  std::string bytes = ReadRaw(path);
  bytes[bytes.size() - 1] ^= 0x01;
  WriteRaw(path, bytes);

  Result<Snapshot> read = ReadSnapshotWithFallback(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->payload, "first");
}

TEST_F(SnapshotTest, FallbackUsesPreviousWhenCurrentMissing) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotRotating(path, "first", 1).ok());
  ASSERT_TRUE(WriteSnapshotRotating(path, "second", 1).ok());
  std::filesystem::remove(path);

  Result<Snapshot> read = ReadSnapshotWithFallback(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->payload, "first");
}

TEST_F(SnapshotTest, FallbackReportsDataLossWhenBothCorrupt) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotRotating(path, "first", 1).ok());
  ASSERT_TRUE(WriteSnapshotRotating(path, "second", 1).ok());
  for (const std::string& p : {path, path + ".prev"}) {
    std::string bytes = ReadRaw(p);
    bytes[bytes.size() - 1] ^= 0x01;
    WriteRaw(p, bytes);
  }

  Result<Snapshot> read = ReadSnapshotWithFallback(path);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss) << read.status();
}

TEST_F(SnapshotTest, FallbackReportsNotFoundWhenNothingExists) {
  Result<Snapshot> read = ReadSnapshotWithFallback(Path("never_written"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Failpoint-injected write failures: the previous snapshot survives, and a
// RetryPolicy rides over transient (max_fires-limited) failures.
// ---------------------------------------------------------------------------

TEST_F(SnapshotTest, FailedWriteLeavesPreviousIntact) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "good", 1).ok());
  for (const char* site :
       {"snapshot.open_temp", "snapshot.write", "snapshot.fsync",
        "snapshot.rename"}) {
    ScopedFailpoint fp(site, Status::IoError("injected"));
    Status s = WriteSnapshotFile(path, "doomed", 1);
    ASSERT_FALSE(s.ok()) << site;
    EXPECT_EQ(s.code(), StatusCode::kIoError) << site << ": " << s;
    Result<Snapshot> read = ReadSnapshotFile(path);
    ASSERT_TRUE(read.ok()) << site << ": " << read.status();
    EXPECT_EQ(read->payload, "good") << site;
  }
}

TEST_F(SnapshotTest, RetryRidesOverTransientWriteFailure) {
  const std::string path = Path("snap");
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.sleep_between_attempts = false;
  ScopedFailpoint fp("snapshot.fsync", Status::IoError("transient"),
                     /*max_fires=*/2);
  ASSERT_TRUE(WriteSnapshotFile(path, "persistent", 1, &retry).ok());
  Result<Snapshot> read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->payload, "persistent");
}

TEST_F(SnapshotTest, RetryRidesOverTransientReadFailure) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "payload", 1).ok());
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.sleep_between_attempts = false;
  ScopedFailpoint fp("snapshot.read", Status::IoError("transient"),
                     /*max_fires=*/2);
  Result<Snapshot> read = ReadSnapshotFile(path, &retry);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->payload, "payload");
}

TEST_F(SnapshotTest, CorruptionIsNotRetried) {
  const std::string path = Path("snap");
  ASSERT_TRUE(WriteSnapshotFile(path, "payload", 1).ok());
  std::string bytes = ReadRaw(path);
  bytes[bytes.size() - 1] ^= 0x01;
  WriteRaw(path, bytes);

  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.sleep_between_attempts = false;
  FailpointRegistry::Instance().EnableHitCounting(true);
  const uint64_t hits_before =
      FailpointRegistry::Instance().HitCount("snapshot.read");
  Result<Snapshot> read = ReadSnapshotFile(path, &retry);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  // kDataLoss is terminal: exactly one read attempt was made.
  EXPECT_EQ(FailpointRegistry::Instance().HitCount("snapshot.read"),
            hits_before + 1);
  FailpointRegistry::Instance().EnableHitCounting(false);
}

}  // namespace
}  // namespace wcop
