#ifndef WCOP_SERVER_CLIENT_H_
#define WCOP_SERVER_CLIENT_H_

/// Client for the anonymization service's unix-socket endpoint: encodes
/// JobSpecs onto POST /jobs, decodes JobRecords back, and converts the
/// transport's HTTP codes to the Status codes the rest of the codebase
/// speaks (429 -> kResourceExhausted, 503 -> kFailedPrecondition, ...) so
/// callers handle backpressure exactly like any other wcop API.

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "server/http.h"
#include "server/job.h"

namespace wcop {
namespace server {

class ServiceClient {
 public:
  explicit ServiceClient(std::string socket_path, int timeout_ms = 10000)
      : socket_path_(std::move(socket_path)), timeout_ms_(timeout_ms) {}

  /// Submits a job; returns the accepted (or deduped) record.
  /// kResourceExhausted = backpressure, retry later.
  Result<JobRecord> Submit(const JobSpec& spec) const;

  Result<JobRecord> GetJob(int64_t id) const;

  /// All jobs the service knows about (GET /jobs), in id order.
  Result<std::vector<JobRecord>> ListJobs() const;

  /// The job's persisted Chrome trace JSON (GET /jobs/<id>/trace).
  /// kNotFound until the job has executed at least once.
  Result<std::string> Trace(int64_t id) const;

  /// Polls GetJob until the job reaches a terminal state or `timeout`
  /// elapses (kDeadlineExceeded).
  Result<JobRecord> WaitForJob(int64_t id,
                               std::chrono::milliseconds timeout) const;

  Result<std::string> Health() const;

  /// Prometheus text exposition by default; `legacy_format=true` fetches
  /// the old human-readable dump (GET /metrics?format=text).
  Result<std::string> Metrics(bool legacy_format = false) const;

  /// Asks the daemon to exit. drain=true finishes queued jobs first.
  Status Shutdown(bool drain) const;

  const std::string& socket_path() const { return socket_path_; }

 private:
  Result<HttpResponse> Call(const std::string& method,
                            const std::string& path,
                            const std::string& body) const;

  std::string socket_path_;
  int timeout_ms_;
};

}  // namespace server
}  // namespace wcop

#endif  // WCOP_SERVER_CLIENT_H_
