// Extension experiment: scalability of the pipeline — runtime of each
// phase as the dataset grows in (a) number of trajectories and (b) points
// per trajectory. Complements the paper's single runtime row (Table 3) by
// exposing the quadratic EDR-clustering core and the near-linear
// segmentation/translation phases.
//
// Run:  ./ext_scalability [--max-trajectories=238]

#include <cstdio>
#include <iostream>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

using namespace wcop;
using namespace wcop::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const size_t max_trajectories =
      static_cast<size_t>(args.GetInt("max-trajectories", 238));

  PrintHeader("Extension: runtime vs number of trajectories (80 pts each)");
  {
    TablePrinter table({"|D|", "clustering+translation (s)",
                        "SA-Traclus pipeline (s)", "clusters"});
    for (size_t n : {30u, 60u, 120u, 238u}) {
      if (n > max_trajectories) {
        break;
      }
      BenchScale scale;
      scale.trajectories = n;
      scale.points = 80;
      Dataset d = MakeBenchDataset(scale);
      AssignPaperRequirements(&d, 5, 250.0, 11);
      WcopOptions options;
      options.seed = 3;

      Stopwatch ct_timer;
      Result<AnonymizationResult> ct = RunWcopCt(d, options);
      const double ct_seconds = ct_timer.ElapsedSeconds();

      TraclusSegmenter segmenter(BenchTraclusOptions());
      Stopwatch sa_timer;
      Result<WcopSaResult> sa = RunWcopSa(d, &segmenter, options);
      const double sa_seconds = sa_timer.ElapsedSeconds();

      table.AddRow({std::to_string(n), FormatSignificant(ct_seconds, 3),
                    FormatSignificant(sa_seconds, 3),
                    ct.ok() ? std::to_string(ct->report.num_clusters)
                            : "fail"});
      (void)sa;
    }
    table.Print(std::cout);
  }

  PrintHeader("Extension: runtime vs points per trajectory (120 traj.)");
  {
    TablePrinter table({"points/traj", "clustering+translation (s)",
                        "EDR cells (relative)"});
    double base = 0.0;
    for (size_t points : {40u, 80u, 160u, 320u}) {
      BenchScale scale;
      scale.trajectories = 120;
      scale.points = points;
      Dataset d = MakeBenchDataset(scale);
      AssignPaperRequirements(&d, 5, 250.0, 11);
      WcopOptions options;
      options.seed = 3;
      Stopwatch timer;
      Result<AnonymizationResult> r = RunWcopCt(d, options);
      const double seconds = timer.ElapsedSeconds();
      if (base == 0.0) {
        base = seconds;
      }
      table.AddRow({std::to_string(points), FormatSignificant(seconds, 3),
                    FormatSignificant(seconds / base, 3) + "x"});
      (void)r;
    }
    table.Print(std::cout);
    std::printf("expected shape: ~4x runtime per point-count doubling (the\n"
                "EDR dynamic program is quadratic in trajectory length).\n");
  }
  return 0;
}
