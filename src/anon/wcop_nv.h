#ifndef WCOP_ANON_WCOP_NV_H_
#define WCOP_ANON_WCOP_NV_H_

#include "anon/types.h"
#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// W4M-style universal (k,delta)-anonymization (Abul et al. 2010): every
/// trajectory is forced to the same requirement, then the standard
/// clustering-and-translation pipeline runs. This is the state-of-the-art
/// algorithm the paper builds on, exposed as a first-class baseline.
Result<AnonymizationResult> RunW4m(const Dataset& dataset, int k, double delta,
                                   const WcopOptions& options = {});

/// WCOP-NV (Algorithm 1): the naive personalized baseline — ignore the
/// individual preferences and run the universal algorithm with
/// k := max_i k_i and delta := min_i delta_i, the only universal values
/// that satisfy everybody.
Result<AnonymizationResult> RunWcopNv(const Dataset& dataset,
                                      const WcopOptions& options = {});

}  // namespace wcop

#endif  // WCOP_ANON_WCOP_NV_H_
