file(REMOVE_RECURSE
  "CMakeFiles/ext_privacy_utility.dir/ext_privacy_utility.cpp.o"
  "CMakeFiles/ext_privacy_utility.dir/ext_privacy_utility.cpp.o.d"
  "ext_privacy_utility"
  "ext_privacy_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_privacy_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
