#include "distance/euclidean.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace wcop {

namespace {

/// Collects the union of both trajectories' timestamps restricted to the
/// overlap [t_lo, t_hi]; always includes the interval endpoints.
std::vector<double> OverlapTimestamps(const Trajectory& a, const Trajectory& b,
                                      double t_lo, double t_hi) {
  std::vector<double> times;
  times.push_back(t_lo);
  auto add_range = [&](const Trajectory& t) {
    for (const Point& p : t.points()) {
      if (p.t > t_lo && p.t < t_hi) {
        times.push_back(p.t);
      }
    }
  };
  add_range(a);
  add_range(b);
  times.push_back(t_hi);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

}  // namespace

double SynchronizedEuclideanDistance(const Trajectory& a,
                                     const Trajectory& b) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  const double t_lo = std::max(a.StartTime(), b.StartTime());
  const double t_hi = std::min(a.EndTime(), b.EndTime());
  if (t_lo > t_hi) {
    return std::numeric_limits<double>::infinity();
  }
  const std::vector<double> times = OverlapTimestamps(a, b, t_lo, t_hi);
  double total = 0.0;
  for (double t : times) {
    total += SpatialDistance(a.PositionAt(t), b.PositionAt(t));
  }
  return total / static_cast<double>(times.size());
}

double MaxSynchronizedDistance(const Trajectory& a, const Trajectory& b) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  const double t_lo = std::max(a.StartTime(), b.StartTime());
  const double t_hi = std::min(a.EndTime(), b.EndTime());
  if (t_lo > t_hi) {
    return std::numeric_limits<double>::infinity();
  }
  const std::vector<double> times = OverlapTimestamps(a, b, t_lo, t_hi);
  double max_dist = 0.0;
  for (double t : times) {
    max_dist =
        std::max(max_dist, SpatialDistance(a.PositionAt(t), b.PositionAt(t)));
  }
  return max_dist;
}

}  // namespace wcop
