#ifndef WCOP_ANON_STREAMING_H_
#define WCOP_ANON_STREAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "anon/types.h"
#include "common/result.h"
#include "common/retry.h"
#include "traj/dataset.h"

namespace wcop {

/// Windowed (streaming-style) publication: a provider that releases data
/// continuously cannot wait for the full history — it anonymizes and
/// publishes one time window at a time. This driver partitions the dataset
/// into fixed windows, runs WCOP-CT independently per window (each
/// trajectory contributes the sub-trajectory falling inside the window,
/// inheriting its (k_i, delta_i)), and concatenates the sanitized windows.
///
/// The per-window guarantee is the full personalized (K,Delta)-anonymity
/// within that window; the deliberate trade-off (measurable through the
/// report) is that window boundaries fragment trajectories, so total
/// distortion and trash are typically higher than one offline pass — the
/// price of bounded publication latency.
struct StreamingOptions {
  double window_seconds = 3600.0;
  /// Window fragments with *fewer* points than this are dropped (counted in
  /// `suppressed_fragments`); a fragment with exactly this many points is
  /// kept. Values below 1 are treated as 1 (empty fragments never publish).
  size_t min_fragment_points = 2;
  WcopOptions wcop;  ///< per-window anonymization settings

  /// Durable checkpoint/resume (DESIGN.md "Crash recovery"). When set, the
  /// driver persists its state through the atomic snapshot layer every
  /// `checkpoint_every_windows` completed windows, and on startup resumes
  /// from an existing checkpoint at `checkpoint_path`: already-published
  /// windows are spliced back in (sanitized fragments, summaries, totals,
  /// telemetry counters) and processing continues with the first
  /// uncompleted window. A corrupt current checkpoint falls back to
  /// `checkpoint_path`.prev; with no readable checkpoint the run starts
  /// from scratch. A checkpoint written against a different dataset or
  /// options (fingerprint mismatch) fails with kFailedPrecondition.
  std::string checkpoint_path;
  size_t checkpoint_every_windows = 1;
  /// Optional retry policy for checkpoint snapshot I/O (null = no retries).
  const RetryPolicy* snapshot_retry = nullptr;
};

struct StreamingWindowSummary {
  double window_start = 0.0;
  size_t input_fragments = 0;
  size_t published_fragments = 0;
  size_t clusters = 0;
  double ttd = 0.0;
  bool skipped = false;  ///< window unsatisfiable -> fully suppressed
};

struct StreamingResult {
  /// All sanitized window fragments (ids are fresh; parent_id links each
  /// fragment to its source trajectory).
  Dataset sanitized;
  std::vector<StreamingWindowSummary> windows;
  size_t total_clusters = 0;
  size_t suppressed_fragments = 0;
  double total_ttd = 0.0;
  /// Set when the run context tripped and `wcop.allow_partial_results`
  /// turned the trip into early termination: windows processed so far are
  /// published (each individually verified-safe), the rest are suppressed.
  bool degraded = false;
  std::string degraded_reason;

  /// Resume provenance: true when this run restored state from a
  /// checkpoint, with `resumed_windows` windows spliced in rather than
  /// recomputed. The spliced output is byte-identical to an uninterrupted
  /// run (checkpoints serialize doubles exactly).
  bool resumed = false;
  size_t resumed_windows = 0;

  /// Final metrics snapshot over the entire stream (all windows), when a
  /// telemetry sink was attached through `StreamingOptions::wcop`.
  telemetry::MetricsSnapshot metrics;
};

Result<StreamingResult> RunStreamingWcop(const Dataset& dataset,
                                         const StreamingOptions& options = {});

// ---------------------------------------------------------------------------
// Window-iterator core — shared by this in-memory driver and the
// out-of-core continuous-publication pipeline (src/pipeline/), so both
// slice the stream into byte-identical windows.
// ---------------------------------------------------------------------------

/// The deterministic window grid over a time range: window `i` spans
/// [t_min + i*window_seconds, t_min + (i+1)*window_seconds), and a window
/// exists for every i with WindowStart(i) <= t_max.
struct WindowPlan {
  double t_min = 0.0;
  double window_seconds = 0.0;
  size_t num_windows = 0;

  double WindowStart(size_t i) const {
    return t_min + static_cast<double>(i) * window_seconds;
  }
  double WindowEnd(size_t i) const { return WindowStart(i) + window_seconds; }
};

/// Computes the window grid covering [t_min, t_max]. kInvalidArgument when
/// window_seconds is not positive, the range is inverted/non-finite, or
/// window_seconds is so small relative to the time magnitude that the grid
/// cannot advance (t + window_seconds == t in double arithmetic).
Result<WindowPlan> PlanWindows(double t_min, double t_max,
                               double window_seconds);

/// Copies the points of `t` with window_start <= p.t < window_end, in order.
std::vector<Point> SlicePointsInWindow(const Trajectory& t,
                                       double window_start, double window_end);

/// Builds a publishable window fragment: fresh id `fragment_id`, the
/// parent's object id, the parent's requirement (each user's (k_i, δ_i)
/// rides with every fragment), and parent_id = parent.id() linking back to
/// the source trajectory.
Trajectory MakeWindowFragment(int64_t fragment_id, const Trajectory& parent,
                              std::vector<Point> points);

}  // namespace wcop

#endif  // WCOP_ANON_STREAMING_H_
