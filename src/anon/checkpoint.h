#ifndef WCOP_ANON_CHECKPOINT_H_
#define WCOP_ANON_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "anon/streaming.h"
#include "anon/types.h"
#include "anon/wcop_b.h"
#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// Resumable driver state (DESIGN.md "Crash recovery & checkpointing").
///
/// The two long-running drivers — windowed streaming publication and
/// WCOP-B's repeated edit-and-re-anonymize loop — periodically encode their
/// completed work into one of the checkpoint structs below and persist it
/// through the atomic snapshot layer (common/snapshot.h). A restarted run
/// decodes the checkpoint, verifies the config fingerprint, splices the
/// completed work back in, and continues from the first uncompleted unit.
///
/// Both encodings are plain deterministic text with doubles printed at
/// %.17g (exact round-trip), so a resumed run reproduces the uninterrupted
/// run byte-for-byte. Integrity is the snapshot envelope's job (CRC32);
/// decode failures on a validated payload therefore still report kDataLoss
/// and callers treat them like a corrupt file.

/// Streaming driver state after a whole number of completed windows.
struct StreamingCheckpoint {
  uint64_t fingerprint = 0;  ///< StreamingConfigFingerprint at write time
  size_t windows_done = 0;   ///< loop resumes at window index windows_done
  int64_t next_fragment_id = 0;
  size_t suppressed_fragments = 0;
  size_t total_clusters = 0;
  double total_ttd = 0.0;
  bool degraded = false;
  std::string degraded_reason;
  std::vector<StreamingWindowSummary> windows;
  std::vector<Trajectory> published;  ///< sanitized fragments so far
  /// Counter snapshot of the attached telemetry sink, spliced back into the
  /// resumed run's sink so end-of-run metrics cover the whole logical run.
  std::vector<std::pair<std::string, uint64_t>> counters;
};

std::string EncodeStreamingCheckpoint(const StreamingCheckpoint& checkpoint);
Result<StreamingCheckpoint> DecodeStreamingCheckpoint(std::string_view payload);

/// WCOP-B driver state after a completed edit-and-re-anonymize round.
/// Carries the full last round result: when the checkpoint is terminal
/// (bound satisfied / editing exhausted / degraded trip) a restart returns
/// it directly instead of recomputing anything.
struct WcopBCheckpoint {
  uint64_t fingerprint = 0;  ///< WcopBConfigFingerprint at write time
  size_t next_edit_size = 0;
  bool terminal = false;
  bool bound_satisfied = false;
  size_t final_edit_size = 0;
  std::vector<WcopBRound> rounds;
  AnonymizationResult anonymization;  ///< last completed round's output
  std::vector<std::pair<std::string, uint64_t>> counters;
};

std::string EncodeWcopBCheckpoint(const WcopBCheckpoint& checkpoint);
Result<WcopBCheckpoint> DecodeWcopBCheckpoint(std::string_view payload);

/// Snapshot format versions for the two payloads above.
inline constexpr uint32_t kStreamingCheckpointVersion = 1;
inline constexpr uint32_t kWcopBCheckpointVersion = 1;

/// Order- and content-sensitive fingerprint of the dataset (ids, metadata,
/// requirements, every point's bit pattern). FNV-1a, stable across runs and
/// platforms of equal endianness.
uint64_t DatasetFingerprint(const Dataset& dataset);

/// Fingerprint of everything that must match for a streaming checkpoint to
/// be resumable: the dataset plus the options that shape the window
/// partition and the per-window anonymization.
uint64_t StreamingConfigFingerprint(const Dataset& dataset,
                                    const StreamingOptions& options);

/// Ditto for WCOP-B: dataset plus clustering options plus the editing
/// schedule parameters.
uint64_t WcopBConfigFingerprint(const Dataset& dataset,
                                const WcopOptions& options,
                                const WcopBOptions& b_options);

/// Fingerprint of the determinism-relevant WcopOptions fields alone
/// (threads and observability sinks excluded — they never change published
/// bytes). Building block for config fingerprints that hash their dataset
/// some other way, e.g. the continuous pipeline's store-index fingerprint.
uint64_t WcopOptionsFingerprint(const WcopOptions& options);

}  // namespace wcop

#endif  // WCOP_ANON_CHECKPOINT_H_
