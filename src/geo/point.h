#ifndef WCOP_GEO_POINT_H_
#define WCOP_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace wcop {

/// A timestamped 2-D location: the paper's (p, t) pair with p = (x, y).
///
/// Coordinates are metric (metres in a local projection) and time is in
/// seconds. Trajectories are ordered sequences of Points with strictly
/// increasing t (see Trajectory).
struct Point {
  double x = 0.0;
  double y = 0.0;
  double t = 0.0;

  Point() = default;
  Point(double x_in, double y_in, double t_in) : x(x_in), y(y_in), t(t_in) {}

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y && t == other.t;
  }
};

/// Euclidean distance between the spatial components (time is ignored);
/// this is the d(p1, p2) of Definition 2.
inline double SpatialDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared spatial distance — avoids the sqrt on hot comparison paths.
inline double SpatialDistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Absolute time difference in seconds.
inline double TemporalDistance(const Point& a, const Point& b) {
  return std::abs(a.t - b.t);
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ", t=" << p.t << ")";
}

}  // namespace wcop

#endif  // WCOP_GEO_POINT_H_
