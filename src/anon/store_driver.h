#ifndef WCOP_ANON_STORE_DRIVER_H_
#define WCOP_ANON_STORE_DRIVER_H_

/// Driver entry points over the out-of-core trajectory store: run the
/// monolithic WCOP drivers directly from a `TrajectoryStoreReader` without
/// the caller materializing the dataset first.
///
/// These are the small-dataset convenience path; at scale, use the sharded
/// pipeline (store/shard_runner.h), which keeps memory bounded by the
/// largest shard instead of the whole store.

#include "anon/types.h"
#include "common/result.h"
#include "store/store_file.h"

namespace wcop {

/// WCOP-NV (universal requirements) over every trajectory in the store.
Result<AnonymizationResult> RunWcopNvOnStore(
    const store::TrajectoryStoreReader& reader,
    const WcopOptions& options = {});

/// WCOP-CT (personalized requirements) over every trajectory in the store.
Result<AnonymizationResult> RunWcopCtOnStore(
    const store::TrajectoryStoreReader& reader,
    const WcopOptions& options = {});

}  // namespace wcop

#endif  // WCOP_ANON_STORE_DRIVER_H_
