#ifndef WCOP_ATTACK_AUDIT_H_
#define WCOP_ATTACK_AUDIT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "attack/adversary.h"
#include "attack/effective_k.h"
#include "attack/linkage.h"
#include "attack/reident.h"
#include "common/result.h"
#include "common/run_context.h"
#include "common/telemetry.h"

namespace wcop {
namespace attack {

/// Distortion context pulled from the continuous pipeline's window
/// manifests, so the audit report places attack success next to the
/// utility price paid for it (the paper's Table-3 pairing).
struct DistortionSummary {
  size_t windows = 0;
  size_t degraded_windows = 0;
  size_t skipped_windows = 0;
  uint64_t input_fragments = 0;
  uint64_t published_fragments = 0;
  uint64_t suppressed_fragments = 0;
  uint64_t clusters = 0;
  double ttd = 0.0;  ///< total translation distortion, summed over windows
};

/// One full audit of a publication (DESIGN.md §14): re-identification,
/// cross-release linkage, and the k^{τ,ε} effective-anonymity quantifier,
/// each present only when its inputs were available.
struct AuditReport {
  AdversaryModel adversary;  ///< echoed so the report is self-describing

  bool has_reident = false;
  ReidentResult reident;

  bool has_linkage = false;
  LinkageResult linkage;

  bool has_effective_k = false;
  EffectiveKResult effective_k;

  bool has_distortion = false;
  DistortionSummary distortion;
};

struct AuditOptions {
  /// Single-release mode: the published `.wst` store to audit. Continuous
  /// mode: leave empty and set `windows_dir` to a continuous-publication
  /// output directory (window_NNNNN.wst + manifests) instead — each
  /// window is audited and the linkage attack joins consecutive releases.
  std::string published_store;
  std::string windows_dir;

  /// The pre-publication source store. Required for the
  /// re-identification attack (victims and their true trajectories come
  /// from here); without it the audit runs effective-k (and, in
  /// continuous mode, linkage) only.
  std::string original_store;

  AdversaryModel adversary;

  /// Caps both the re-identification victim count and the effective-k
  /// user sample (0 = everyone). Large stores should cap: both attacks
  /// walk the full candidate index per victim.
  size_t victims = 0;

  /// Timestamps sampled per τ-interval by the effective-k quantifier.
  size_t effective_k_samples = 8;

  /// Gates of the linkage attack (threads/context/telemetry fields are
  /// overridden by the audit-level ones below).
  LinkageOptions linkage;

  int threads = 1;
  const RunContext* run_context = nullptr;
  telemetry::Telemetry* telemetry = nullptr;

  /// Progress callback: (phase name, done, total), on the coordinating
  /// thread. Phases: "reident", "linkage", "effective_k".
  std::function<void(const char*, size_t, size_t)> progress;
};

/// Runs every attack the inputs allow and assembles the report. The
/// result is deterministic for fixed inputs and options: byte-identical
/// JSON across thread counts.
Result<AuditReport> RunAudit(const AuditOptions& options);

/// Deterministic JSON serialization (report_json conventions: %.10g
/// doubles, null for non-finite; no timings, no thread-count-dependent
/// values). Sections missing from the report serialize as null.
std::string AuditReportToJson(const AuditReport& report);

}  // namespace attack
}  // namespace wcop

#endif  // WCOP_ATTACK_AUDIT_H_
