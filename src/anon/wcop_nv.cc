#include "anon/wcop_nv.h"

#include "anon/wcop_ct.h"

namespace wcop {

Result<AnonymizationResult> RunW4m(const Dataset& dataset, int k, double delta,
                                   const WcopOptions& options) {
  if (k < 1) {
    return Status::InvalidArgument("universal k must be >= 1");
  }
  if (delta < 0.0) {
    return Status::InvalidArgument("universal delta must be non-negative");
  }
  // Fail fast before copying the dataset; mid-run trips are handled by the
  // shared pipeline underneath.
  if (!options.allow_partial_results) {
    WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  }
  // Uniform requirements turn the personalized pipeline into exactly the
  // universal one: every cluster grows to k members and uses delta.
  Dataset uniform = dataset;
  for (Trajectory& t : uniform.mutable_trajectories()) {
    t.set_requirement(Requirement{k, delta});
  }
  // Resolve distance tolerance against the *original* personalized dataset
  // so WCOP-NV and WCOP-CT comparisons share identical EDR parameters.
  const WcopOptions resolved = ResolveOptions(dataset, options);
  return RunWcopCt(uniform, resolved);
}

Result<AnonymizationResult> RunWcopNv(const Dataset& dataset,
                                      const WcopOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  // Algorithm 1, lines 1-2: the only universal values satisfying every
  // user's preference.
  const int k_uni = dataset.MaxK();
  const double delta_uni = dataset.MinDelta();
  return RunW4m(dataset, k_uni, delta_uni, options);
}

}  // namespace wcop
