#include <gtest/gtest.h>

#include "anon/utility.h"
#include "anon/wcop_ct.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;
using testing_util::SmallSynthetic;

RangeQuery Box(double x_lo, double x_hi, double y_lo, double y_hi,
               double t_lo, double t_hi) {
  RangeQuery q;
  q.x_lo = x_lo;
  q.x_hi = x_hi;
  q.y_lo = y_lo;
  q.y_hi = y_hi;
  q.t_lo = t_lo;
  q.t_hi = t_hi;
  return q;
}

TEST(RangeQueryTest, PointInsideBoxAndWindow) {
  const Trajectory t = MakeLine(1, 0, 0, 10, 0, 11);  // x = 10t over [0,10]
  EXPECT_TRUE(TrajectoryMatchesQuery(t, Box(40, 60, -5, 5, 3, 7)));
}

TEST(RangeQueryTest, RightPlaceWrongTime) {
  const Trajectory t = MakeLine(1, 0, 0, 10, 0, 11);
  // The trajectory is near x=50 only around t=5; query the same box at the
  // start of the window.
  EXPECT_FALSE(TrajectoryMatchesQuery(t, Box(40, 60, -5, 5, 0, 1)));
}

TEST(RangeQueryTest, WrongPlaceRightTime) {
  const Trajectory t = MakeLine(1, 0, 0, 10, 0, 11);
  EXPECT_FALSE(TrajectoryMatchesQuery(t, Box(40, 60, 100, 200, 3, 7)));
}

TEST(RangeQueryTest, SegmentCrossingBoxWithoutVertexInside) {
  // One long segment passes through a small box between its endpoints.
  const Trajectory t(1, {Point(-100, -100, 0), Point(100, 100, 10)});
  EXPECT_TRUE(TrajectoryMatchesQuery(t, Box(-5, 5, -5, 5, 0, 10)));
  // The same box but in a time slice when the object is elsewhere.
  EXPECT_FALSE(TrajectoryMatchesQuery(t, Box(-5, 5, -5, 5, 8, 10)));
}

TEST(RangeQueryTest, LifetimeDisjointWindow) {
  const Trajectory t = MakeLine(1, 0, 0, 1, 0, 5, 1.0, 100.0);  // [100,104]
  EXPECT_FALSE(TrajectoryMatchesQuery(t, Box(-10, 10, -10, 10, 0, 50)));
}

TEST(RangeQueryTest, EmptyAndSinglePoint) {
  EXPECT_FALSE(TrajectoryMatchesQuery(Trajectory(), Box(0, 1, 0, 1, 0, 1)));
  const Trajectory single(1, {Point(5, 5, 5)});
  EXPECT_TRUE(TrajectoryMatchesQuery(single, Box(0, 10, 0, 10, 0, 10)));
  EXPECT_FALSE(TrajectoryMatchesQuery(single, Box(6, 10, 0, 10, 0, 10)));
}

TEST(RangeQueryTest, CountMatches) {
  Dataset d;
  d.Add(MakeLine(0, 0, 0, 1, 0, 10));
  d.Add(MakeLine(1, 0, 100, 1, 0, 10));
  d.Add(MakeLine(2, 0, 200, 1, 0, 10));
  EXPECT_EQ(CountMatches(d, Box(-1, 20, -1, 101, 0, 10)), 2u);
}

TEST(RangeQueryTest, GeneratorProducesQueriesOnPopulatedSpace) {
  const Dataset d = SmallSynthetic(20, 40);
  Rng rng(3);
  const std::vector<RangeQuery> queries =
      GenerateRangeQueries(d, 50, 0.05, 0.01, &rng);
  ASSERT_EQ(queries.size(), 50u);
  size_t hits = 0;
  for (const RangeQuery& q : queries) {
    EXPECT_LT(q.x_lo, q.x_hi);
    EXPECT_LT(q.t_lo, q.t_hi);
    hits += CountMatches(d, q);
  }
  // Queries centred on recorded points must hit at least their own source.
  EXPECT_GE(hits, queries.size());
}

TEST(RangeQueryDistortionTest, IdenticalDatasetsHaveZeroError) {
  const Dataset d = SmallSynthetic(15, 40);
  Rng rng(5);
  const auto queries = GenerateRangeQueries(d, 30, 0.05, 0.01, &rng);
  const RangeQueryDistortionResult r = RangeQueryDistortion(d, d, queries);
  EXPECT_EQ(r.num_queries, 30u);
  EXPECT_DOUBLE_EQ(r.mean_absolute_error, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_relative_error, 0.0);
  EXPECT_EQ(r.total_original_matches, r.total_sanitized_matches);
}

TEST(RangeQueryDistortionTest, AnonymizationIncreasesErrorModerately) {
  const Dataset d = SmallSynthetic(40, 50);
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_TRUE(result.ok());
  Rng rng(5);
  const auto queries = GenerateRangeQueries(d, 40, 0.05, 0.02, &rng);
  const RangeQueryDistortionResult r =
      RangeQueryDistortion(d, result->sanitized, queries);
  // Anonymization moves points, so some queries answer differently (a
  // small query can even gain matches when a cluster translates into it,
  // pushing the per-query ratio above 1)...
  EXPECT_GT(r.mean_relative_error, 0.0);
  EXPECT_LT(r.mean_relative_error, 3.0);
  // ...but the aggregate answer volume stays the same order of magnitude.
  EXPECT_GT(r.total_sanitized_matches, r.total_original_matches / 4);
  EXPECT_LT(r.total_sanitized_matches, r.total_original_matches * 4);
}

TEST(SpatialDensityDivergenceTest, IdenticalIsZero) {
  const Dataset d = SmallSynthetic(10, 40);
  EXPECT_DOUBLE_EQ(SpatialDensityDivergence(d, d), 0.0);
}

TEST(SpatialDensityDivergenceTest, DisjointIsOne) {
  Dataset a, b;
  a.Add(MakeLine(0, 0, 0, 1, 0, 50));
  b.Add(MakeLine(0, 1e6, 1e6, 1, 0, 50));
  EXPECT_NEAR(SpatialDensityDivergence(a, b), 1.0, 1e-9);
}

TEST(SpatialDensityDivergenceTest, AnonymizedStaysClose) {
  const Dataset d = SmallSynthetic(40, 50);
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_TRUE(result.ok());
  const double divergence = SpatialDensityDivergence(d, result->sanitized);
  EXPECT_GT(divergence, 0.0);
  EXPECT_LT(divergence, 0.9);  // the published data still covers the city
}

TEST(SpatialDensityDivergenceTest, DegenerateInputs) {
  const Dataset d = SmallSynthetic(5, 20);
  EXPECT_DOUBLE_EQ(SpatialDensityDivergence(Dataset(), Dataset()), 0.0);
  EXPECT_DOUBLE_EQ(SpatialDensityDivergence(d, Dataset()), 1.0);
}

}  // namespace
}  // namespace wcop
