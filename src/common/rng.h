#ifndef WCOP_COMMON_RNG_H_
#define WCOP_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace wcop {

/// Deterministic random source used throughout the library.
///
/// Every stochastic component (pivot selection, requirement assignment, the
/// synthetic data generator, random points inside uncertainty disks) takes an
/// Rng& so experiments are reproducible from a single seed. The engine is
/// mt19937_64; helper methods mirror the distributions the paper uses.
/// SplitMix64 finalizer over `seed ^ stream`: derives decorrelated child
/// seeds for independent random streams (one Rng per cluster/worker) from a
/// single experiment seed. Deterministic and order-free, so parallel and
/// serial executions that seed per-item streams this way draw identical
/// values regardless of scheduling.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed ^ (stream + 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard-normal draw scaled to the given mean and stddev.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wcop

#endif  // WCOP_COMMON_RNG_H_
