file(REMOVE_RECURSE
  "libwcop_exp.a"
)
