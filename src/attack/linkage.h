#ifndef WCOP_ATTACK_LINKAGE_H_
#define WCOP_ATTACK_LINKAGE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "attack/candidate_source.h"
#include "common/result.h"
#include "common/run_context.h"
#include "common/telemetry.h"
#include "distance/edr.h"

namespace wcop {
namespace attack {

/// Cross-release linkage attack over consecutive `window_NNNNN.wst`
/// publications of the continuous pipeline (DESIGN.md §14). Fragment ids
/// are freshly assigned per window, so the published releases carry no
/// common identifier — but an adversary can still try to *join* a user's
/// fragment in window w to its continuation in window w+1 by motion
/// continuity: extrapolate the fragment's end at constant velocity, gate
/// the next release's index by time and dilated MBR, then rank the gated
/// candidates by predicted-position error refined with a tail-to-head EDR
/// match (early-abandoned under the best-so-far cutoff). Ground truth is
/// the fragments' parent (source trajectory) id, which the attack itself
/// never reads.
struct LinkageOptions {
  /// Temporal gate: a candidate continuation must start within
  /// [end - overlap_slack, end + max_gap_seconds] of the fragment's end.
  double max_gap_seconds = 1800.0;
  double overlap_slack_seconds = 120.0;

  /// Spatial gate (metres): candidates whose MBR is farther than this from
  /// the fragment's constant-velocity extrapolation (evaluated at the
  /// candidate's start time) are never read. Gating on the prediction
  /// rather than the fragment's last position keeps fast movers with long
  /// gaps linkable.
  double gate_radius = 1000.0;

  /// EDR refinement: tolerance triple plus how many tail/head points are
  /// aligned. The top `beam` candidates by predicted-position error get
  /// the exact EDR treatment; the rest keep their coarse score.
  EdrTolerance tolerance{100.0, 100.0, 120.0};
  size_t edr_points = 16;
  size_t beam = 8;

  int threads = 1;
  const RunContext* run_context = nullptr;
  /// `attack.linkage.attempted` / `attack.linkage.joined` counters.
  telemetry::Telemetry* telemetry = nullptr;
  /// (boundaries done, boundaries total), on the coordinating thread.
  std::function<void(size_t, size_t)> progress;
};

struct LinkageResult {
  size_t windows = 0;
  size_t boundaries = 0;        ///< consecutive window pairs examined
  uint64_t fragments = 0;       ///< fragments in the earlier window of
                                ///< each boundary
  uint64_t pairs_gated = 0;     ///< candidates surviving the time+MBR gate
  uint64_t joins_attempted = 0; ///< fragments whose user does continue
                                ///< into the next window (ground truth)
  uint64_t joins_correct = 0;   ///< of those, predicted continuation has
                                ///< the right user
  double linkage_rate = 0.0;    ///< joins_correct / joins_attempted
  size_t users_total = 0;       ///< users with >= 1 consecutive-window pair
  size_t users_tracked = 0;     ///< users whose *every* consecutive pair
                                ///< was correctly joined
  double trackable_fraction = 0.0;
};

/// Runs the attack over `window_paths` in the given (chronological) order.
/// Fewer than two windows yields an empty result (nothing to join).
/// Results are byte-identical across thread counts.
Result<LinkageResult> RunLinkageAttack(
    const std::vector<std::string>& window_paths,
    const LinkageOptions& options);

/// Lists `window_NNNNN.wst` files under `dir` in window order (the
/// continuous pipeline's naming scheme). kNotFound when the directory
/// holds none.
Result<std::vector<std::string>> ListWindowStores(const std::string& dir);

}  // namespace attack
}  // namespace wcop

#endif  // WCOP_ATTACK_LINKAGE_H_
