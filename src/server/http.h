#ifndef WCOP_SERVER_HTTP_H_
#define WCOP_SERVER_HTTP_H_

/// Minimal HTTP/1.0 over a unix-domain socket — the service's local
/// transport. Deliberately tiny: one accept thread, sequential request
/// handling, Connection: close. The anonymization work happens on the
/// service's worker pool, so the endpoint only ever does small O(1)
/// request/response bookkeeping; a single-threaded loop keeps the whole
/// transport auditable and immune to connection-level races.
///
/// Defensive posture (the endpoint faces other processes, not the open
/// internet, but still fails safe): per-connection I/O timeouts so a
/// stalled client cannot wedge the loop, hard caps on header and body
/// size, and malformed requests answered with 400 rather than crashing.

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"

namespace wcop {
namespace server {

struct HttpRequest {
  std::string method;  ///< "GET", "POST"
  std::string path;    ///< "/jobs/42"
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string body;
  /// Serialized as the Content-Type header; the Prometheus endpoint sets
  /// "text/plain; version=0.0.4", traces set "application/json".
  std::string content_type = "text/plain";
};

/// Standard reason phrase for the handful of codes the service uses.
const char* HttpReasonPhrase(int status);

class HttpServer {
 public:
  struct Options {
    std::string socket_path;  ///< required; unlinked + rebound on Listen
    int io_timeout_ms = 5000;
  };
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds the socket (replacing a stale one left by a crashed daemon),
  /// starts the accept thread, and serves until Stop().
  static Result<std::unique_ptr<HttpServer>> Listen(const Options& options,
                                                    Handler handler);

  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Stops accepting, joins the accept thread, unlinks the socket.
  /// Idempotent.
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }

 private:
  HttpServer() = default;

  void AcceptLoop();
  void HandleConnection(int fd);

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
};

/// Client half: one blocking request over the unix socket. Used by the
/// ServiceClient and directly testable against HttpServer.
Result<HttpResponse> UnixHttpCall(const std::string& socket_path,
                                  const std::string& method,
                                  const std::string& path,
                                  const std::string& body,
                                  int timeout_ms = 10000);

}  // namespace server
}  // namespace wcop

#endif  // WCOP_SERVER_HTTP_H_
