file(REMOVE_RECURSE
  "CMakeFiles/grid_sweep_test.dir/grid_sweep_test.cc.o"
  "CMakeFiles/grid_sweep_test.dir/grid_sweep_test.cc.o.d"
  "grid_sweep_test"
  "grid_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
