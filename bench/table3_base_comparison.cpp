// Reproduces Table 3: base comparison of WCOP-NV, WCOP-CT, WCOP-SA
// (Traclus and Convoys variants) and WCOP-B on the same dataset with the
// same parameters (k_max = 5, delta_max = 250).
//
// Absolute numbers differ from the paper (synthetic data, reduced point
// density); the comparison *shape* is the reproduction target: NV worst on
// distortion/discernibility, CT better, SA-Traclus many more
// sub-trajectories/clusters with the lowest distortion, WCOP-B trimming
// CT's distortion by editing a handful of demanding trajectories.
//
// Run:  ./table3_base_comparison [--points=120] [--full]
//       [--json-out=table3.json]   one metrics record per algorithm
//       [--trace-out=trace.json]   Chrome trace of the WCOP-CT run

#include <cstdio>
#include <iostream>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/table_printer.h"

using namespace wcop;
using namespace wcop::bench;

namespace {

struct NamedReport {
  std::string name;
  AnonymizationReport report;
};

std::string Fmt(double v) { return FormatSignificant(v, 4); }

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const BenchScale scale = BenchScale::FromArgs(args);
  const int k_max = static_cast<int>(args.GetInt("kmax", 5));
  const double delta_max = args.GetDouble("dmax", 250.0);
  Dataset dataset = MakeBenchDataset(scale);
  AssignPaperRequirements(&dataset, k_max, delta_max, scale.seed + 1);

  WcopOptions options;
  options.seed = scale.seed + 2;
  options.threads = scale.threads;

  JsonOut json_out(args);
  const std::string trace_out = args.GetString("trace-out", "");
  const std::vector<std::pair<std::string, double>> config = {
      {"points", static_cast<double>(scale.points)},
      {"trajectories", static_cast<double>(scale.trajectories)},
      {"kmax", static_cast<double>(k_max)},
      {"dmax", delta_max},
  };

  std::vector<NamedReport> reports;

  {
    // Each algorithm runs with its own telemetry sink so the per-bench
    // metrics records are independent, not cumulative.
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    Result<AnonymizationResult> r = RunWcopNv(dataset, options);
    if (!r.ok()) {
      std::cerr << "WCOP-NV failed: " << r.status() << "\n";
      return 1;
    }
    json_out.Add("table3/WCOP-NV", config, r->report.runtime_seconds,
                 r->report.metrics);
    reports.push_back({"WCOP-NV", r->report});
  }
  {
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    Result<AnonymizationResult> r = RunWcopCt(dataset, options);
    if (!r.ok()) {
      std::cerr << "WCOP-CT failed: " << r.status() << "\n";
      return 1;
    }
    if (!trace_out.empty()) {
      Status s = tel.WriteChromeTrace(trace_out);
      if (!s.ok()) {
        std::cerr << "trace export failed: " << s << "\n";
        return 1;
      }
      std::printf("wrote Chrome trace of the WCOP-CT run to %s\n",
                  trace_out.c_str());
    }
    json_out.Add("table3/WCOP-CT", config, r->report.runtime_seconds,
                 r->report.metrics);
    reports.push_back({"WCOP-CT", r->report});
  }
  {
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    TraclusOptions traclus_options = BenchTraclusOptions();
    traclus_options.telemetry = &tel;
    TraclusSegmenter segmenter(traclus_options);
    Result<WcopSaResult> r = RunWcopSa(dataset, &segmenter, options);
    if (!r.ok()) {
      std::cerr << "WCOP-SA Traclus failed: " << r.status() << "\n";
      return 1;
    }
    json_out.Add("table3/WCOP-SA-Traclus", config,
                 r->anonymization.report.runtime_seconds,
                 r->anonymization.report.metrics);
    reports.push_back({"WCOP-SA Traclus", r->anonymization.report});
  }
  {
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    ConvoyOptions convoy_options = BenchConvoyOptions();
    convoy_options.telemetry = &tel;
    ConvoySegmenter segmenter(convoy_options);
    Result<WcopSaResult> r = RunWcopSa(dataset, &segmenter, options);
    if (!r.ok()) {
      std::cerr << "WCOP-SA Convoys failed: " << r.status() << "\n";
      return 1;
    }
    json_out.Add("table3/WCOP-SA-Convoys", config,
                 r->anonymization.report.runtime_seconds,
                 r->anonymization.report.metrics);
    reports.push_back({"WCOP-SA Convoys", r->anonymization.report});
  }
  {
    // WCOP-B: as in the paper's Table 3 run, edit step 1, with a bound that
    // asks for ~20% less distortion than plain CT achieved. When the bound
    // is unreachable, report the best round of the sweep (the operating
    // point an analyst would pick).
    WcopBOptions b_options;
    b_options.distort_max = reports[1].report.total_distortion * 0.8;
    b_options.step = 1;
    b_options.max_edit_size = 16;
    telemetry::Telemetry sweep_tel;
    options.telemetry = &sweep_tel;
    Result<WcopBResult> swept = RunWcopB(dataset, options, b_options);
    if (!swept.ok()) {
      std::cerr << "WCOP-B failed: " << swept.status() << "\n";
      return 1;
    }
    size_t best_edit = swept->final_edit_size;
    double best_total = swept->anonymization.report.total_distortion;
    for (const WcopBRound& round : swept->rounds) {
      if (round.total_distortion < best_total) {
        best_total = round.total_distortion;
        best_edit = round.edit_size;
      }
    }
    std::printf("WCOP-B: bound %s; best sweep point edits the %zu most "
                "demanding trajectories\n",
                swept->bound_satisfied ? "met" : "not reachable in sweep",
                best_edit);
    // Re-run to the best operating point so the reported row is the full,
    // consistent report of that round (runs are seed-deterministic).
    b_options.distort_max = best_total * (1.0 + 1e-9);
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    Result<WcopBResult> best = RunWcopB(dataset, options, b_options);
    if (!best.ok()) {
      std::cerr << "WCOP-B failed: " << best.status() << "\n";
      return 1;
    }
    json_out.Add("table3/WCOP-B", config,
                 best->anonymization.report.runtime_seconds,
                 best->anonymization.report.metrics);
    reports.push_back({"WCOP-B", best->anonymization.report});
  }
  options.telemetry = nullptr;

  PrintHeader(
      "Table 3: base comparison (k_max=5, delta_max=250, same dataset)");
  std::vector<std::string> header = {"statistic"};
  for (const NamedReport& nr : reports) {
    header.push_back(nr.name);
  }
  TablePrinter table(header);
  auto row = [&](const std::string& name,
                 auto getter) {
    std::vector<std::string> cells = {name};
    for (const NamedReport& nr : reports) {
      cells.push_back(getter(nr.report));
    }
    table.AddRow(cells);
  };
  row("# (sub-)trajectories", [](const AnonymizationReport& r) {
    return std::to_string(r.input_trajectories);
  });
  row("# clusters", [](const AnonymizationReport& r) {
    return std::to_string(r.num_clusters);
  });
  row("# trajectories moved to trash", [](const AnonymizationReport& r) {
    return std::to_string(r.trashed_trajectories);
  });
  row("# points moved to trash", [](const AnonymizationReport& r) {
    return std::to_string(r.trashed_points);
  });
  row("discernibility", [](const AnonymizationReport& r) {
    return Fmt(r.discernibility);
  });
  row("# created points", [](const AnonymizationReport& r) {
    return std::to_string(r.created_points);
  });
  row("# deleted points", [](const AnonymizationReport& r) {
    return std::to_string(r.deleted_points);
  });
  row("avg spatial translation", [](const AnonymizationReport& r) {
    return Fmt(r.avg_spatial_translation);
  });
  row("avg temporal translation", [](const AnonymizationReport& r) {
    return Fmt(r.avg_temporal_translation);
  });
  row("total distortion", [](const AnonymizationReport& r) {
    return Fmt(r.total_distortion);
  });
  row("runtime (seconds)", [](const AnonymizationReport& r) {
    return Fmt(r.runtime_seconds);
  });
  table.Print(std::cout);

  // Shape assertions the paper's Table 3 supports (reported, not fatal).
  const auto& nv = reports[0].report;
  const auto& ct = reports[1].report;
  const auto& sa_traclus = reports[2].report;
  const auto& b = reports[4].report;
  std::printf("\nshape checks vs paper:\n");
  std::printf("  [%s] WCOP-CT distortion < WCOP-NV\n",
              ct.total_distortion < nv.total_distortion ? "ok" : "MISMATCH");
  std::printf("  [%s] WCOP-CT creates more clusters than WCOP-NV\n",
              ct.num_clusters > nv.num_clusters ? "ok" : "MISMATCH");
  std::printf("  [%s] SA-Traclus has the most input units and clusters\n",
              sa_traclus.input_trajectories > ct.input_trajectories &&
                      sa_traclus.num_clusters > ct.num_clusters
                  ? "ok"
                  : "MISMATCH");
  std::printf("  [%s] SA-Traclus achieves the lowest total distortion\n",
              sa_traclus.total_distortion <= ct.total_distortion
                  ? "ok"
                  : "MISMATCH");
  std::printf("  [%s] WCOP-B distortion <= WCOP-CT\n",
              b.total_distortion <= ct.total_distortion ? "ok" : "MISMATCH");
  if (!json_out.Flush()) {
    return 1;
  }
  return 0;
}
