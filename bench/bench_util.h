#ifndef WCOP_BENCH_BENCH_UTIL_H_
#define WCOP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "anon/report_json.h"
#include "common/arg_parser.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/synthetic.h"
#include "segment/convoy.h"
#include "segment/traclus.h"
#include "traj/dataset.h"

namespace wcop {
namespace bench {

/// Shared scale parameters of the experiment harness. Every bench binary
/// accepts the same flags; the defaults reproduce the paper's dataset
/// *structure* (238 trajectories, 72 users, Beijing-scale region) at a
/// point density where the quadratic EDR clustering completes in seconds.
/// `--full` switches to the paper's full 343k-point scale.
struct BenchScale {
  size_t trajectories = 238;
  size_t users = 72;
  size_t points = 120;
  uint64_t seed = 7;
  bool full = false;
  /// Worker threads for the EDR hot paths (0 = all cores, 1 = serial).
  /// Timing changes, results do not — see DESIGN.md "Parallel execution".
  int threads = 0;

  static BenchScale FromArgs(const ArgParser& args) {
    BenchScale s;
    s.full = args.GetBool("full", false);
    s.trajectories =
        static_cast<size_t>(args.GetInt("trajectories", 238));
    s.points = static_cast<size_t>(args.GetInt("points", s.full ? 1442 : 120));
    s.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
    s.threads = static_cast<int>(args.GetInt("threads", 0));
    return s;
  }
};

/// Builds the synthetic GeoLife stand-in at the requested scale (no
/// requirements assigned yet — each experiment assigns its own (K, Delta)
/// distribution, as the paper does per experiment).
inline Dataset MakeBenchDataset(const BenchScale& scale) {
  SyntheticOptions options;  // defaults mirror Table 2
  options.seed = scale.seed;
  options.num_trajectories = scale.trajectories;
  options.num_users = scale.users;
  options.points_per_trajectory = scale.points;
  // Keep trip duration paper-like even at reduced point counts by widening
  // the sampling interval (fewer samples over the same span).
  options.sampling_interval = 3.0 * 1442.0 / static_cast<double>(scale.points);
  // A GeoLife-like mix of shared routes, ad hoc trips and off-network
  // outliers: enough solitary movement that universal-k clustering really
  // over-anonymizes and the demanding-trajectory editing of WCOP-B has
  // structure to exploit.
  options.popular_route_prob = 0.5;
  options.companion_prob = 0.25;
  options.outlier_fraction = 0.08;
  Dataset dataset = GenerateSyntheticGeoLife(options).value();
  return dataset;
}

/// Assigns the paper's experimental requirement distribution
/// k ~ U{2..k_max}, delta ~ U[10, delta_max].
inline void AssignPaperRequirements(Dataset* dataset, int k_max,
                                    double delta_max, uint64_t seed) {
  Rng rng(seed);
  AssignUniformRequirements(dataset, 2, k_max, 10.0, delta_max, &rng);
}

/// Convoy parameters used by all SA-Convoys benches: co-movement within
/// 250 m for at least 3 consecutive minutes, pairs and up.
inline ConvoyOptions BenchConvoyOptions() {
  ConvoyOptions options;
  options.min_objects = 2;
  options.eps = 250.0;
  options.min_duration_snapshots = 3;
  options.snapshot_interval = 60.0;
  return options;
}

/// TRACLUS parameters used by all SA-Traclus benches: slight MDL advantage
/// so sub-trajectories land near the paper's ~19-point granularity.
inline TraclusOptions BenchTraclusOptions() {
  TraclusOptions options;
  options.mdl_advantage = 4.0;
  options.min_sub_trajectory_points = 4;
  return options;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Machine-readable bench output behind the shared `--json-out=FILE` flag:
/// each benchmark configuration appends one record
///
///   {"bench":"table3","config":{"points":120,...},"seconds":1.23,
///    "metrics":{"counters":{...},"gauges":{...},"histograms":{...}},
///    "delta":{"counters":{...}}}
///
/// `delta.counters` is this phase's counter increase over the previous
/// Add() — benches typically share one registry across configurations, so
/// the cumulative `metrics.counters` conflates phases while the delta
/// isolates each one (e.g. distance calls attributable to *this* config).
///
/// Flush() writes the array. A missing flag turns everything into a
/// no-op so benches can call Add/Flush unconditionally.
class JsonOut {
 public:
  explicit JsonOut(const ArgParser& args)
      : path_(args.GetString("json-out", "")) {}

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& bench,
           const std::vector<std::pair<std::string, double>>& config,
           double seconds, const telemetry::MetricsSnapshot& metrics) {
    if (!enabled()) {
      return;
    }
    std::ostringstream os;
    os << "{\"bench\":\"" << bench << "\",\"config\":{";
    for (size_t i = 0; i < config.size(); ++i) {
      if (i != 0) {
        os << ",";
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.10g", config[i].second);
      os << "\"" << config[i].first << "\":" << buf;
    }
    char seconds_buf[64];
    std::snprintf(seconds_buf, sizeof(seconds_buf), "%.10g", seconds);
    os << "},\"seconds\":" << seconds_buf
       << ",\"metrics\":" << MetricsToJson(metrics);
    os << ",\"delta\":{\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : metrics.counters) {
      const auto it = last_counters_.find(name);
      // A phase that runs on a fresh registry restarts from zero; treat a
      // shrinking counter as a restart and report the absolute value.
      const uint64_t delta =
          (it != last_counters_.end() && value >= it->second)
              ? value - it->second
              : value;
      if (delta == 0) {
        continue;
      }
      os << (first ? "" : ",") << "\"" << name << "\":" << delta;
      first = false;
    }
    os << "}}}";
    last_counters_.clear();
    for (const auto& [name, value] : metrics.counters) {
      last_counters_[name] = value;
    }
    records_.push_back(os.str());
  }

  /// Writes the accumulated records; reports failure on stderr and returns
  /// false so main() can propagate a non-zero exit.
  bool Flush() const {
    if (!enabled()) {
      return true;
    }
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "cannot open --json-out file: %s\n", path_.c_str());
      return false;
    }
    out << "[";
    for (size_t i = 0; i < records_.size(); ++i) {
      out << (i == 0 ? "\n  " : ",\n  ") << records_[i];
    }
    out << "\n]\n";
    if (!out) {
      std::fprintf(stderr, "write failed: %s\n", path_.c_str());
      return false;
    }
    std::printf("wrote %zu bench records to %s\n", records_.size(),
                path_.c_str());
    return true;
  }

 private:
  std::string path_;
  std::vector<std::string> records_;
  /// Counter values at the previous Add(), for per-phase deltas.
  std::map<std::string, uint64_t> last_counters_;
};

}  // namespace bench
}  // namespace wcop

#endif  // WCOP_BENCH_BENCH_UTIL_H_
