#include <gtest/gtest.h>

#include "anon/nwa.h"
#include "geo/disk.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;
using testing_util::SmallSynthetic;

/// NWA clusters by synchronized Euclidean distance, so it requires
/// trajectories to overlap in time (the original algorithm preprocesses the
/// data into co-temporal equivalence classes). Emulate that preprocessing:
/// shift every trajectory to depart at t = 0.
Dataset CoTemporal(Dataset d) {
  for (Trajectory& t : d.mutable_trajectories()) {
    const double t0 = t.StartTime();
    for (Point& p : t.mutable_points()) {
      p.t -= t0;
    }
  }
  return d;
}

TEST(NwaTest, ProducesClustersMeetingUniversalK) {
  const Dataset d = CoTemporal(SmallSynthetic(30, 40));
  Result<AnonymizationResult> result = RunNwa(d, /*k=*/3, /*delta=*/200.0);
  ASSERT_TRUE(result.ok()) << result.status();
  for (const AnonymityCluster& c : result->clusters) {
    EXPECT_GE(c.members.size(), 3u);
  }
  EXPECT_EQ(result->sanitized.size() + result->trashed_ids.size(), d.size());
}

TEST(NwaTest, OutputsAreSpatiallyColocalizedWithPivotTimeline) {
  const Dataset d = CoTemporal(SmallSynthetic(30, 40));
  Result<AnonymizationResult> result = RunNwa(d, 3, 200.0);
  ASSERT_TRUE(result.ok());
  // Every published trajectory within a cluster has the pivot's timestamps
  // and stays inside the delta/2 disk.
  for (const AnonymityCluster& c : result->clusters) {
    const Trajectory* pivot = result->sanitized.FindById(d[c.pivot].id());
    ASSERT_NE(pivot, nullptr);
    for (size_t m : c.members) {
      const Trajectory* member = result->sanitized.FindById(d[m].id());
      ASSERT_NE(member, nullptr);
      ASSERT_EQ(member->size(), pivot->size());
      for (size_t i = 0; i < member->size(); ++i) {
        EXPECT_DOUBLE_EQ((*member)[i].t, (*pivot)[i].t);
        EXPECT_TRUE(
            InsideDisk((*member)[i], (*pivot)[i], c.delta / 2.0, 1e-6));
      }
    }
  }
}

TEST(NwaTest, SpatialOnlyMeansNoCreatedOrDeletedPoints) {
  const Dataset d = CoTemporal(SmallSynthetic(20, 40));
  Result<AnonymizationResult> result = RunNwa(d, 2, 300.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.created_points, 0u);
  EXPECT_EQ(result->report.deleted_points, 0u);
  EXPECT_EQ(result->report.total_temporal_translation, 0.0);
}

TEST(NwaTest, RejectsBadParameters) {
  const Dataset d = SmallSynthetic(10, 30);
  EXPECT_FALSE(RunNwa(d, 0, 100.0).ok());
  EXPECT_FALSE(RunNwa(d, 2, -1.0).ok());
  EXPECT_FALSE(RunNwa(Dataset(), 2, 100.0).ok());
}

TEST(NwaPreprocessTest, GroupsByQuantizedSpan) {
  Dataset d;
  // Two trajectories spanning [0, 100] and one spanning [200, 300]: with a
  // 50 s period, the first pair shares an equivalence class.
  d.Add(MakeLine(0, 0, 0, 1, 0, 101));
  d.Add(MakeLine(1, 0, 10, 1, 0, 101));
  d.Add(MakeLine(2, 0, 0, 1, 0, 101, 1.0, 200.0));
  const NwaPreprocessResult pre = NwaPreprocess(d, 50.0, 2, 1);
  EXPECT_EQ(pre.classes.size(), 2u);
  EXPECT_EQ(pre.dropped_trajectories, 0u);
  size_t total = 0;
  for (const Dataset& klass : pre.classes) {
    total += klass.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(NwaPreprocessTest, TrimsPartialPeriods) {
  Dataset d;
  d.Add(MakeLine(0, 0, 0, 1, 0, 101, 1.0, 7.0));  // spans [7, 107]
  const NwaPreprocessResult pre = NwaPreprocess(d, 50.0, 2, 1);
  ASSERT_EQ(pre.classes.size(), 1u);
  const Trajectory& trimmed = pre.classes[0][0];
  // Whole periods inside [7, 107] are [50, 100].
  EXPECT_GE(trimmed.StartTime(), 50.0);
  EXPECT_LE(trimmed.EndTime(), 100.0);
  EXPECT_GT(pre.trimmed_points, 0u);
}

TEST(NwaPreprocessTest, DropsTooShortAndTooSmallClasses) {
  Dataset d;
  d.Add(MakeLine(0, 0, 0, 1, 0, 5, 1.0, 12.0));  // [12, 16]: trimmed away
  d.Add(MakeLine(1, 0, 0, 1, 0, 101));
  const NwaPreprocessResult pre = NwaPreprocess(d, 50.0, 2, 2);
  // Trajectory 0 vanishes inside one period; trajectory 1's class has
  // size 1 < min_class_size.
  EXPECT_TRUE(pre.classes.empty());
  EXPECT_EQ(pre.dropped_trajectories, 2u);
}

TEST(NwaWithPreprocessingTest, RunsOnNonCotemporalData) {
  // The bare RunNwa fails on temporally scattered data; the full pipeline
  // handles it by construction.
  const Dataset d = SmallSynthetic(30, 40);
  Result<AnonymizationResult> r =
      RunNwaWithPreprocessing(d, /*k=*/2, /*delta=*/300.0,
                              /*period_seconds=*/60.0);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->sanitized.size() + r->trashed_ids.size(), d.size());
  for (const AnonymityCluster& c : r->clusters) {
    EXPECT_GE(c.members.size(), 2u);
    // Remapped member indices refer to the original dataset.
    for (size_t m : c.members) {
      EXPECT_LT(m, d.size());
    }
  }
  EXPECT_GT(r->report.deleted_points, 0u);  // trimming happened
}

}  // namespace
}  // namespace wcop
