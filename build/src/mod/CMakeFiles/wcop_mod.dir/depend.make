# Empty dependencies file for wcop_mod.
# This may be replaced when dependencies are built.
