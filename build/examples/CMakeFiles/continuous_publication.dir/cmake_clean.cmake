file(REMOVE_RECURSE
  "CMakeFiles/continuous_publication.dir/continuous_publication.cpp.o"
  "CMakeFiles/continuous_publication.dir/continuous_publication.cpp.o.d"
  "continuous_publication"
  "continuous_publication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_publication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
