# Empty compiler generated dependencies file for wcop_anon.
# This may be replaced when dependencies are built.
