#include "common/retry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace wcop {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

RetryPolicy NoJitterPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = milliseconds(10);
  policy.multiplier = 2.0;
  policy.max_backoff = milliseconds(50);
  policy.jitter = 0.0;
  policy.sleep_between_attempts = false;
  return policy;
}

// ---------------------------------------------------------------------------
// Retryability classification.
// ---------------------------------------------------------------------------

TEST(RetryTest, OnlyIoErrorIsRetryable) {
  EXPECT_TRUE(IsRetryable(Status::IoError("nfs blip")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::DataLoss("corrupt")));
  EXPECT_FALSE(IsRetryable(Status::ParseError("bad cell")));
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("late")));
  EXPECT_FALSE(IsRetryable(Status::Cancelled("stop")));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("nope")));
  EXPECT_FALSE(IsRetryable(Status::Internal("bug")));
}

// ---------------------------------------------------------------------------
// Backoff schedule: exact, deterministic, capped.
// ---------------------------------------------------------------------------

TEST(RetryTest, BackoffDoublesAndCaps) {
  const RetryPolicy policy = NoJitterPolicy();
  EXPECT_EQ(BackoffForAttempt(policy, 0), nanoseconds(milliseconds(10)));
  EXPECT_EQ(BackoffForAttempt(policy, 1), nanoseconds(milliseconds(20)));
  EXPECT_EQ(BackoffForAttempt(policy, 2), nanoseconds(milliseconds(40)));
  // 80ms would exceed the cap.
  EXPECT_EQ(BackoffForAttempt(policy, 3), nanoseconds(milliseconds(50)));
  EXPECT_EQ(BackoffForAttempt(policy, 9), nanoseconds(milliseconds(50)));
}

TEST(RetryTest, JitterIsDeterministicAndBounded) {
  RetryPolicy policy = NoJitterPolicy();
  policy.jitter = 0.25;
  policy.jitter_seed = 42;
  for (int attempt = 0; attempt < 6; ++attempt) {
    const nanoseconds jittered = BackoffForAttempt(policy, attempt);
    // Same (seed, attempt) -> same pause, every time.
    EXPECT_EQ(jittered, BackoffForAttempt(policy, attempt)) << attempt;
    RetryPolicy no_jitter = policy;
    no_jitter.jitter = 0.0;
    const auto base =
        static_cast<double>(BackoffForAttempt(no_jitter, attempt).count());
    const auto value = static_cast<double>(jittered.count());
    EXPECT_GE(value, base * 0.75 - 1.0) << attempt;
    EXPECT_LE(value, base * 1.25 + 1.0) << attempt;
  }
  // A different seed perturbs the schedule (with overwhelming probability
  // some attempt differs).
  RetryPolicy other_seed = policy;
  other_seed.jitter_seed = 43;
  bool any_different = false;
  for (int attempt = 0; attempt < 6; ++attempt) {
    any_different |=
        BackoffForAttempt(policy, attempt) != BackoffForAttempt(other_seed,
                                                                attempt);
  }
  EXPECT_TRUE(any_different);
}

// ---------------------------------------------------------------------------
// RetryCall semantics.
// ---------------------------------------------------------------------------

TEST(RetryTest, FirstSuccessShortCircuits) {
  int calls = 0;
  int attempts = 0;
  Status s = RetryCall(
      NoJitterPolicy(),
      [&]() {
        ++calls;
        return Status::OK();
      },
      &attempts);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryTest, TransientFailureRecovers) {
  int calls = 0;
  int attempts = 0;
  Status s = RetryCall(
      NoJitterPolicy(),
      [&]() {
        return ++calls < 3 ? Status::IoError("transient") : Status::OK();
      },
      &attempts);
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(attempts, 3);
}

TEST(RetryTest, ExhaustionReturnsLastError) {
  int calls = 0;
  int attempts = 0;
  Status s = RetryCall(
      NoJitterPolicy(),
      [&]() {
        ++calls;
        return Status::IoError("persistent " + std::to_string(calls));
      },
      &attempts);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(calls, 4);  // max_attempts
  EXPECT_EQ(attempts, 4);
  EXPECT_NE(s.message().find("persistent 4"), std::string::npos) << s;
}

TEST(RetryTest, NonRetryableFailureShortCircuits) {
  int calls = 0;
  int attempts = 0;
  Status s = RetryCall(
      NoJitterPolicy(),
      [&]() {
        ++calls;
        return Status::DataLoss("corrupt");
      },
      &attempts);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryTest, SingleAttemptPolicyNeverRetries) {
  RetryPolicy policy = NoJitterPolicy();
  policy.max_attempts = 1;
  int calls = 0;
  Status s = RetryCall(policy, [&]() {
    ++calls;
    return Status::IoError("transient");
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ResultFlavourReturnsValue) {
  int calls = 0;
  Result<int> r = RetryResultCall<int>(NoJitterPolicy(), [&]() -> Result<int> {
    if (++calls < 2) {
      return Status::IoError("transient");
    }
    return 17;
  });
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, 17);
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, ResultFlavourPropagatesNonRetryable) {
  Result<int> r = RetryResultCall<int>(NoJitterPolicy(), [&]() -> Result<int> {
    return Status::ParseError("bad");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Observability: retry.attempts / retry.exhausted counters.
// ---------------------------------------------------------------------------

TEST(RetryTest, RecordsAttemptsOnSuccess) {
  telemetry::MetricsRegistry metrics;
  RetryPolicy policy = NoJitterPolicy();
  policy.metrics = &metrics;
  int calls = 0;
  Status s = RetryCall(policy, [&]() {
    return ++calls < 3 ? Status::IoError("transient") : Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s;
  const telemetry::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("retry.attempts"), 3u);
  // A recovered blip is not exhaustion.
  EXPECT_EQ(snapshot.CounterValue("retry.exhausted"), 0u);
}

TEST(RetryTest, RecordsExhaustionWhenEveryAttemptFailsRetryably) {
  telemetry::MetricsRegistry metrics;
  RetryPolicy policy = NoJitterPolicy();  // max_attempts = 4
  policy.metrics = &metrics;
  Status s = RetryCall(policy, [&]() { return Status::IoError("down"); });
  ASSERT_FALSE(s.ok());
  const telemetry::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("retry.attempts"), 4u);
  EXPECT_EQ(snapshot.CounterValue("retry.exhausted"), 1u);
}

TEST(RetryTest, NonRetryableFailureIsNotExhaustion) {
  // kDataLoss short-circuits on the first attempt: one attempt recorded,
  // no exhaustion — the backend is not "down", the data is bad.
  telemetry::MetricsRegistry metrics;
  RetryPolicy policy = NoJitterPolicy();
  policy.metrics = &metrics;
  Status s = RetryCall(policy, [&]() { return Status::DataLoss("corrupt"); });
  ASSERT_FALSE(s.ok());
  const telemetry::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("retry.attempts"), 1u);
  EXPECT_EQ(snapshot.CounterValue("retry.exhausted"), 0u);
}

TEST(RetryTest, CountersAccumulateAcrossCalls) {
  telemetry::MetricsRegistry metrics;
  RetryPolicy policy = NoJitterPolicy();
  policy.metrics = &metrics;
  EXPECT_TRUE(RetryCall(policy, [] { return Status::OK(); }).ok());
  EXPECT_FALSE(RetryCall(policy, [] { return Status::IoError("x"); }).ok());
  const telemetry::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("retry.attempts"), 1u + 4u);
  EXPECT_EQ(snapshot.CounterValue("retry.exhausted"), 1u);
}

TEST(RetryTest, ResultFlavourSharesTheSameCounters) {
  telemetry::MetricsRegistry metrics;
  RetryPolicy policy = NoJitterPolicy();
  policy.metrics = &metrics;
  Result<int> r = RetryResultCall<int>(policy, [&]() -> Result<int> {
    return Status::IoError("down");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(metrics.Snapshot().CounterValue("retry.exhausted"), 1u);
}

// With sleeping enabled the wall-clock pause matches the schedule at least
// approximately (lower bound only; CI machines can oversleep freely).
TEST(RetryTest, SleepsAtLeastTheScheduledBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = milliseconds(20);
  policy.jitter = 0.0;
  policy.sleep_between_attempts = true;
  const auto start = std::chrono::steady_clock::now();
  Status s = RetryCall(policy, [&]() { return Status::IoError("x"); });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(s.ok());
  EXPECT_GE(elapsed, milliseconds(20));
}

}  // namespace
}  // namespace wcop
