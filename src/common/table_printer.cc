#include "common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace wcop {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  // Tolerate mismatched rows instead of asserting: short rows are padded
  // with empty cells, long rows truncated to the header width.
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

namespace {

void WriteCsvCell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (char ch : cell) {
    if (ch == '"') {
      os << '"';
    }
    os << ch;
  }
  os << '"';
}

void WriteCsvRow(std::ostream& os, const std::vector<std::string>& row) {
  for (size_t c = 0; c < row.size(); ++c) {
    if (c != 0) {
      os << ',';
    }
    WriteCsvCell(os, row[c]);
  }
  os << '\n';
}

}  // namespace

void TablePrinter::PrintCsv(std::ostream& os) const {
  WriteCsvRow(os, header_);
  for (const auto& row : rows_) {
    WriteCsvRow(os, row);
  }
}

std::string FormatSignificant(double value, int digits) {
  if (!std::isfinite(value)) {
    return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

}  // namespace wcop
