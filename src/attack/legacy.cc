/// Implementation of the legacy anon/attack.h entry points, routed through
/// the wcop::attack subsystem so the repo carries exactly one attack
/// engine: SimulateLinkageAttack is the in-memory face of the
/// re-identification audit (src/attack/reident.h), now honoring
/// RunContext deadlines/budgets and counting candidate evaluations on the
/// shared `attack.*` telemetry names; the tracking adversary stays a
/// dataset-level simulation but gains the same RunContext/Telemetry
/// wiring.

#include "anon/attack.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "attack/candidate_source.h"
#include "attack/reident.h"
#include "common/rng.h"

namespace wcop {

Result<AttackResult> SimulateLinkageAttack(const Dataset& original,
                                           const Dataset& published,
                                           const AttackOptions& options) {
  if (original.empty() || published.empty()) {
    return Status::InvalidArgument("attack needs non-empty datasets");
  }
  attack::DatasetCandidateSource original_source(original);
  attack::DatasetCandidateSource published_source(published);

  attack::ReidentOptions reident;
  reident.adversary.observations = options.observations_per_victim;
  reident.adversary.noise = options.observation_noise;
  reident.adversary.pmc_delta = options.pmc_delta;
  reident.adversary.seed = options.seed;
  reident.num_victims = options.num_victims;
  reident.threads = options.threads;
  reident.run_context = options.run_context;
  reident.telemetry = options.telemetry;

  WCOP_ASSIGN_OR_RETURN(
      attack::ReidentResult r,
      attack::RunReidentAttack(original_source, published_source, reident));

  AttackResult result;
  result.victims_attacked = r.victims_attacked;
  result.top1_hits = static_cast<size_t>(std::llround(
      r.top1_success * static_cast<double>(r.victims_attacked)));
  result.top1_success_rate = r.top1_success;
  result.mean_true_rank = r.mean_true_rank;
  result.mean_reciprocal_rank = r.mean_reciprocal_rank;
  return result;
}

Result<TrackingAttackResult> SimulateTrackingAttack(
    const Dataset& original, const Dataset& published,
    const TrackingAttackOptions& options) {
  if (original.empty() || published.empty()) {
    return Status::InvalidArgument("attack needs non-empty datasets");
  }
  if (options.step_seconds <= 0.0) {
    return Status::InvalidArgument("step_seconds must be positive");
  }
  WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  WCOP_TRACE_SPAN(options.telemetry, "attack/tracking");
  telemetry::Counter* victims_counter = nullptr;
  telemetry::Counter* steps_counter = nullptr;
  telemetry::Counter* switches_counter = nullptr;
  if (options.telemetry != nullptr) {
    auto& metrics = options.telemetry->metrics();
    victims_counter = metrics.GetCounter("attack.tracking.victims");
    steps_counter = metrics.GetCounter("attack.tracking.steps");
    switches_counter = metrics.GetCounter("attack.tracking.switches");
  }
  Rng rng(options.seed);

  std::vector<size_t> victims(original.size());
  std::iota(victims.begin(), victims.end(), 0);
  if (options.num_victims > 0 && options.num_victims < victims.size()) {
    std::shuffle(victims.begin(), victims.end(), rng.engine());
    victims.resize(options.num_victims);
  }

  TrackingAttackResult result;
  double switch_sum = 0.0;
  double on_target_sum = 0.0;
  for (size_t victim : victims) {
    WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
    const Trajectory& truth = original[victim];
    if (published.FindById(truth.id()) == nullptr) {
      continue;
    }
    // The tracker starts at the victim's true initial position and walks
    // the published data forward: it extrapolates the target's motion
    // (constant velocity over the last step) and re-acquires the published
    // trajectory closest to the predicted position — the standard
    // multi-target tracking model the path-confusion literature assumes.
    Point tracked = truth.front();
    double vel_x = 0.0, vel_y = 0.0;
    int64_t current_id = -1;
    size_t switches = 0;
    size_t steps = 0;
    size_t steps_on_target = 0;
    bool first_acquisition = true;
    for (double t = truth.StartTime(); t <= truth.EndTime();
         t += options.step_seconds) {
      if (options.run_context != nullptr) {
        options.run_context->ChargeCandidatePairs(published.size());
      }
      const double predicted_x =
          tracked.x + vel_x * options.step_seconds;
      const double predicted_y =
          tracked.y + vel_y * options.step_seconds;
      const Trajectory* best = nullptr;
      double best_d = std::numeric_limits<double>::infinity();
      for (const Trajectory& candidate : published.trajectories()) {
        if (t < candidate.StartTime() - options.step_seconds ||
            t > candidate.EndTime() + options.step_seconds) {
          continue;
        }
        const Point pos = candidate.PositionAt(t);
        const double dx = pos.x - predicted_x;
        const double dy = pos.y - predicted_y;
        const double d = std::sqrt(dx * dx + dy * dy);
        if (d < best_d) {
          best_d = d;
          best = &candidate;
        }
      }
      if (best == nullptr) {
        continue;  // nobody alive near this time: tracker idles
      }
      if (best->id() != current_id) {
        if (!first_acquisition) {
          ++switches;
        }
        current_id = best->id();
        first_acquisition = false;
      }
      const Point next = best->PositionAt(t);
      if (!first_acquisition && options.step_seconds > 0.0) {
        vel_x = (next.x - tracked.x) / options.step_seconds;
        vel_y = (next.y - tracked.y) / options.step_seconds;
      }
      tracked = next;
      ++steps;
      if (current_id == truth.id()) {
        ++steps_on_target;
      }
    }
    ++result.victims_tracked;
    telemetry::CounterAdd(steps_counter, steps);
    telemetry::CounterAdd(switches_counter, switches);
    if (current_id == truth.id()) {
      ++result.end_on_victim;
    }
    switch_sum += static_cast<double>(switches);
    on_target_sum += steps == 0 ? 0.0
                                : static_cast<double>(steps_on_target) /
                                      static_cast<double>(steps);
  }
  if (result.victims_tracked > 0) {
    const double n = static_cast<double>(result.victims_tracked);
    result.tracking_success_rate =
        static_cast<double>(result.end_on_victim) / n;
    result.mean_path_switches = switch_sum / n;
    result.mean_time_on_target = on_target_sum / n;
  }
  telemetry::CounterAdd(victims_counter, result.victims_tracked);
  return result;
}

}  // namespace wcop
