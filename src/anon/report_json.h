#ifndef WCOP_ANON_REPORT_JSON_H_
#define WCOP_ANON_REPORT_JSON_H_

#include <string>

#include "anon/types.h"
#include "anon/verifier.h"
#include "common/status.h"

namespace wcop {

/// JSON serialization of run reports — the machine-readable face of the
/// benchmark harness, for dashboards and CI pipelines that track the
/// anonymization metrics over time.

/// Serializes an AnonymizationReport as a single JSON object. When the
/// report carries a telemetry metrics snapshot, it is emitted under a
/// "metrics" key (see MetricsToJson).
std::string ReportToJson(const AnonymizationReport& report);

/// Serializes a telemetry metrics snapshot:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
///                  "mean":..,"p50":..,"p90":..,"p99":..},...}}
std::string MetricsToJson(const telemetry::MetricsSnapshot& snapshot);

/// Serializes a full AnonymizationResult: the report, cluster summaries
/// (pivot/k/delta/size — never the trajectory data itself), and trash ids.
std::string ResultToJson(const AnonymizationResult& result);

/// Serializes a verification report (ok flag, counts, messages).
std::string VerificationToJson(const VerificationReport& report);

/// Writes `json` to `path` (overwrites).
Status WriteJsonFile(const std::string& json, const std::string& path);

}  // namespace wcop

#endif  // WCOP_ANON_REPORT_JSON_H_
