file(REMOVE_RECURSE
  "libwcop_common.a"
)
