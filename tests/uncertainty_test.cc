#include <gtest/gtest.h>

#include "anon/uncertainty.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

TEST(UncertaintyTest, VolumeMembershipBasics) {
  const Trajectory t = MakeLine(1, 0, 0, 10, 0, 11);  // x = 10t, [0, 10]
  // On the expected curve.
  EXPECT_TRUE(InsideTrajectoryVolume(t, 20.0, Point(50, 0, 5)));
  // Within delta/2 = 10 laterally.
  EXPECT_TRUE(InsideTrajectoryVolume(t, 20.0, Point(50, 9.9, 5)));
  // Beyond delta/2.
  EXPECT_FALSE(InsideTrajectoryVolume(t, 20.0, Point(50, 10.5, 5)));
  // Outside the lifetime.
  EXPECT_FALSE(InsideTrajectoryVolume(t, 20.0, Point(0, 0, -1)));
  EXPECT_FALSE(InsideTrajectoryVolume(t, 20.0, Point(100, 0, 11)));
}

TEST(UncertaintyTest, TrajectoryIsItsOwnPmc) {
  const Trajectory t = MakeLine(1, 5, 5, 3, 1, 20);
  EXPECT_TRUE(IsPossibleMotionCurve(t, t, 0.0));
  EXPECT_TRUE(IsPossibleMotionCurve(t, t, 100.0));
}

TEST(UncertaintyTest, ShiftedCurveIsPmcIffWithinHalfDelta) {
  const Trajectory t = MakeLine(1, 0, 0, 10, 0, 11);
  const Trajectory shifted = MakeLine(2, 0, 4, 10, 0, 11);  // +4 north
  EXPECT_TRUE(IsPossibleMotionCurve(shifted, t, 8.0));    // 4 <= 8/2
  EXPECT_FALSE(IsPossibleMotionCurve(shifted, t, 7.0));   // 4 > 7/2
}

TEST(UncertaintyTest, DifferentLifetimeIsNotPmc) {
  const Trajectory t = MakeLine(1, 0, 0, 10, 0, 11);
  const Trajectory longer = MakeLine(2, 0, 0, 10, 0, 12);
  EXPECT_FALSE(IsPossibleMotionCurve(longer, t, 1000.0));
}

TEST(UncertaintyTest, SampledPmcIsAlwaysValid) {
  Rng rng(7);
  const Trajectory t = MakeLine(1, 100, -50, 7, 3, 60);
  for (double delta : {1.0, 10.0, 100.0}) {
    for (double smoothness : {0.1, 0.5, 1.0}) {
      const Trajectory pmc =
          SamplePossibleMotionCurve(t, delta, &rng, smoothness);
      ASSERT_EQ(pmc.size(), t.size());
      EXPECT_TRUE(IsPossibleMotionCurve(pmc, t, delta))
          << "delta=" << delta << " smoothness=" << smoothness;
      EXPECT_TRUE(pmc.Validate().ok());
    }
  }
}

TEST(UncertaintyTest, SampledPmcKeepsMetadataAndTimestamps) {
  Rng rng(9);
  Trajectory t = MakeLine(4, 0, 0, 5, 5, 20);
  t.set_object_id(8);
  t.set_requirement(Requirement{6, 77.0});
  const Trajectory pmc = SamplePossibleMotionCurve(t, 50.0, &rng);
  EXPECT_EQ(pmc.id(), 4);
  EXPECT_EQ(pmc.object_id(), 8);
  EXPECT_EQ(pmc.requirement().k, 6);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(pmc[i].t, t[i].t);
  }
}

TEST(UncertaintyTest, ZeroDeltaPmcEqualsBase) {
  Rng rng(3);
  const Trajectory t = MakeLine(1, 10, 20, 2, 2, 15);
  const Trajectory pmc = SamplePossibleMotionCurve(t, 0.0, &rng);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(pmc[i].x, t[i].x, 1e-12);
    EXPECT_NEAR(pmc[i].y, t[i].y, 1e-12);
  }
}

TEST(UncertaintyTest, SmootherPmcsDriftLessBetweenSteps) {
  Rng rng_a(5), rng_b(5);
  const Trajectory t = MakeLine(1, 0, 0, 1, 0, 200);
  const Trajectory smooth = SamplePossibleMotionCurve(t, 100.0, &rng_a, 0.05);
  const Trajectory rough = SamplePossibleMotionCurve(t, 100.0, &rng_b, 1.0);
  auto mean_step = [&](const Trajectory& pmc) {
    double total = 0.0;
    for (size_t i = 1; i < pmc.size(); ++i) {
      // Offset change between consecutive vertices.
      const double ox = (pmc[i].x - t[i].x) - (pmc[i - 1].x - t[i - 1].x);
      const double oy = (pmc[i].y - t[i].y) - (pmc[i - 1].y - t[i - 1].y);
      total += std::sqrt(ox * ox + oy * oy);
    }
    return total / static_cast<double>(pmc.size() - 1);
  };
  EXPECT_LT(mean_step(smooth), mean_step(rough));
}

}  // namespace
}  // namespace wcop
