#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "anon/report_json.h"
#include "anon/wcop_ct.h"
#include "common/telemetry.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

TEST(ReportJsonTest, ContainsEveryField) {
  AnonymizationReport report;
  report.input_trajectories = 10;
  report.num_clusters = 3;
  report.ttd = 123.456;
  report.total_distortion = 200.5;
  const std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"input_trajectories\":10"), std::string::npos);
  EXPECT_NE(json.find("\"num_clusters\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ttd\":123.456"), std::string::npos);
  EXPECT_NE(json.find("\"total_distortion\":200.5"), std::string::npos);
  EXPECT_NE(json.find("\"omega\""), std::string::npos);
  EXPECT_NE(json.find("\"runtime_seconds\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ReportJsonTest, ResultIncludesClustersAndTrash) {
  const Dataset d = SmallSynthetic(20, 40);
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_TRUE(result.ok());
  const std::string json = ResultToJson(*result);
  EXPECT_NE(json.find("\"report\":{"), std::string::npos);
  EXPECT_NE(json.find("\"clusters\":["), std::string::npos);
  EXPECT_NE(json.find("\"trashed_ids\":["), std::string::npos);
  EXPECT_NE(json.find("\"pivot\":"), std::string::npos);
  // Sanity: balanced braces and brackets.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportJsonTest, VerificationEscapesMessages) {
  VerificationReport report;
  report.ok = false;
  report.violations = 1;
  report.messages = {"bad \"quote\" and\nnewline"};
  const std::string json = VerificationToJson(report);
  EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
}

TEST(ReportJsonTest, NonFiniteDoublesSerializeAsNull) {
  // Regression: NaN/Inf used to be printed verbatim ("nan", "inf"), which
  // no JSON parser accepts. They must come out as null.
  AnonymizationReport report;
  report.ttd = std::numeric_limits<double>::quiet_NaN();
  report.omega = std::numeric_limits<double>::infinity();
  report.total_distortion = -std::numeric_limits<double>::infinity();
  const std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"ttd\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"omega\":null"), std::string::npos);
  EXPECT_NE(json.find("\"total_distortion\":null"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ReportJsonTest, MetricsSnapshotSerialization) {
  telemetry::MetricsRegistry registry;
  registry.GetCounter("cluster.attempts")->Add(7);
  registry.GetGauge("run_context.distance_computations")->Set(42.0);
  registry.GetHistogram("cluster.size")->Record(5);
  const telemetry::MetricsSnapshot snapshot = registry.Snapshot();

  const std::string json = MetricsToJson(snapshot);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster.attempts\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"run_context.distance_computations\":42"),
            std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster.size\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  // The report embeds the snapshot under "metrics" only when non-empty.
  AnonymizationReport report;
  EXPECT_EQ(ReportToJson(report).find("\"metrics\""), std::string::npos);
  report.metrics = snapshot;
  EXPECT_NE(ReportToJson(report).find("\"metrics\":{"), std::string::npos);
}

TEST(ReportJsonTest, WriteJsonFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wcop_report.json").string();
  ASSERT_TRUE(WriteJsonFile("{\"x\":1}", path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{\"x\":1}\n");
  std::remove(path.c_str());
  EXPECT_FALSE(WriteJsonFile("{}", "/no/such/dir/x.json").ok());
}

}  // namespace
}  // namespace wcop
