# Empty compiler generated dependencies file for fig8_bounded_editing.
# This may be replaced when dependencies are built.
