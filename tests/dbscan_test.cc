#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "cluster/dbscan.h"
#include "common/rng.h"

namespace wcop {
namespace {

/// Neighbour provider over a point list with plain Euclidean distance.
NeighborProvider MakeProvider(const std::vector<std::pair<double, double>>& pts,
                              double eps) {
  return [&pts, eps](size_t item) {
    std::vector<size_t> out;
    for (size_t i = 0; i < pts.size(); ++i) {
      const double dx = pts[i].first - pts[item].first;
      const double dy = pts[i].second - pts[item].second;
      if (std::sqrt(dx * dx + dy * dy) <= eps) {
        out.push_back(i);
      }
    }
    return out;
  };
}

TEST(DbscanTest, TwoBlobsAndNoise) {
  std::vector<std::pair<double, double>> pts;
  // Blob A around (0,0), blob B around (100,0), one lone point far away.
  for (int i = 0; i < 6; ++i) {
    pts.emplace_back(0.0 + i * 0.5, 0.0);
  }
  for (int i = 0; i < 6; ++i) {
    pts.emplace_back(100.0 + i * 0.5, 0.0);
  }
  pts.emplace_back(500.0, 500.0);

  const DbscanResult r = Dbscan(pts.size(), 3, MakeProvider(pts, 1.0));
  EXPECT_EQ(r.num_clusters, 2);
  EXPECT_EQ(r.labels.back(), DbscanResult::kNoise);
  // All of blob A shares one label, all of blob B another.
  for (int i = 1; i < 6; ++i) {
    EXPECT_EQ(r.labels[i], r.labels[0]);
    EXPECT_EQ(r.labels[6 + i], r.labels[6]);
  }
  EXPECT_NE(r.labels[0], r.labels[6]);
}

TEST(DbscanTest, AllNoiseWhenSparse) {
  std::vector<std::pair<double, double>> pts = {
      {0, 0}, {100, 0}, {200, 0}, {300, 0}};
  const DbscanResult r = Dbscan(pts.size(), 2, MakeProvider(pts, 1.0));
  EXPECT_EQ(r.num_clusters, 0);
  for (int label : r.labels) {
    EXPECT_EQ(label, DbscanResult::kNoise);
  }
}

TEST(DbscanTest, ChainOfCorePointsFormsOneCluster) {
  // Density-connected chain: consecutive points within eps, each point has
  // >= 3 neighbours including itself.
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i < 20; ++i) {
    pts.emplace_back(i * 0.8, 0.0);
  }
  const DbscanResult r = Dbscan(pts.size(), 3, MakeProvider(pts, 1.0));
  EXPECT_EQ(r.num_clusters, 1);
  for (int label : r.labels) {
    EXPECT_EQ(label, 0);
  }
}

TEST(DbscanTest, BorderPointAdoptedNotCore) {
  // Dense core of 5 near origin; one border point within eps of a core
  // point but with too few neighbours to be core itself.
  std::vector<std::pair<double, double>> pts = {
      {0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, {0.05, 0.05}, {0.9, 0}};
  const DbscanResult r = Dbscan(pts.size(), 5, MakeProvider(pts, 1.0));
  EXPECT_EQ(r.num_clusters, 1);
  EXPECT_EQ(r.labels[5], 0);  // adopted as border point
}

TEST(DbscanTest, EmptyInput) {
  const DbscanResult r =
      Dbscan(0, 3, [](size_t) { return std::vector<size_t>(); });
  EXPECT_EQ(r.num_clusters, 0);
  EXPECT_TRUE(r.labels.empty());
  EXPECT_TRUE(r.Clusters().empty());
}

TEST(DbscanTest, MinPointsOneMakesEverythingCore) {
  std::vector<std::pair<double, double>> pts = {{0, 0}, {100, 0}, {200, 0}};
  const DbscanResult r = Dbscan(pts.size(), 1, MakeProvider(pts, 1.0));
  EXPECT_EQ(r.num_clusters, 3);
}

TEST(DbscanTest, ClustersViewGroupsMembers) {
  std::vector<std::pair<double, double>> pts = {
      {0, 0}, {0.5, 0}, {1.0, 0}, {100, 0}, {100.5, 0}, {101, 0}};
  const DbscanResult r = Dbscan(pts.size(), 3, MakeProvider(pts, 1.0));
  const auto clusters = r.Clusters();
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size() + clusters[1].size(), 6u);
}

TEST(DbscanTest, LabelsAreStableForPermutedDensity) {
  // Property: every point labelled in a cluster must be within eps of some
  // other member of the same cluster (connectivity sanity).
  Rng rng(13);
  std::vector<std::pair<double, double>> pts;
  for (int blob = 0; blob < 3; ++blob) {
    const double cx = blob * 50.0;
    for (int i = 0; i < 15; ++i) {
      pts.emplace_back(cx + rng.UniformReal(-2, 2), rng.UniformReal(-2, 2));
    }
  }
  const double eps = 3.0;
  const DbscanResult r = Dbscan(pts.size(), 4, MakeProvider(pts, eps));
  EXPECT_EQ(r.num_clusters, 3);
  for (size_t i = 0; i < pts.size(); ++i) {
    if (r.labels[i] < 0) {
      continue;
    }
    bool has_near_same_cluster = false;
    for (size_t j = 0; j < pts.size() && !has_near_same_cluster; ++j) {
      if (i == j || r.labels[j] != r.labels[i]) {
        continue;
      }
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      has_near_same_cluster = std::sqrt(dx * dx + dy * dy) <= eps;
    }
    EXPECT_TRUE(has_near_same_cluster) << "point " << i;
  }
}

}  // namespace
}  // namespace wcop
