#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace wcop {

namespace {

/// A route is a dense polyline (metres); trajectories travel along it at
/// constant-ish speed with a per-trajectory lateral lane offset.
struct Route {
  std::vector<Point> waypoints;  ///< t unused
  std::vector<double> cumulative_length;

  double TotalLength() const {
    return cumulative_length.empty() ? 0.0 : cumulative_length.back();
  }

  /// Position at arc length s (clamped), plus the local unit normal so the
  /// caller can apply a lateral offset.
  void At(double s, double* x, double* y, double* nx, double* ny) const {
    if (waypoints.size() < 2) {
      *x = waypoints.empty() ? 0.0 : waypoints[0].x;
      *y = waypoints.empty() ? 0.0 : waypoints[0].y;
      *nx = 0.0;
      *ny = 1.0;
      return;
    }
    s = std::clamp(s, 0.0, TotalLength());
    const auto it = std::lower_bound(cumulative_length.begin(),
                                     cumulative_length.end(), s);
    size_t seg = static_cast<size_t>(it - cumulative_length.begin());
    seg = std::min(std::max<size_t>(seg, 1), waypoints.size() - 1);
    const Point& a = waypoints[seg - 1];
    const Point& b = waypoints[seg];
    const double seg_start = cumulative_length[seg - 1];
    const double seg_len = cumulative_length[seg] - seg_start;
    const double alpha = seg_len > 0.0 ? (s - seg_start) / seg_len : 0.0;
    *x = a.x + alpha * (b.x - a.x);
    *y = a.y + alpha * (b.y - a.y);
    const double dx = b.x - a.x;
    const double dy = b.y - a.y;
    const double norm = std::sqrt(dx * dx + dy * dy);
    if (norm > 0.0) {
      *nx = -dy / norm;
      *ny = dx / norm;
    } else {
      *nx = 0.0;
      *ny = 1.0;
    }
  }
};

void FinalizeRoute(Route* route) {
  route->cumulative_length.resize(route->waypoints.size());
  double total = 0.0;
  for (size_t i = 0; i < route->waypoints.size(); ++i) {
    if (i > 0) {
      total += SpatialDistance(route->waypoints[i - 1], route->waypoints[i]);
    }
    route->cumulative_length[i] = total;
  }
}

/// Generates the hub layout: a dense "downtown" hub at the centre and the
/// rest pulled towards it, all inside the square region.
std::vector<Point> MakeHubs(const SyntheticOptions& options, double half_side,
                            Rng* rng) {
  std::vector<Point> hubs;
  hubs.push_back(Point(0.0, 0.0, 0.0));
  while (hubs.size() < options.num_hubs) {
    // Gaussian pull towards the centre, clamped to the region.
    const double x =
        std::clamp(rng->Gaussian(0.0, half_side * 0.55), -half_side, half_side);
    const double y =
        std::clamp(rng->Gaussian(0.0, half_side * 0.55), -half_side, half_side);
    hubs.push_back(Point(x, y, 0.0));
  }
  return hubs;
}

/// Builds one route through `num_legs`+1 distinct hubs, preferring nearby
/// hubs for consecutive legs, with per-leg wiggle waypoints.
Route MakeRoute(const std::vector<Point>& hubs, size_t num_legs,
                const SyntheticOptions& options, Rng* rng) {
  Route route;
  size_t current = rng->UniformIndex(hubs.size());
  std::vector<size_t> visited = {current};
  route.waypoints.push_back(hubs[current]);
  for (size_t leg = 0; leg < num_legs; ++leg) {
    // Choose the next hub among the 5 nearest unvisited ones.
    std::vector<size_t> order(hubs.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return SpatialDistanceSquared(hubs[current], hubs[a]) <
             SpatialDistanceSquared(hubs[current], hubs[b]);
    });
    size_t next = current;
    std::vector<size_t> candidates;
    for (size_t idx : order) {
      if (std::find(visited.begin(), visited.end(), idx) == visited.end()) {
        candidates.push_back(idx);
        if (candidates.size() == 5) {
          break;
        }
      }
    }
    if (candidates.empty()) {
      break;
    }
    next = candidates[rng->UniformIndex(candidates.size())];

    // Subdivide the leg with lateral wiggle so routes look like roads, not
    // rulers. The wiggle is part of the route: everyone using this route
    // shares it.
    const Point& a = hubs[current];
    const Point& b = hubs[next];
    const double dx = b.x - a.x;
    const double dy = b.y - a.y;
    const double len = std::sqrt(dx * dx + dy * dy);
    const double nx = len > 0.0 ? -dy / len : 0.0;
    const double ny = len > 0.0 ? dx / len : 1.0;
    for (size_t w = 1; w <= options.waypoints_per_leg; ++w) {
      const double alpha =
          static_cast<double>(w) / (options.waypoints_per_leg + 1);
      // Sine envelope keeps wiggle zero at the hubs themselves.
      const double envelope = std::sin(alpha * M_PI);
      const double offset =
          rng->Gaussian(0.0, options.route_wiggle_sigma) * envelope;
      route.waypoints.push_back(Point(a.x + alpha * dx + nx * offset,
                                      a.y + alpha * dy + ny * offset, 0.0));
    }
    route.waypoints.push_back(b);
    visited.push_back(next);
    current = next;
  }
  FinalizeRoute(&route);
  return route;
}

/// Travel plan for one trajectory: route, direction, departure, speed, lane.
struct TravelPlan {
  size_t route_index = 0;
  bool reverse = false;
  double departure = 0.0;
  double speed = 1.0;
  double lane_offset = 0.0;
};

Trajectory Realize(const TravelPlan& plan, const Route& route,
                   const SyntheticOptions& options, int64_t id, Rng* rng) {
  std::vector<Point> points;
  points.reserve(options.points_per_trajectory);
  const double total = route.TotalLength();
  double s = plan.reverse ? total : 0.0;
  double time = plan.departure;
  for (size_t i = 0; i < options.points_per_trajectory; ++i) {
    double x, y, nx, ny;
    route.At(s, &x, &y, &nx, &ny);
    const double jitter_x = rng->Gaussian(0.0, options.gps_noise_sigma);
    const double jitter_y = rng->Gaussian(0.0, options.gps_noise_sigma);
    points.push_back(Point(x + nx * plan.lane_offset + jitter_x,
                           y + ny * plan.lane_offset + jitter_y, time));
    // Small per-step speed noise; direction flips at route ends so long
    // recordings pace back and forth like commuters do.
    const double step =
        std::max(0.5, plan.speed + rng->Gaussian(0.0, 0.1 * plan.speed)) *
        options.sampling_interval;
    if (plan.reverse) {
      s -= step;
      if (s <= 0.0) {
        s = -s;
      }
    } else {
      s += step;
      if (s >= total) {
        s = std::max(0.0, 2.0 * total - s);
      }
    }
    time += options.sampling_interval;
  }
  return Trajectory(id, std::move(points));
}

}  // namespace

Result<Dataset> GenerateSyntheticGeoLife(const SyntheticOptions& options) {
  if (options.num_trajectories == 0 || options.num_users == 0) {
    return Status::InvalidArgument("need at least one user and trajectory");
  }
  if (options.points_per_trajectory < 2) {
    return Status::InvalidArgument("points_per_trajectory must be >= 2");
  }
  if (options.sampling_interval <= 0.0) {
    return Status::InvalidArgument("sampling_interval must be positive");
  }
  if (options.num_hubs < 2) {
    return Status::InvalidArgument("need at least two hubs");
  }

  Rng rng(options.seed);
  const double half_side = options.region_half_diagonal / std::sqrt(2.0);
  const std::vector<Point> hubs = MakeHubs(options, half_side, &rng);

  std::vector<Route> routes;
  routes.reserve(options.num_routes);
  for (size_t r = 0; r < options.num_routes; ++r) {
    routes.push_back(
        MakeRoute(hubs, /*num_legs=*/1 + rng.UniformIndex(3), options, &rng));
  }

  const double span_seconds = options.dataset_duration_days * 86400.0;
  const double trip_seconds =
      static_cast<double>(options.points_per_trajectory) *
      options.sampling_interval;

  Dataset dataset;
  TravelPlan previous;
  bool have_previous = false;
  size_t companions_left = 0;
  for (size_t i = 0; i < options.num_trajectories; ++i) {
    // Guarded so a zero fraction consumes no randomness (keeps seeded
    // streams identical to pre-outlier datasets).
    if (options.outlier_fraction > 0.0 &&
        rng.Bernoulli(options.outlier_fraction)) {
      // Outlier: a free random walk that shares no route with anyone.
      std::vector<Point> points;
      points.reserve(options.points_per_trajectory);
      double x = rng.UniformReal(-half_side, half_side);
      double y = rng.UniformReal(-half_side, half_side);
      double heading = rng.UniformReal(0.0, 2.0 * M_PI);
      const double speed = std::clamp(
          rng.Gaussian(options.avg_speed, options.speed_stddev), 2.0, 18.0);
      double time = rng.UniformReal(
          0.0, std::max(1.0, span_seconds - trip_seconds));
      for (size_t p = 0; p < options.points_per_trajectory; ++p) {
        points.push_back(Point(x, y, time));
        heading += rng.Gaussian(0.0, 0.35);  // meandering course
        const double step = speed * options.sampling_interval;
        x = std::clamp(x + step * std::cos(heading), -half_side, half_side);
        y = std::clamp(y + step * std::sin(heading), -half_side, half_side);
        time += options.sampling_interval;
      }
      Trajectory t(static_cast<int64_t>(i), std::move(points));
      t.set_object_id(static_cast<int64_t>(i % options.num_users));
      dataset.Add(std::move(t));
      have_previous = false;  // outliers break companion chains
      continue;
    }
    TravelPlan plan;
    if (have_previous && companions_left > 0 &&
        rng.Bernoulli(options.companion_prob)) {
      // Depart together with the previous traveller: same route and
      // direction, nearby departure, similar speed, own lane.
      plan = previous;
      plan.departure += rng.UniformReal(-30.0, 30.0);
      plan.speed = std::max(0.5, plan.speed + rng.Gaussian(0.0, 0.15));
      plan.lane_offset = rng.Gaussian(0.0, options.route_lateral_sigma);
      --companions_left;
    } else {
      if (rng.Bernoulli(options.popular_route_prob)) {
        plan.route_index = rng.UniformIndex(routes.size());
      } else {
        // Ad hoc trip: mint a fresh route nobody else shares.
        routes.push_back(
            MakeRoute(hubs, 1 + rng.UniformIndex(3), options, &rng));
        plan.route_index = routes.size() - 1;
      }
      plan.reverse = rng.Bernoulli(0.5);
      plan.departure =
          rng.UniformReal(0.0, std::max(1.0, span_seconds - trip_seconds));
      plan.speed = std::clamp(
          rng.Gaussian(options.avg_speed, options.speed_stddev), 2.0, 18.0);
      plan.lane_offset = rng.Gaussian(0.0, options.route_lateral_sigma);
      companions_left = 1 + rng.UniformIndex(4);
    }
    previous = plan;
    have_previous = true;

    Trajectory t = Realize(plan, routes[plan.route_index],
                           options, static_cast<int64_t>(i), &rng);
    t.set_object_id(static_cast<int64_t>(i % options.num_users));
    dataset.Add(std::move(t));
  }
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

Result<Dataset> GenerateTiledSyntheticGeoLife(const SyntheticOptions& options,
                                              size_t tiles,
                                              double tile_spacing) {
  if (tiles == 0) {
    return Status::InvalidArgument("need at least one tile");
  }
  if (tile_spacing <= 0.0) {
    return Status::InvalidArgument("tile_spacing must be positive");
  }
  const size_t grid = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(tiles))));
  Dataset dataset;
  dataset.mutable_trajectories().reserve(tiles *
                                         options.num_trajectories);
  int64_t next_id = 0;
  int64_t object_base = 0;
  for (size_t tile = 0; tile < tiles; ++tile) {
    SyntheticOptions tile_options = options;
    tile_options.seed = options.seed + 0x9e3779b97f4a7c15ull * (tile + 1);
    WCOP_ASSIGN_OR_RETURN(Dataset city,
                          GenerateSyntheticGeoLife(tile_options));
    const double dx =
        static_cast<double>(tile % grid) * tile_spacing;
    const double dy =
        static_cast<double>(tile / grid) * tile_spacing;
    for (Trajectory& t : city.mutable_trajectories()) {
      for (Point& p : t.mutable_points()) {
        p.x += dx;
        p.y += dy;
      }
      t.set_id(next_id++);
      t.set_object_id(object_base + t.object_id());
      dataset.Add(std::move(t));
    }
    object_base += static_cast<int64_t>(options.num_users);
  }
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

void AssignUniformRequirements(Dataset* dataset, int k_min, int k_max,
                               double delta_min, double delta_max, Rng* rng) {
  for (Trajectory& t : dataset->mutable_trajectories()) {
    Requirement r;
    r.k = static_cast<int>(rng->UniformInt(k_min, k_max));
    r.delta = rng->UniformReal(delta_min, delta_max);
    t.set_requirement(r);
  }
}

void AssignProfileRequirements(Dataset* dataset,
                               const RequirementProfile& profile, Rng* rng) {
  for (Trajectory& t : dataset->mutable_trajectories()) {
    Requirement r;
    if (rng->Bernoulli(profile.strict_fraction)) {
      r.k = profile.strict_k;
      r.delta = profile.strict_delta;
    } else {
      r.k = profile.relaxed_k;
      r.delta = profile.relaxed_delta;
    }
    t.set_requirement(r);
  }
}

}  // namespace wcop
