#include "anon/agglomerative.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "anon/distance_cache.h"
#include "common/failpoint.h"

namespace wcop {

namespace {

struct WorkingCluster {
  std::vector<size_t> members;
  int k = 0;
  double delta = 0.0;
  size_t medoid = 0;
  bool alive = true;

  size_t Deficit() const {
    return members.size() >= static_cast<size_t>(k)
               ? 0
               : static_cast<size_t>(k) - members.size();
  }
};

size_t ElectMedoid(const std::vector<size_t>& members,
                   ShardedPairDistanceCache* distances) {
  if (members.size() <= 2) {
    return members.front();
  }
  size_t best = members.front();
  double best_sum = std::numeric_limits<double>::infinity();
  for (size_t candidate : members) {
    double sum = 0.0;
    for (size_t other : members) {
      sum += distances->Get(candidate, other);
    }
    if (sum < best_sum) {
      best_sum = sum;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

Result<ClusteringOutcome> AgglomerativeClustering(const Dataset& dataset,
                                                  size_t trash_max,
                                                  const WcopOptions& options) {
  const size_t n = dataset.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot cluster an empty dataset");
  }
  if (options.radius_max <= 0.0) {
    return Status::InvalidArgument("radius_max must be positive");
  }
  if (options.radius_growth <= 1.0) {
    return Status::InvalidArgument("radius_growth must exceed 1");
  }

  const RunContext* context = options.run_context;
  telemetry::Telemetry* tel = options.telemetry;
  WCOP_TRACE_SPAN(tel, "cluster/agglomerative");
  telemetry::Counter* merges = nullptr;
  telemetry::Counter* retired = nullptr;
  telemetry::Counter* rounds_counter = nullptr;
  telemetry::Histogram* cluster_size = nullptr;
  if (tel != nullptr) {
    merges = tel->metrics().GetCounter("cluster.merges");
    retired = tel->metrics().GetCounter("cluster.retired");
    rounds_counter = tel->metrics().GetCounter("cluster.rounds");
    cluster_size = tel->metrics().GetHistogram("cluster.size");
  }
  // Agglomerative merging eventually touches most pairs; reserving the
  // full triangle up front keeps the hot loop free of rehashes. The sharded
  // cache replaces the old private memo, bringing the same lower-bound
  // cascade (analytic separation/envelope exacts, cutoff-certified bounds)
  // to the medoid partner search.
  ShardedPairDistanceCache distances(dataset, options.distance, context, tel,
                                     n * (n - 1) / 2);
  const bool cascade = distances.cascade_active();
  double radius_max = options.radius_max;

  for (size_t round = 0; round < options.max_clustering_rounds; ++round) {
    WCOP_FAILPOINT("cluster.agglomerative_round");
    WCOP_TRACE_SPAN(tel, "cluster/agglomerative_round");
    telemetry::CounterAdd(rounds_counter);
    bool degraded = false;
    std::string degraded_reason;
    std::vector<WorkingCluster> clusters(n);
    for (size_t i = 0; i < n; ++i) {
      clusters[i].members = {i};
      clusters[i].k = dataset[i].requirement().k;
      clusters[i].delta = dataset[i].requirement().delta;
      clusters[i].medoid = i;
    }

    // Deficit-driven merging.
    while (true) {
      // Cooperative yield point: one check per merge step. On a trip with
      // allow_partial_results, every still-deficient cluster is retired to
      // the trash; the satisfied ones remain publishable anonymity sets.
      if (Status s = CheckRunContext(context); !s.ok()) {
        if (!options.allow_partial_results) {
          return s;
        }
        degraded = true;
        degraded_reason = s.ToString();
        for (WorkingCluster& c : clusters) {
          if (c.alive && c.Deficit() > 0) {
            c.alive = false;
            c.k = -1;  // mark as trashed
          }
        }
        break;
      }
      // Most deficient live cluster.
      size_t worst = n;
      size_t worst_deficit = 0;
      for (size_t c = 0; c < clusters.size(); ++c) {
        if (clusters[c].alive && clusters[c].Deficit() > worst_deficit) {
          worst_deficit = clusters[c].Deficit();
          worst = c;
        }
      }
      if (worst == n) {
        break;  // all requirements met
      }
      // Nearest live partner within radius_max (medoid distance). Under
      // the cascade the running best tightens a cutoff: a certified bound
      // above it proves the cluster cannot win (selection takes strictly
      // smaller distances, so ties keep the first cluster either way).
      size_t partner = n;
      double partner_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < clusters.size(); ++c) {
        if (c == worst || !clusters[c].alive) {
          continue;
        }
        double d;
        if (cascade) {
          const double cutoff = std::min(radius_max, partner_dist);
          const auto probe =
              distances.CheapProbe(clusters[worst].medoid, clusters[c].medoid);
          if (probe.exact) {
            d = probe.value;
          } else if (probe.value > cutoff) {
            distances.CountBoundPrune(probe.rung);
            continue;
          } else {
            d = distances.GetWithCutoff(clusters[worst].medoid,
                                        clusters[c].medoid, cutoff);
          }
        } else {
          d = distances.Get(clusters[worst].medoid, clusters[c].medoid);
        }
        if (d <= radius_max && d < partner_dist) {
          partner_dist = d;
          partner = c;
        }
      }
      if (partner == n) {
        // Unsatisfiable within the radius: retire the cluster (its members
        // head for the trash this round).
        telemetry::CounterAdd(retired);
        clusters[worst].alive = false;
        clusters[worst].k = -1;  // mark as trashed
        continue;
      }
      // Merge partner into worst.
      telemetry::CounterAdd(merges);
      WorkingCluster& dst = clusters[worst];
      WorkingCluster& src = clusters[partner];
      dst.members.insert(dst.members.end(), src.members.begin(),
                         src.members.end());
      dst.k = std::max(dst.k, src.k);
      dst.delta = std::min(dst.delta, src.delta);
      dst.medoid = ElectMedoid(dst.members, &distances);
      src.alive = false;
      src.members.clear();
    }

    ClusteringOutcome outcome;
    for (const WorkingCluster& c : clusters) {
      if (c.k == -1) {
        for (size_t m : c.members) {
          outcome.trash.push_back(m);
        }
        continue;
      }
      if (!c.alive || c.members.empty()) {
        continue;
      }
      AnonymityCluster out;
      out.pivot = c.medoid;
      out.members = c.members;
      out.k = c.k;
      out.delta = c.delta;
      if (cluster_size != nullptr) {
        cluster_size->Record(out.members.size());
      }
      outcome.clusters.push_back(std::move(out));
    }
    outcome.rounds = round + 1;
    outcome.final_radius = radius_max;
    if (degraded) {
      outcome.degraded = true;
      outcome.degraded_reason = std::move(degraded_reason);
      return outcome;  // may exceed trash_max; the trip ends the run
    }
    if (outcome.trash.size() <= trash_max) {
      return outcome;
    }
    radius_max *= options.radius_growth;
  }

  return Status::Unsatisfiable(
      "agglomerative clustering could not meet trash_max=" +
      std::to_string(trash_max) + " within " +
      std::to_string(options.max_clustering_rounds) + " radius relaxations");
}

}  // namespace wcop
