#ifndef WCOP_COMMON_LOG_H_
#define WCOP_COMMON_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wcop {

class ArgParser;

namespace log {

/// Structured logging subsystem (DESIGN.md "Observability").
///
/// One process-wide `Logger` (see `Default()`), configured once at startup
/// from the shared CLI flags (`--log-level=`, `--log-format=text|json`,
/// `--log-out=`). Every record is a single line:
///
///   text:  `wcop_serve: listening on /tmp/wcop.sock job_dir=/tmp/jobs`
///   json:  `{"ts":1754550000.123,"level":"info","logger":"wcop_serve",
///           "msg":"listening on /tmp/wcop.sock","job_dir":"/tmp/jobs"}`
///
/// The text form keeps `prefix: message` first so existing log greps (CI
/// watches for "recovered" and "bye" in daemon output) keep working, with
/// structured fields appended as `key=value` pairs. The JSON form is one
/// JSON object per line, parseable with `python3 -m json.tool`.
///
/// Emission is thread-safe (one mutex around the formatted write) and
/// rate-limited per logger: at most `max_per_second` records per 1-second
/// window; excess records are dropped and accounted, and the next emitted
/// record notes how many were suppressed. Rate limiting protects the hot
/// path (per-shard workers logging in a tight retry loop) from unbounded
/// I/O, mirroring how the telemetry registry bounds hot-path cost.

enum class Level : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

enum class Format : int {
  kText = 0,
  kJson = 1,
};

/// "debug"/"info"/"warn"/"error"/"off" -> Level. Unknown strings return
/// false and leave `out` untouched.
bool ParseLevel(std::string_view text, Level* out);
/// "text"/"json" -> Format.
bool ParseFormat(std::string_view text, Format* out);
const char* LevelName(Level level);

/// One structured key/value attachment. Values are pre-rendered to text;
/// `quoted` records whether the JSON form needs string quoting (numbers and
/// booleans pass through bare).
struct Field {
  Field(std::string_view k, std::string_view v)
      : key(k), value(v), quoted(true) {}
  Field(std::string_view k, const char* v)
      : key(k), value(v != nullptr ? v : ""), quoted(true) {}
  Field(std::string_view k, const std::string& v)
      : key(k), value(v), quoted(true) {}
  Field(std::string_view k, bool v)
      : key(k), value(v ? "true" : "false"), quoted(false) {}
  Field(std::string_view k, int v);
  Field(std::string_view k, long v);
  Field(std::string_view k, long long v);
  Field(std::string_view k, unsigned v);
  Field(std::string_view k, unsigned long v);
  Field(std::string_view k, unsigned long long v);
  Field(std::string_view k, double v);

  std::string key;
  std::string value;
  bool quoted = true;
};

/// Thread-safe leveled line logger. Writes to stderr by default; `SetOut`
/// redirects to a file (append mode). All configuration is expected at
/// startup, before concurrent use, except Log itself which is always safe.
class Logger {
 public:
  Logger() = default;
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(Level level) { level_ = level; }
  Level level() const { return level_; }
  void set_format(Format format) { format_ = format; }
  Format format() const { return format_; }
  /// Short component name prepended to text records and emitted as the
  /// "logger" JSON field ("wcop_serve", "anonymize_csv", ...).
  void set_name(std::string name) { name_ = std::move(name); }
  /// Records allowed per 1-second window before suppression; 0 disables
  /// rate limiting. Default 200.
  void set_max_per_second(uint64_t n) { max_per_second_ = n; }

  /// Redirects output to `path` (append). Returns false (and keeps the
  /// current sink) if the file cannot be opened. "-" means stderr.
  bool SetOut(const std::string& path);
  /// Redirects output to an already-open stream the caller owns.
  void SetStream(FILE* stream);

  bool Enabled(Level level) const { return level >= level_ && level_ != Level::kOff; }

  void Log(Level level, std::string_view msg,
           const std::vector<Field>& fields = {});

  /// Total records dropped by the rate limiter since construction.
  uint64_t suppressed_total() const;

  /// The process-wide logger used by `WCOP_LOG`. Never null.
  static Logger& Default();

 private:
  void WriteLine(Level level, std::string_view msg,
                 const std::vector<Field>& fields, uint64_t suppressed_note);

  Level level_ = Level::kInfo;
  Format format_ = Format::kText;
  std::string name_ = "wcop";
  uint64_t max_per_second_ = 200;

  mutable std::mutex mu_;
  FILE* out_ = nullptr;       ///< null = stderr
  bool owns_out_ = false;
  int64_t window_start_s_ = -1;
  uint64_t window_count_ = 0;
  uint64_t window_suppressed_ = 0;
  uint64_t suppressed_total_ = 0;
};

/// A logger view carrying fixed context fields (job id, tenant, shard
/// index, ...) merged before per-call fields into every record. Cheap to
/// copy; borrows the underlying Logger.
class ContextLogger {
 public:
  explicit ContextLogger(Logger* logger = &Logger::Default())
      : logger_(logger) {}

  ContextLogger With(Field field) const {
    ContextLogger child = *this;
    child.context_.push_back(std::move(field));
    return child;
  }

  void Log(Level level, std::string_view msg,
           const std::vector<Field>& fields = {}) const;

  void Debug(std::string_view msg, const std::vector<Field>& fields = {}) const {
    Log(Level::kDebug, msg, fields);
  }
  void Info(std::string_view msg, const std::vector<Field>& fields = {}) const {
    Log(Level::kInfo, msg, fields);
  }
  void Warn(std::string_view msg, const std::vector<Field>& fields = {}) const {
    Log(Level::kWarn, msg, fields);
  }
  void Error(std::string_view msg, const std::vector<Field>& fields = {}) const {
    Log(Level::kError, msg, fields);
  }

 private:
  Logger* logger_;
  std::vector<Field> context_;
};

/// Applies the shared CLI logging flags (`--log-level=`, `--log-format=`,
/// `--log-out=`) to `Default()` and names it after the binary. Returns
/// false (after logging the problem) on an unknown level/format value or an
/// unopenable --log-out path.
bool ConfigureFromArgs(const ArgParser& args, const std::string& binary_name);

/// Convenience wrappers over Default().
void Debug(std::string_view msg, const std::vector<Field>& fields = {});
void Info(std::string_view msg, const std::vector<Field>& fields = {});
void Warn(std::string_view msg, const std::vector<Field>& fields = {});
void Error(std::string_view msg, const std::vector<Field>& fields = {});

}  // namespace log
}  // namespace wcop

#endif  // WCOP_COMMON_LOG_H_
