#include "pipeline/continuous.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <system_error>
#include <utility>

#include "anon/checkpoint.h"
#include "anon/streaming.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "common/telemetry.h"
#include "store/shard_runner.h"
#include "store/window_io.h"

namespace wcop {
namespace pipeline {

namespace {

namespace fs = std::filesystem;

// FNV-1a, same constants as the checkpoint fingerprints — the pipeline
// hashes its dataset through the store index instead of materialized
// trajectories, so it composes WcopOptionsFingerprint with its own walk.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashU64(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (i * 8)) & 0xffULL;
    *h *= kFnvPrime;
  }
}

void HashI64(uint64_t* h, int64_t v) { HashU64(h, static_cast<uint64_t>(v)); }

void HashDouble(uint64_t* h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(h, bits);
}

std::string IndexName(const char* prefix, size_t window, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%05llu%s", prefix,
                static_cast<unsigned long long>(window), suffix);
  return buf;
}

std::string WindowStorePath(const std::string& output_dir, size_t window) {
  return output_dir + "/" + IndexName("window_", window, ".wst");
}

std::string ManifestPath(const std::string& output_dir, size_t window) {
  return output_dir + "/" + IndexName("window_", window, ".mfr");
}

std::string WindowInputPath(const std::string& work_dir, size_t window) {
  return work_dir + "/" + IndexName("win_in_", window, ".wst");
}

// carry_NNNNN.wst is the carry-over store *consumed* by window NNNNN
// (i.e. written by window NNNNN-1). carry_00000 never exists.
std::string CarryPath(const std::string& work_dir, size_t window) {
  return work_dir + "/" + IndexName("carry_", window, ".wst");
}

std::string ShardDirPath(const std::string& work_dir, size_t window) {
  return work_dir + "/" + IndexName("shards_", window, "");
}

std::string CheckpointDirPath(const std::string& work_dir, size_t window) {
  return work_dir + "/" + IndexName("ckpt_", window, "");
}

Status EnsureDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  return Status::OK();
}

void RemoveQuietly(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);  // best effort; leftovers are swept next run
}

/// Publishes a valid-but-empty store at `path` (atomic tmp -> rename),
/// for windows whose extraction produced no fragments or whose
/// anonymization suppressed everything.
Status WriteEmptyStore(const std::string& path) {
  WCOP_ASSIGN_OR_RETURN(store::TrajectoryStoreWriter writer,
                        store::TrajectoryStoreWriter::Create(path));
  return writer.Finish();
}

/// True when `status` means "this window cannot be anonymized as given"
/// rather than "the run is broken": the window publishes empty with
/// skipped=1, mirroring the streaming driver's per-window skip semantics.
bool IsWindowSkip(const Status& status) {
  return status.code() == StatusCode::kUnsatisfiable ||
         status.code() == StatusCode::kInvalidArgument;
}

struct WindowOutcome {
  WindowManifest manifest;
  bool window_degraded = false;
};

/// Checks a published window against its manifest: envelope + fingerprint
/// + output store bytes. Returns the manifest when everything matches.
Result<WindowManifest> ValidatePublishedWindow(const std::string& output_dir,
                                               size_t window,
                                               uint64_t fingerprint) {
  WCOP_ASSIGN_OR_RETURN(WindowManifest manifest,
                        ReadWindowManifest(ManifestPath(output_dir, window)));
  if (manifest.config_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "window " + std::to_string(window) +
        " was published under a different source or configuration");
  }
  if (manifest.window_index != window) {
    return Status::DataLoss("window manifest " + std::to_string(window) +
                            " records index " +
                            std::to_string(manifest.window_index));
  }
  WCOP_ASSIGN_OR_RETURN(FileDigest output,
                        DigestFile(WindowStorePath(output_dir, window)));
  if (output.crc != manifest.output_crc || output.size != manifest.output_size) {
    return Status::DataLoss("window store " + std::to_string(window) +
                            " does not match its manifest digest");
  }
  return manifest;
}

/// True when the carry store consumed by `window` matches the digest its
/// producer recorded. A zero-record carry (producer spilled nothing) is
/// recorded with the digest of the empty store file, which still exists.
bool CarryChainIntact(const std::string& work_dir, size_t window,
                      const WindowManifest& producer_manifest) {
  Result<FileDigest> carry = DigestFile(CarryPath(work_dir, window));
  if (!carry.ok()) {
    return false;
  }
  return carry->crc == producer_manifest.carry_crc &&
         carry->size == producer_manifest.carry_size;
}

}  // namespace

uint64_t PipelineConfigFingerprint(const store::TrajectoryStoreReader& source,
                                   const ContinuousPipelineOptions& options) {
  uint64_t h = kFnvOffset;
  HashU64(&h, 0x50495045ULL);  // "PIPE" domain separator
  const std::vector<store::StoreEntry>& index = source.index();
  HashU64(&h, index.size());
  for (const store::StoreEntry& entry : index) {
    HashI64(&h, entry.id);
    HashU64(&h, entry.num_points);
    HashI64(&h, entry.k);
    HashDouble(&h, entry.delta);
    HashDouble(&h, entry.min_x);
    HashDouble(&h, entry.min_y);
    HashDouble(&h, entry.max_x);
    HashDouble(&h, entry.max_y);
    HashDouble(&h, entry.t_min);
    HashDouble(&h, entry.t_max);
  }
  HashDouble(&h, options.window_seconds);
  HashU64(&h, options.min_fragment_points);
  // max_windows is deliberately NOT hashed: a capped run is a prefix of the
  // full grid, so raising the cap must resume into the published prefix.
  HashDouble(&h, options.partition.overlap_margin);
  HashU64(&h, options.partition.target_shard_size);
  HashU64(&h, options.partition.max_shard_size);
  HashU64(&h, options.partition.min_shard_size);
  HashU64(&h, options.partition.num_shards);
  HashU64(&h, WcopOptionsFingerprint(options.wcop));
  return h;
}

Result<ContinuousPipelineResult> RunContinuousPipeline(
    const ContinuousPipelineOptions& options) {
  if (options.source_store.empty() || options.output_dir.empty()) {
    return Status::InvalidArgument(
        "continuous pipeline: source_store and output_dir are required");
  }
  const std::string work_dir =
      options.work_dir.empty() ? options.output_dir + "/.work"
                               : options.work_dir;

  WCOP_ASSIGN_OR_RETURN(store::TrajectoryStoreReader source,
                        store::TrajectoryStoreReader::Open(
                            options.source_store));
  if (source.size() == 0) {
    return Status::InvalidArgument("continuous pipeline: source store " +
                                   options.source_store + " is empty");
  }
  WCOP_RETURN_IF_ERROR(EnsureDir(options.output_dir));
  WCOP_RETURN_IF_ERROR(EnsureDir(work_dir));

  // Window grid over the source's full lifetime. The pipeline partitions
  // time as [WindowStart(i), WindowStart(i+1)) — exact at shared
  // boundaries, so a point belongs to exactly one window and a carry merge
  // can never see a duplicate sample.
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const store::StoreEntry& entry : source.index()) {
    t_min = std::min(t_min, entry.t_min);
    t_max = std::max(t_max, entry.t_max);
  }
  WCOP_ASSIGN_OR_RETURN(const WindowPlan plan,
                        PlanWindows(t_min, t_max, options.window_seconds));
  size_t windows_total = plan.num_windows;
  if (options.max_windows > 0) {
    windows_total = std::min(windows_total, options.max_windows);
  }

  const uint64_t fingerprint = PipelineConfigFingerprint(source, options);

  telemetry::Telemetry* tel = options.wcop.telemetry;
  telemetry::Counter* windows_published = nullptr;
  telemetry::Counter* windows_resumed = nullptr;
  telemetry::Counter* windows_retried = nullptr;
  if (tel != nullptr) {
    windows_published = tel->metrics().GetCounter("pipeline.windows_published");
    windows_resumed = tel->metrics().GetCounter("pipeline.windows_resumed");
    windows_retried = tel->metrics().GetCounter("pipeline.windows_retried");
    tel->metrics().GetGauge("pipeline.windows_total")
        ->Set(static_cast<double>(windows_total));
  }

  ContinuousPipelineResult result;
  result.windows_total = windows_total;

  // ---- Resume scan: adopt the longest valid published prefix. ----------
  size_t first_window = 0;
  {
    const bool has_first_manifest =
        fs::exists(ManifestPath(options.output_dir, 0));
    if (has_first_manifest && !options.resume) {
      return Status::FailedPrecondition(
          "output directory " + options.output_dir +
          " already holds published windows; pass resume to continue them");
    }
    if (options.resume) {
      std::vector<WindowManifest> adopted;
      while (first_window < windows_total) {
        Result<WindowManifest> manifest = ValidatePublishedWindow(
            options.output_dir, first_window, fingerprint);
        if (!manifest.ok()) {
          if (manifest.status().code() == StatusCode::kFailedPrecondition) {
            return manifest.status();  // config mismatch is never recoverable
          }
          log::Info("pipeline: window needs recompute",
                    {{"window", first_window},
                     {"reason", manifest.status().ToString()}});
          break;
        }
        adopted.push_back(*std::move(manifest));
        ++first_window;
      }
      // The next window consumes carry_<first_window>; if its bytes do not
      // match what its producer committed (torn scratch, deleted work dir),
      // step back and recompute the producer — which rewrites the carry
      // deterministically. Producer inputs degrade the same way, so this
      // walks back as far as the damage reaches (worst case: window 0,
      // which consumes no carry at all).
      while (first_window > 0 &&
             first_window < windows_total &&  // nothing left -> no carry need
             !CarryChainIntact(work_dir, first_window,
                               adopted[first_window - 1])) {
        log::Info("pipeline: carry store is stale, stepping back one window",
                  {{"window", first_window}});
        adopted.pop_back();
        --first_window;
      }
      result.resumed_windows = first_window;
      if (windows_resumed != nullptr && first_window > 0) {
        windows_resumed->Add(first_window);
      }
      for (const WindowManifest& m : adopted) {
        result.published_fragments += m.published_fragments;
        result.suppressed_fragments += m.suppressed_delta;
        result.total_clusters += m.clusters;
        result.total_ttd += m.ttd;
        result.degraded = result.degraded || m.degraded;
        result.windows.push_back(m);
      }
    }
  }

  int64_t next_fragment_id =
      first_window == 0 ? 0 : result.windows.back().next_fragment_id;

  // ---- Window loop. ----------------------------------------------------
  for (size_t wi = first_window; wi < windows_total; ++wi) {
    const auto wall_start = std::chrono::steady_clock::now();
    const double window_start = plan.WindowStart(wi);
    const double window_end = plan.WindowStart(wi + 1);

    const std::string input_path = WindowInputPath(work_dir, wi);
    const std::string carry_in =
        wi == 0 ? std::string() : CarryPath(work_dir, wi);
    const std::string carry_out = CarryPath(work_dir, wi + 1);
    const std::string output_path = WindowStorePath(options.output_dir, wi);
    const std::string shard_dir = ShardDirPath(work_dir, wi);

    WindowOutcome outcome;
    int attempts = 0;
    auto run_window = [&]() -> Status {
      outcome = WindowOutcome();
      WCOP_FAILPOINT("pipeline.window_start");

      // 1. Extract: writes the window input store and the next carry
      //    store, both atomic. A stale output store from a previous torn
      //    attempt is simply overwritten below.
      store::WindowExtractOptions extract;
      extract.window_start = window_start;
      extract.window_end = window_end;
      extract.min_fragment_points = options.min_fragment_points;
      extract.next_fragment_id = next_fragment_id;
      extract.carry_in_path = carry_in;
      extract.window_out_path = input_path;
      extract.carry_out_path = carry_out;
      WCOP_ASSIGN_OR_RETURN(store::WindowExtraction extraction,
                            store::ExtractWindow(source, extract));
      WCOP_FAILPOINT("pipeline.window_extracted");

      WindowManifest& m = outcome.manifest;
      m.config_fingerprint = fingerprint;
      m.window_index = wi;
      m.window_start = window_start;
      m.window_end = window_end;
      m.input_fragments = extraction.fragments;
      m.carried_in = extraction.carried_in;
      m.carried_out = extraction.carried_out;
      m.suppressed_delta = extraction.suppressed;
      m.next_fragment_id = extraction.next_fragment_id;

      // 2. Anonymize, streaming published fragments straight to the final
      //    window store (its Finish() is the atomic output publish).
      if (extraction.fragments == 0) {
        WCOP_RETURN_IF_ERROR(WriteEmptyStore(output_path));
      } else {
        WCOP_ASSIGN_OR_RETURN(store::TrajectoryStoreReader window_reader,
                              store::TrajectoryStoreReader::Open(input_path));
        store::ShardRunOptions run;
        run.wcop = options.wcop;
        run.partition = options.partition;
        run.shard_dir = shard_dir;
        run.verify_shards = options.verify_shards;
        run.shard_parallelism = 1;  // stream_output_store requires it
        run.stream_output_store = output_path;
        if (options.shard_checkpoints) {
          run.checkpoint_dir = CheckpointDirPath(work_dir, wi);
          WCOP_RETURN_IF_ERROR(EnsureDir(run.checkpoint_dir));
        }
        Result<store::ShardedRunResult> sharded =
            store::RunShardedWcopCt(window_reader, run);
        if (!sharded.ok() && IsWindowSkip(sharded.status())) {
          log::Warn("pipeline: window skipped",
                    {{"window", wi},
                     {"reason", sharded.status().ToString()}});
          WCOP_RETURN_IF_ERROR(WriteEmptyStore(output_path));
          m.skipped = true;
          m.suppressed_delta += m.input_fragments;
        } else if (!sharded.ok()) {
          return sharded.status();
        } else {
          const AnonymizationReport& report = sharded->merged.report;
          m.published_fragments =
              m.input_fragments - report.trashed_trajectories;
          m.suppressed_delta += report.trashed_trajectories;
          m.clusters = report.num_clusters;
          m.ttd = report.ttd;
          m.degraded = report.degraded;
          outcome.window_degraded = report.degraded;
        }
      }
      WCOP_FAILPOINT("pipeline.window_anonymized");

      // 3. Digest the three stores this window commits to. The input
      //    digest pins the extraction, the carry digest lets the *next*
      //    run's resume scan verify the chain, the output digest is the
      //    byte-identity witness.
      WCOP_ASSIGN_OR_RETURN(FileDigest input_digest, DigestFile(input_path));
      m.input_crc = input_digest.crc;
      m.input_size = input_digest.size;
      WCOP_ASSIGN_OR_RETURN(FileDigest carry_digest, DigestFile(carry_out));
      m.carry_crc = carry_digest.crc;
      m.carry_size = carry_digest.size;
      WCOP_ASSIGN_OR_RETURN(FileDigest output_digest, DigestFile(output_path));
      m.output_crc = output_digest.crc;
      m.output_size = output_digest.size;
      WCOP_FAILPOINT("pipeline.window_published");

      // 4. Commit point.
      WCOP_RETURN_IF_ERROR(WriteWindowManifest(
          ManifestPath(options.output_dir, wi), m, options.publish_retry));
      WCOP_FAILPOINT("pipeline.manifest_saved");
      return Status::OK();
    };

    Status window_status;
    if (options.publish_retry != nullptr) {
      window_status = RetryCall(*options.publish_retry, run_window, &attempts);
      if (attempts > 1 && windows_retried != nullptr) {
        windows_retried->Add(static_cast<uint64_t>(attempts - 1));
      }
    } else {
      window_status = run_window();
    }
    WCOP_RETURN_IF_ERROR(window_status);

    // 5. Garbage-collect scratch beyond the two-carry retention horizon:
    //    carry_<wi-1> can only be needed if the resume scan steps back to
    //    recompute window wi-1, which it can no longer do once window wi's
    //    manifest committed with an intact chain. The window input and the
    //    shard scratch are re-derivable, so they go immediately.
    if (wi >= 1) {
      RemoveQuietly(CarryPath(work_dir, wi - 1));
    }
    RemoveQuietly(input_path);
    RemoveQuietly(shard_dir);
    RemoveQuietly(CheckpointDirPath(work_dir, wi));

    const WindowManifest& m = outcome.manifest;
    result.published_fragments += m.published_fragments;
    result.suppressed_fragments += m.suppressed_delta;
    result.total_clusters += m.clusters;
    result.total_ttd += m.ttd;
    result.degraded = result.degraded || outcome.window_degraded;
    result.windows.push_back(m);
    next_fragment_id = m.next_fragment_id;
    if (windows_published != nullptr) {
      windows_published->Add();
    }
    if (tel != nullptr) {
      tel->metrics().GetGauge("pipeline.windows_done")
          ->Set(static_cast<double>(wi + 1));
      tel->metrics().GetGauge("pipeline.carry_records")
          ->Set(static_cast<double>(m.carried_out));
    }
    if (options.progress) {
      PipelineProgress progress;
      progress.windows_done = wi + 1;
      progress.windows_total = windows_total;
      progress.published_fragments = result.published_fragments;
      progress.suppressed_fragments = result.suppressed_fragments;
      progress.carried = m.carried_out;
      progress.last_window_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      options.progress(progress);
    }
  }

  // A trailing carry never publishes: its source trajectories ended before
  // accumulating min_fragment_points in the final window. Count it as
  // suppressed so fragment accounting closes over the whole run.
  if (!result.windows.empty()) {
    result.suppressed_fragments += result.windows.back().carried_out;
  }
  return result;
}

}  // namespace pipeline
}  // namespace wcop
