#include <gtest/gtest.h>

#include "anon/colocalization.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

TEST(ColocalizationTest, ParallelWithinDelta) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 10);
  const Trajectory b = MakeLine(2, 0, 3, 1, 0, 10);
  EXPECT_TRUE(Colocalized(a, b, 3.0));
  EXPECT_TRUE(Colocalized(a, b, 5.0));
  EXPECT_FALSE(Colocalized(a, b, 2.9));
}

TEST(ColocalizationTest, SelfIsAlwaysColocalized) {
  const Trajectory a = MakeLine(1, 5, 5, 2, 2, 8);
  EXPECT_TRUE(Colocalized(a, a, 0.0));
}

TEST(ColocalizationTest, RequiresAlignedTimestamps) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 10, 1.0, 0.0);
  const Trajectory b = MakeLine(2, 0, 0, 1, 0, 10, 1.0, 0.5);  // shifted
  EXPECT_FALSE(Colocalized(a, b, 100.0));
}

TEST(ColocalizationTest, RequiresEqualSizes) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 10);
  const Trajectory b = MakeLine(2, 0, 0, 1, 0, 9);
  EXPECT_FALSE(Colocalized(a, b, 100.0));
  EXPECT_FALSE(Colocalized(Trajectory(), Trajectory(), 100.0));
}

TEST(ColocalizationTest, SinglePointViolationBreaksIt) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 10);
  Trajectory b = MakeLine(2, 0, 1, 1, 0, 10);
  b.mutable_points()[5].y = 100.0;  // one far point
  EXPECT_FALSE(Colocalized(a, b, 5.0));
}

TEST(IsAnonymitySetTest, SizeAndPairwiseChecks) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 10);
  const Trajectory b = MakeLine(2, 0, 2, 1, 0, 10);
  const Trajectory c = MakeLine(3, 0, 4, 1, 0, 10);
  // Pairwise max distance: a-c is 4.
  EXPECT_TRUE(IsAnonymitySet({&a, &b, &c}, 3, 4.0));
  EXPECT_FALSE(IsAnonymitySet({&a, &b, &c}, 3, 3.9));  // a-c too far
  EXPECT_FALSE(IsAnonymitySet({&a, &b}, 3, 100.0));    // too few members
  EXPECT_TRUE(IsAnonymitySet({&a, &b}, 2, 2.0));
}

}  // namespace
}  // namespace wcop
