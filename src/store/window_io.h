#ifndef WCOP_STORE_WINDOW_IO_H_
#define WCOP_STORE_WINDOW_IO_H_

/// Streamed per-window extraction over a trajectory store — the out-of-core
/// half of the continuous-publication pipeline (DESIGN.md "Continuous
/// publication pipeline").
///
/// ExtractWindow() walks the source store's index, reads only the blocks
/// whose lifetime overlaps the window (one trajectory in memory at a time),
/// slices each into the window's sub-trajectory with the shared
/// window-iterator core (anon/streaming.h), and writes the resulting
/// fragments to a window input store. Fragments too short to publish are
/// not silently dropped at window boundaries the way the in-memory
/// streaming driver drops them: when the source trajectory continues past
/// the window, the short fragment is spilled to a carry-over store and
/// merged (prepended) into the same user's fragment in the next window,
/// still carrying that user's (k_i, δ_i). Only a short fragment with no
/// continuation is suppressed for good.
///
/// Carry-over records are tiny by construction — a record is spilled only
/// while its accumulated points stay below `min_fragment_points` — so the
/// carry store (and the in-memory map the next window loads it into) is
/// bounded by the number of trajectories alive at the window boundary,
/// never by stream length. Both output stores are finished atomically
/// (write-tmp → fsync → rename), and the whole extraction is deterministic:
/// fragments are emitted in source index order with sequentially assigned
/// ids, so re-running a window after a crash reproduces byte-identical
/// stores.

#include <cstdint>
#include <string>

#include "common/result.h"
#include "store/store_file.h"

namespace wcop {
namespace store {

struct WindowExtractOptions {
  double window_start = 0.0;
  double window_end = 0.0;
  /// Fragments with fewer points than this are carried over (when the
  /// trajectory continues) or suppressed (when it does not). Values below 1
  /// are treated as 1.
  size_t min_fragment_points = 2;
  /// First fragment id to assign; ids increase sequentially in emission
  /// order. The pipeline threads this through windows so ids are unique
  /// across the whole stream.
  int64_t next_fragment_id = 0;
  /// Path of the carry-over store written by the previous window; empty or
  /// missing means no carry-in (the first window).
  std::string carry_in_path;
  /// Output: the window's input store (fragments to anonymize).
  std::string window_out_path;
  /// Output: the carry-over store for the next window. Always written
  /// (possibly empty) so the window's durable state is self-describing.
  std::string carry_out_path;
};

struct WindowExtraction {
  size_t fragments = 0;      ///< fragments written to the window store
  size_t carried_in = 0;     ///< carry-over records merged from the previous window
  size_t carried_out = 0;    ///< short fragments spilled to the next window
  size_t suppressed = 0;     ///< short fragments with no continuation (dropped)
  int64_t next_fragment_id = 0;  ///< first id unused after this window
};

/// Extracts one window from `source` per the options above. The window and
/// carry stores are atomically finished before returning; on any error
/// neither output path is created or replaced.
Result<WindowExtraction> ExtractWindow(const TrajectoryStoreReader& source,
                                       const WindowExtractOptions& options);

}  // namespace store
}  // namespace wcop

#endif  // WCOP_STORE_WINDOW_IO_H_
