#include "store/shard_runner.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "anon/checkpoint.h"
#include "anon/wcop.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/snapshot.h"
#include "common/stopwatch.h"

namespace wcop {
namespace store {

namespace {

constexpr uint32_t kShardCheckpointVersion = 1;

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create directory " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::string ShardFileName(const std::string& dir, const char* stem,
                          size_t shard_index, const char* ext) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s_%05zu%s", stem, shard_index, ext);
  return dir + "/" + buf;
}

// ---- fingerprint -------------------------------------------------------

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t FnvMixDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return FnvMix(h, bits);
}

/// Everything that must match for a shard checkpoint to be replayable:
/// the shard's dataset (ids, requirements, every point) and the driver
/// options that shape its output. `threads` is deliberately excluded —
/// PR 4 guarantees thread-count independence.
uint64_t ShardConfigFingerprint(const Dataset& shard_dataset,
                                const WcopOptions& options) {
  uint64_t h = DatasetFingerprint(shard_dataset);
  h = FnvMixDouble(h, options.trash_fraction);
  h = FnvMix(h, options.trash_max_override);
  h = FnvMixDouble(h, options.radius_max);
  h = FnvMixDouble(h, options.radius_growth);
  h = FnvMix(h, options.max_clustering_rounds);
  h = FnvMix(h, static_cast<uint64_t>(options.distance.kind));
  h = FnvMixDouble(h, options.distance.tolerance.dx);
  h = FnvMixDouble(h, options.distance.tolerance.dy);
  h = FnvMixDouble(h, options.distance.tolerance.dt);
  h = FnvMixDouble(h, options.distance.edr_scale);
  h = FnvMix(h, options.seed);
  h = FnvMix(h, static_cast<uint64_t>(options.pivot_policy));
  h = FnvMix(h, static_cast<uint64_t>(options.clustering_algo));
  h = FnvMix(h, static_cast<uint64_t>(options.delta_policy));
  h = FnvMix(h, options.allow_partial_results ? 1 : 0);
  return h;
}

// ---- checkpoint text codec (snapshot-envelope payload) -----------------

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
  out->push_back(' ');
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
  out->push_back(' ');
}

void AppendF64(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
  out->push_back(' ');
}

/// Minimal whitespace tokenizer mirroring the store-block scanner; every
/// failure is kDataLoss so a damaged checkpoint falls back to recompute.
class CkptScanner {
 public:
  explicit CkptScanner(std::string_view text) : text_(text) {}

  Result<std::string_view> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::DataLoss("shard checkpoint: truncated payload");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) == 0) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  Result<uint64_t> NextU64() {
    WCOP_ASSIGN_OR_RETURN(std::string_view tok, Next());
    char buf[32];
    if (tok.size() >= sizeof(buf)) {
      return Status::DataLoss("shard checkpoint: oversized token");
    }
    std::memcpy(buf, tok.data(), tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(buf, &end, 10);
    if (errno != 0 || end != buf + tok.size()) {
      return Status::DataLoss("shard checkpoint: bad integer");
    }
    return static_cast<uint64_t>(v);
  }

  Result<int64_t> NextI64() {
    WCOP_ASSIGN_OR_RETURN(std::string_view tok, Next());
    char buf[32];
    if (tok.size() >= sizeof(buf)) {
      return Status::DataLoss("shard checkpoint: oversized token");
    }
    std::memcpy(buf, tok.data(), tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(buf, &end, 10);
    if (errno != 0 || end != buf + tok.size()) {
      return Status::DataLoss("shard checkpoint: bad integer");
    }
    return static_cast<int64_t>(v);
  }

  Result<double> NextF64() {
    WCOP_ASSIGN_OR_RETURN(std::string_view tok, Next());
    char buf[64];
    if (tok.size() >= sizeof(buf)) {
      return Status::DataLoss("shard checkpoint: oversized token");
    }
    std::memcpy(buf, tok.data(), tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + tok.size()) {
      return Status::DataLoss("shard checkpoint: bad double");
    }
    return v;
  }

  Status Expect(std::string_view want) {
    WCOP_ASSIGN_OR_RETURN(std::string_view tok, Next());
    if (tok != want) {
      return Status::DataLoss("shard checkpoint: expected '" +
                              std::string(want) + "'");
    }
    return Status::OK();
  }

  size_t pos() const { return pos_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

struct ShardState {
  AnonymizationResult result;
  VerificationReport verification;
};

/// Checkpoint payload: fingerprint, report (timings excluded — a resumed
/// merge must be deterministic), verification verdict, deterministic
/// metric counters/gauges (histograms hold timings and are dropped), the
/// trash, the clusters (shard-local indices), and the published
/// trajectories in store record encoding.
std::string EncodeShardCheckpoint(uint64_t fingerprint,
                                  const ShardState& state) {
  const AnonymizationReport& r = state.result.report;
  std::string out = "wcop-shard-checkpoint 1\nfingerprint ";
  AppendU64(&out, fingerprint);
  out.append("\nreport ");
  AppendU64(&out, r.input_trajectories);
  AppendU64(&out, r.num_clusters);
  AppendU64(&out, r.trashed_trajectories);
  AppendU64(&out, r.trashed_points);
  AppendF64(&out, r.discernibility);
  AppendU64(&out, r.created_points);
  AppendU64(&out, r.deleted_points);
  AppendF64(&out, r.total_spatial_translation);
  AppendF64(&out, r.total_temporal_translation);
  AppendF64(&out, r.avg_spatial_translation);
  AppendF64(&out, r.avg_temporal_translation);
  AppendF64(&out, r.omega);
  AppendF64(&out, r.ttd);
  AppendF64(&out, r.editing_distortion);
  AppendF64(&out, r.total_distortion);
  AppendU64(&out, r.clustering_rounds);
  AppendF64(&out, r.final_radius);
  AppendU64(&out, r.degraded ? 1 : 0);
  out.append("\nverification ");
  AppendU64(&out, state.verification.ok ? 1 : 0);
  AppendU64(&out, state.verification.clusters_checked);
  AppendU64(&out, state.verification.violations);
  out.append("\ncounters ");
  AppendU64(&out, r.metrics.counters.size());
  out.push_back('\n');
  for (const auto& [name, value] : r.metrics.counters) {
    out.append(name);
    out.push_back(' ');
    AppendU64(&out, value);
    out.push_back('\n');
  }
  out.append("gauges ");
  AppendU64(&out, r.metrics.gauges.size());
  out.push_back('\n');
  for (const auto& [name, value] : r.metrics.gauges) {
    out.append(name);
    out.push_back(' ');
    AppendF64(&out, value);
    out.push_back('\n');
  }
  out.append("trashed ");
  AppendU64(&out, state.result.trashed_ids.size());
  for (int64_t id : state.result.trashed_ids) {
    AppendI64(&out, id);
  }
  out.append("\nclusters ");
  AppendU64(&out, state.result.clusters.size());
  out.push_back('\n');
  for (const AnonymityCluster& c : state.result.clusters) {
    AppendU64(&out, c.pivot);
    AppendI64(&out, c.k);
    AppendF64(&out, c.delta);
    AppendU64(&out, c.members.size());
    for (size_t m : c.members) {
      AppendU64(&out, m);
    }
    out.push_back('\n');
  }
  out.append("published ");
  AppendU64(&out, state.result.sanitized.size());
  out.push_back('\n');
  for (const Trajectory& t : state.result.sanitized.trajectories()) {
    AppendTrajectoryRecord(&out, t);
  }
  out.append("end\n");
  return out;
}

Result<ShardState> DecodeShardCheckpoint(std::string_view payload,
                                         uint64_t expected_fingerprint) {
  CkptScanner scan(payload);
  WCOP_RETURN_IF_ERROR(scan.Expect("wcop-shard-checkpoint"));
  WCOP_ASSIGN_OR_RETURN(uint64_t codec_version, scan.NextU64());
  if (codec_version != 1) {
    return Status::DataLoss("shard checkpoint: unknown codec version");
  }
  WCOP_RETURN_IF_ERROR(scan.Expect("fingerprint"));
  WCOP_ASSIGN_OR_RETURN(uint64_t fingerprint, scan.NextU64());
  if (fingerprint != expected_fingerprint) {
    return Status::FailedPrecondition(
        "shard checkpoint does not match this shard/configuration");
  }
  ShardState state;
  AnonymizationReport& r = state.result.report;
  WCOP_RETURN_IF_ERROR(scan.Expect("report"));
  WCOP_ASSIGN_OR_RETURN(r.input_trajectories, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(r.num_clusters, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(r.trashed_trajectories, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(r.trashed_points, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(r.discernibility, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(r.created_points, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(r.deleted_points, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(r.total_spatial_translation, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(r.total_temporal_translation, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(r.avg_spatial_translation, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(r.avg_temporal_translation, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(r.omega, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(r.ttd, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(r.editing_distortion, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(r.total_distortion, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(r.clustering_rounds, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(r.final_radius, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(uint64_t degraded, scan.NextU64());
  r.degraded = degraded != 0;
  WCOP_RETURN_IF_ERROR(scan.Expect("verification"));
  WCOP_ASSIGN_OR_RETURN(uint64_t ok, scan.NextU64());
  state.verification.ok = ok != 0;
  WCOP_ASSIGN_OR_RETURN(state.verification.clusters_checked, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(state.verification.violations, scan.NextU64());
  WCOP_RETURN_IF_ERROR(scan.Expect("counters"));
  WCOP_ASSIGN_OR_RETURN(uint64_t num_counters, scan.NextU64());
  if (num_counters > payload.size()) {
    return Status::DataLoss("shard checkpoint: implausible counter count");
  }
  for (uint64_t i = 0; i < num_counters; ++i) {
    WCOP_ASSIGN_OR_RETURN(std::string_view name, scan.Next());
    WCOP_ASSIGN_OR_RETURN(uint64_t value, scan.NextU64());
    r.metrics.counters.emplace_back(std::string(name), value);
  }
  WCOP_RETURN_IF_ERROR(scan.Expect("gauges"));
  WCOP_ASSIGN_OR_RETURN(uint64_t num_gauges, scan.NextU64());
  if (num_gauges > payload.size()) {
    return Status::DataLoss("shard checkpoint: implausible gauge count");
  }
  for (uint64_t i = 0; i < num_gauges; ++i) {
    WCOP_ASSIGN_OR_RETURN(std::string_view name, scan.Next());
    WCOP_ASSIGN_OR_RETURN(double value, scan.NextF64());
    r.metrics.gauges.emplace_back(std::string(name), value);
  }
  WCOP_RETURN_IF_ERROR(scan.Expect("trashed"));
  WCOP_ASSIGN_OR_RETURN(uint64_t num_trashed, scan.NextU64());
  if (num_trashed > payload.size()) {
    return Status::DataLoss("shard checkpoint: implausible trash count");
  }
  state.result.trashed_ids.reserve(num_trashed);
  for (uint64_t i = 0; i < num_trashed; ++i) {
    WCOP_ASSIGN_OR_RETURN(int64_t id, scan.NextI64());
    state.result.trashed_ids.push_back(id);
  }
  WCOP_RETURN_IF_ERROR(scan.Expect("clusters"));
  WCOP_ASSIGN_OR_RETURN(uint64_t num_clusters, scan.NextU64());
  if (num_clusters > payload.size()) {
    return Status::DataLoss("shard checkpoint: implausible cluster count");
  }
  state.result.clusters.reserve(num_clusters);
  for (uint64_t i = 0; i < num_clusters; ++i) {
    AnonymityCluster c;
    WCOP_ASSIGN_OR_RETURN(uint64_t pivot, scan.NextU64());
    c.pivot = pivot;
    WCOP_ASSIGN_OR_RETURN(int64_t k, scan.NextI64());
    c.k = static_cast<int>(k);
    WCOP_ASSIGN_OR_RETURN(c.delta, scan.NextF64());
    WCOP_ASSIGN_OR_RETURN(uint64_t num_members, scan.NextU64());
    if (num_members > payload.size()) {
      return Status::DataLoss("shard checkpoint: implausible member count");
    }
    c.members.reserve(num_members);
    for (uint64_t m = 0; m < num_members; ++m) {
      WCOP_ASSIGN_OR_RETURN(uint64_t member, scan.NextU64());
      c.members.push_back(member);
    }
    state.result.clusters.push_back(std::move(c));
  }
  WCOP_RETURN_IF_ERROR(scan.Expect("published"));
  WCOP_ASSIGN_OR_RETURN(uint64_t num_published, scan.NextU64());
  if (num_published > payload.size()) {
    return Status::DataLoss("shard checkpoint: implausible published count");
  }
  state.result.sanitized.mutable_trajectories().reserve(num_published);
  size_t pos = scan.pos();
  for (uint64_t i = 0; i < num_published; ++i) {
    WCOP_ASSIGN_OR_RETURN(Trajectory t,
                          ParseTrajectoryRecord(payload, &pos));
    state.result.sanitized.Add(std::move(t));
  }
  CkptScanner tail(payload.substr(pos));
  WCOP_RETURN_IF_ERROR(tail.Expect("end"));
  return state;
}

// ---- metrics merge -----------------------------------------------------

void MergeSnapshotInto(telemetry::MetricsSnapshot* a,
                       const telemetry::MetricsSnapshot& b) {
  for (const auto& [name, value] : b.counters) {
    auto it = std::find_if(a->counters.begin(), a->counters.end(),
                           [&](const auto& p) { return p.first == name; });
    if (it == a->counters.end()) {
      a->counters.emplace_back(name, value);
    } else {
      it->second += value;
    }
  }
  for (const auto& [name, value] : b.gauges) {
    auto it = std::find_if(a->gauges.begin(), a->gauges.end(),
                           [&](const auto& p) { return p.first == name; });
    if (it == a->gauges.end()) {
      a->gauges.emplace_back(name, value);
    } else {
      it->second = std::max(it->second, value);
    }
  }
  for (const telemetry::HistogramSummary& h : b.histograms) {
    auto it = std::find_if(a->histograms.begin(), a->histograms.end(),
                           [&](const auto& s) { return s.name == h.name; });
    if (it == a->histograms.end()) {
      a->histograms.push_back(h);
      continue;
    }
    // Exact merge of count/sum/min/max; the percentile fields become
    // count-weighted blends (the underlying buckets are gone).
    const double wa = static_cast<double>(it->count);
    const double wb = static_cast<double>(h.count);
    const double total = std::max(1.0, wa + wb);
    it->p50 = (it->p50 * wa + h.p50 * wb) / total;
    it->p90 = (it->p90 * wa + h.p90 * wb) / total;
    it->p99 = (it->p99 * wa + h.p99 * wb) / total;
    it->count += h.count;
    it->sum += h.sum;
    it->min = std::min(it->min, h.min);
    it->max = std::max(it->max, h.max);
    it->mean = it->count == 0 ? 0.0
                              : static_cast<double>(it->sum) /
                                    static_cast<double>(it->count);
  }
  std::sort(a->counters.begin(), a->counters.end());
  std::sort(a->gauges.begin(), a->gauges.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::sort(a->histograms.begin(), a->histograms.end(),
            [](const auto& x, const auto& y) { return x.name < y.name; });
}

}  // namespace

void MergeReportInto(AnonymizationReport* a, const AnonymizationReport& b) {
  a->input_trajectories += b.input_trajectories;
  a->num_clusters += b.num_clusters;
  a->trashed_trajectories += b.trashed_trajectories;
  a->trashed_points += b.trashed_points;
  a->discernibility += b.discernibility;
  a->created_points += b.created_points;
  a->deleted_points += b.deleted_points;
  a->total_spatial_translation += b.total_spatial_translation;
  a->total_temporal_translation += b.total_temporal_translation;
  a->omega = std::max(a->omega, b.omega);
  a->ttd += b.ttd;
  a->editing_distortion += b.editing_distortion;
  a->total_distortion += b.total_distortion;
  a->runtime_seconds += b.runtime_seconds;
  a->clustering_rounds = std::max(a->clustering_rounds, b.clustering_rounds);
  a->final_radius = std::max(a->final_radius, b.final_radius);
  if (b.degraded && !a->degraded) {
    a->degraded = true;
    a->degraded_reason = b.degraded_reason;
  }
  // Recompute the per-published averages from the summed totals — the same
  // formula the monolithic drivers use, so a single-shard merge is exact.
  const size_t published = a->input_trajectories - a->trashed_trajectories;
  a->avg_spatial_translation =
      a->total_spatial_translation /
      static_cast<double>(std::max<size_t>(1, published));
  a->avg_temporal_translation =
      a->total_temporal_translation /
      static_cast<double>(std::max<size_t>(1, published));
  MergeSnapshotInto(&a->metrics, b.metrics);
}

Result<ShardedRunResult> RunShardedWcopCt(const TrajectoryStoreReader& source,
                                          const ShardRunOptions& options) {
  if (source.size() == 0) {
    return Status::InvalidArgument("cannot shard an empty store");
  }
  if (options.shard_parallelism > 1 &&
      !options.stream_output_store.empty()) {
    return Status::InvalidArgument(
        "stream_output_store requires shard_parallelism == 1 (published "
        "outputs must append in shard order)");
  }
  Stopwatch wall;
  telemetry::Telemetry* parent_tel = options.wcop.telemetry;

  ShardedRunResult out;
  WCOP_ASSIGN_OR_RETURN(
      out.partition, PartitionStoreIndex(source.index(), options.partition));
  const size_t num_shards = out.partition.shards.size();

  const std::string shard_dir = options.shard_dir.empty()
                                    ? source.path() + ".shards"
                                    : options.shard_dir;
  WCOP_RETURN_IF_ERROR(MakeDir(shard_dir));
  if (!options.checkpoint_dir.empty()) {
    WCOP_RETURN_IF_ERROR(MakeDir(options.checkpoint_dir));
  }
  // Janitor pass: a kill between write-tmp and rename (store writer or
  // checkpoint snapshot) leaves `*.tmp` orphans behind; sweep them now,
  // before any writer is live, so crashed runs converge instead of
  // accumulating garbage.
  WCOP_RETURN_IF_ERROR(SweepStaleArtifacts(shard_dir, parent_tel).status());
  if (!options.checkpoint_dir.empty()) {
    WCOP_RETURN_IF_ERROR(
        SweepStaleArtifacts(options.checkpoint_dir, parent_tel).status());
  }

  // Phase 1: materialize one store file per shard. Sequential by design —
  // reads walk the source forward per shard (members are sorted) and the
  // writer never holds more than one trajectory in memory.
  {
    WCOP_TRACE_SPAN(parent_tel, "shard/write_stores");
    for (const ShardSpec& shard : out.partition.shards) {
      WCOP_FAILPOINT("shard.write_store");
      WCOP_RETURN_IF_ERROR(CheckRunContext(options.wcop.run_context));
      WCOP_ASSIGN_OR_RETURN(
          TrajectoryStoreWriter writer,
          TrajectoryStoreWriter::Create(
              ShardFileName(shard_dir, "shard", shard.shard_index, ".wst")));
      for (size_t pos : shard.members) {
        WCOP_ASSIGN_OR_RETURN(Trajectory t, source.Read(pos));
        WCOP_RETURN_IF_ERROR(writer.Append(t));
      }
      WCOP_RETURN_IF_ERROR(writer.Finish());
    }
  }

  // Per-shard RunContext slices: parent deadline and cancellation token
  // shared, resource budget divided evenly up front (a deterministic split
  // — handing out leftovers as shards finish would make shard outcomes
  // depend on scheduling).
  std::vector<std::unique_ptr<RunContext>> contexts(num_shards);
  if (options.wcop.run_context != nullptr) {
    const RunContext* parent = options.wcop.run_context;
    for (size_t s = 0; s < num_shards; ++s) {
      contexts[s] = std::make_unique<RunContext>();
      if (parent->has_deadline()) {
        contexts[s]->set_deadline(*parent->deadline());
      }
      if (parent->cancellation_token().has_value()) {
        contexts[s]->set_cancellation_token(*parent->cancellation_token());
      }
      contexts[s]->set_trace_id(parent->trace_id());
      ResourceBudget slice = parent->budget();
      if (slice.max_distance_computations > 0) {
        slice.max_distance_computations = std::max<uint64_t>(
            1, slice.max_distance_computations / num_shards);
      }
      if (slice.max_candidate_pairs > 0) {
        slice.max_candidate_pairs =
            std::max<uint64_t>(1, slice.max_candidate_pairs / num_shards);
      }
      contexts[s]->set_budget(slice);
    }
  }
  std::vector<std::unique_ptr<telemetry::Telemetry>> shard_tels(num_shards);
  if (parent_tel != nullptr) {
    for (size_t s = 0; s < num_shards; ++s) {
      shard_tels[s] = std::make_unique<telemetry::Telemetry>();
    }
  }

  // Phase 2: anonymize every shard independently over wcop::parallel.
  std::vector<ShardState> states(num_shards);
  std::vector<ShardOutcome> outcomes(num_shards);
  // Live progress: callbacks are serialized under their own mutex so the
  // sink sees strictly monotonic shards_done even with parallel shards.
  std::mutex progress_mu;
  size_t shards_done = 0;
  uint64_t progress_distance_calls = 0;
  auto report_progress = [&](size_t s_done_delta, uint64_t distance_delta) {
    if (!options.progress) {
      return;
    }
    ShardProgress p;
    std::lock_guard<std::mutex> lock(progress_mu);
    shards_done += s_done_delta;
    progress_distance_calls += distance_delta;
    p.shards_done = shards_done;
    p.shards_total = num_shards;
    p.distance_calls = progress_distance_calls;
    options.progress(p);
  };
  report_progress(0, 0);
  const int shard_parallelism = std::max(1, options.shard_parallelism);
  parallel::ParallelOptions pool;
  pool.threads = shard_parallelism;
  pool.grain = 1;
  pool.context = options.wcop.run_context;
  pool.telemetry = parent_tel;
  std::vector<Status> shard_status(num_shards, Status::OK());
  auto run_shard = [&](size_t s) -> Status {
    WCOP_TRACE_SPAN(parent_tel, "shard/run");
        WCOP_FAILPOINT("shard.run");
        const ShardSpec& shard = out.partition.shards[s];
        const std::string store_path =
            ShardFileName(shard_dir, "shard", shard.shard_index, ".wst");
        WCOP_ASSIGN_OR_RETURN(TrajectoryStoreReader reader,
                              TrajectoryStoreReader::Open(store_path));
        WCOP_ASSIGN_OR_RETURN(Dataset shard_dataset,
                              reader.ReadAll(contexts[s].get()));

        WcopOptions wcop = options.wcop;
        wcop.run_context = contexts[s].get();
        wcop.telemetry = shard_tels[s].get();
        if (shard_parallelism > 1) {
          wcop.threads = 1;  // one parallelism layer at a time
        }
        const uint64_t fingerprint =
            ShardConfigFingerprint(shard_dataset, wcop);
        const std::string ckpt_path =
            options.checkpoint_dir.empty()
                ? std::string()
                : ShardFileName(options.checkpoint_dir, "shard",
                                shard.shard_index, ".ckpt");
        outcomes[s].shard_index = shard.shard_index;
        outcomes[s].input_trajectories = shard_dataset.size();
        // Exact distance work this shard performed: the RunContext charge
        // counter when a context is attached, else the report's counter
        // (checkpoint-restored shards only have the latter).
        auto shard_distance = [&]() -> uint64_t {
          if (contexts[s] != nullptr &&
              contexts[s]->distance_computations() > 0) {
            return contexts[s]->distance_computations();
          }
          return outcomes[s].report.metrics.CounterValue("distance.calls.edr");
        };

        if (!ckpt_path.empty()) {
          Result<Snapshot> snapshot = ReadSnapshotFile(ckpt_path);
          if (snapshot.ok() &&
              snapshot->format_version == kShardCheckpointVersion) {
            Result<ShardState> restored =
                DecodeShardCheckpoint(snapshot->payload, fingerprint);
            if (restored.ok()) {
              states[s] = std::move(restored).value();
              outcomes[s].report = states[s].result.report;
              outcomes[s].verification = states[s].verification;
              outcomes[s].from_checkpoint = true;
              report_progress(1, shard_distance());
              return Status::OK();
            }
          }
          // Missing, damaged, or mismatched checkpoints all fall through
          // to a clean recompute; a torn file never poisons the run.
        }

        WCOP_ASSIGN_OR_RETURN(states[s].result,
                              RunWcopCt(shard_dataset, wcop));
        if (options.verify_shards) {
          states[s].verification =
              VerifyAnonymity(shard_dataset, states[s].result);
        } else {
          states[s].verification.ok = true;
        }
        outcomes[s].report = states[s].result.report;
        outcomes[s].verification = states[s].verification;

        if (!ckpt_path.empty()) {
          WCOP_RETURN_IF_ERROR(WriteSnapshotFile(
              ckpt_path, EncodeShardCheckpoint(fingerprint, states[s]),
              kShardCheckpointVersion));
          WCOP_FAILPOINT("shard.checkpoint_saved");
        }
        report_progress(1, shard_distance());
        return Status::OK();
  };
  Status run_status = parallel::ParallelFor(
      num_shards, [&](size_t s) { shard_status[s] = run_shard(s); }, pool);
  WCOP_RETURN_IF_ERROR(run_status);
  // Report per-shard failures in shard order (deterministic first error).
  for (size_t s = 0; s < num_shards; ++s) {
    WCOP_RETURN_IF_ERROR(shard_status[s]);
  }

  // Charge the parent context with what the slices consumed so the
  // caller's budget accounting matches a monolithic run.
  if (options.wcop.run_context != nullptr) {
    for (size_t s = 0; s < num_shards; ++s) {
      options.wcop.run_context->ChargeDistance(
          contexts[s]->distance_computations());
      options.wcop.run_context->ChargeCandidatePairs(
          contexts[s]->candidate_pairs());
    }
  }

  // Phase 3: merge in shard order.
  WCOP_TRACE_SPAN(parent_tel, "shard/merge");
  const bool stream_out = !options.stream_output_store.empty();
  std::unique_ptr<TrajectoryStoreWriter> out_writer;
  if (stream_out) {
    WCOP_ASSIGN_OR_RETURN(
        TrajectoryStoreWriter writer,
        TrajectoryStoreWriter::Create(options.stream_output_store));
    out_writer = std::make_unique<TrajectoryStoreWriter>(std::move(writer));
  }
  size_t input_base = 0;
  bool first_report = true;
  for (size_t s = 0; s < num_shards; ++s) {
    ShardState& state = states[s];
    out.shards.push_back(outcomes[s]);
    if (outcomes[s].from_checkpoint) {
      ++out.resumed_shards;
    }
    if (!outcomes[s].verification.ok) {
      out.all_verified = false;
    }
    if (first_report) {
      out.merged.report = state.result.report;
      first_report = false;
    } else {
      MergeReportInto(&out.merged.report, state.result.report);
    }
    for (AnonymityCluster cluster : state.result.clusters) {
      cluster.pivot += input_base;
      for (size_t& m : cluster.members) {
        m += input_base;
      }
      out.merged.clusters.push_back(std::move(cluster));
    }
    out.merged.trashed_ids.insert(out.merged.trashed_ids.end(),
                                  state.result.trashed_ids.begin(),
                                  state.result.trashed_ids.end());
    if (stream_out) {
      for (const Trajectory& t : state.result.sanitized.trajectories()) {
        WCOP_RETURN_IF_ERROR(out_writer->Append(t));
      }
    } else {
      for (Trajectory& t : state.result.sanitized.mutable_trajectories()) {
        out.merged.sanitized.Add(std::move(t));
      }
    }
    input_base += outcomes[s].input_trajectories;
    state.result = AnonymizationResult();  // free shard memory eagerly
  }
  if (out_writer != nullptr) {
    WCOP_RETURN_IF_ERROR(out_writer->Finish());
  }

  if (!options.keep_shard_stores) {
    for (const ShardSpec& shard : out.partition.shards) {
      std::remove(
          ShardFileName(shard_dir, "shard", shard.shard_index, ".wst")
              .c_str());
    }
    ::rmdir(shard_dir.c_str());  // succeeds only when empty; best effort
  }

  out.merged.report.runtime_seconds = wall.ElapsedSeconds();
  if (parent_tel != nullptr) {
    parent_tel->metrics().GetCounter("shard.completed")->Add(num_shards);
    parent_tel->metrics()
        .GetCounter("shard.resumed")
        ->Add(out.resumed_shards);
    out.merged.report.metrics = parent_tel->metrics().Snapshot();
    for (size_t s = 0; s < num_shards; ++s) {
      MergeSnapshotInto(&out.merged.report.metrics,
                        shard_tels[s]->metrics().Snapshot());
      // Fold each shard's span buffer into the parent recorder as its own
      // trace-process lane (pid 2 + shard index; the coordinator is pid 1)
      // so the exported JSON is one coherent per-job timeline.
      parent_tel->trace().MergeFrom(
          shard_tels[s]->trace(),
          static_cast<uint32_t>(2 + out.partition.shards[s].shard_index));
    }
  }
  return out;
}

}  // namespace store
}  // namespace wcop
