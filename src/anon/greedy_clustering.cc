#include "anon/greedy_clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "anon/distance_cache.h"
#include "common/failpoint.h"
#include "common/parallel.h"

namespace wcop {

Result<ClusteringOutcome> GreedyClustering(const Dataset& dataset,
                                           size_t trash_max,
                                           const WcopOptions& options) {
  const size_t n = dataset.size();
  if (n == 0) {
    return Status::InvalidArgument("cannot cluster an empty dataset");
  }
  if (options.radius_max <= 0.0) {
    return Status::InvalidArgument("radius_max must be positive");
  }
  if (options.radius_growth <= 1.0) {
    return Status::InvalidArgument("radius_growth must exceed 1");
  }

  const RunContext* context = options.run_context;
  telemetry::Telemetry* tel = options.telemetry;
  WCOP_TRACE_SPAN(tel, "cluster/greedy");
  // Counter handles resolved once up front; null when telemetry is off.
  telemetry::Counter* attempts = nullptr;
  telemetry::Counter* accepted = nullptr;
  telemetry::Counter* rejected_radius = nullptr;
  telemetry::Counter* rejected_exhausted = nullptr;
  telemetry::Counter* leftover_assigned = nullptr;
  telemetry::Counter* leftover_trashed = nullptr;
  telemetry::Counter* rounds_counter = nullptr;
  telemetry::Histogram* cluster_size = nullptr;
  if (tel != nullptr) {
    attempts = tel->metrics().GetCounter("cluster.attempts");
    accepted = tel->metrics().GetCounter("cluster.accepted");
    rejected_radius = tel->metrics().GetCounter("cluster.rejected.radius");
    rejected_exhausted =
        tel->metrics().GetCounter("cluster.rejected.exhausted");
    leftover_assigned = tel->metrics().GetCounter("cluster.leftover.assigned");
    leftover_trashed = tel->metrics().GetCounter("cluster.leftover.trashed");
    rounds_counter = tel->metrics().GetCounter("cluster.rounds");
    cluster_size = tel->metrics().GetHistogram("cluster.size");
  }
  // Memoizes symmetric pairwise distances across radius-relaxation rounds
  // (the distance function is deterministic, so recomputation is pure
  // waste). Sized for the pools the first round will scan; the cache only
  // ever holds distinct pairs, so cap at the full pair count.
  const size_t expected_pairs =
      std::min(n * (n - 1) / 2, n * size_t{64});
  ShardedPairDistanceCache distances(dataset, options.distance, context, tel,
                                     expected_pairs);
  // Pure distance evaluations fan out over the pool; every ordering and
  // tie-breaking decision below stays on this thread, so the outcome is
  // identical for any thread count (see DESIGN.md "Parallel execution").
  // Budget charges happen inside the cache; trips are observed at the same
  // per-cluster-attempt checks as the serial path, never mid-batch.
  parallel::ParallelOptions par;
  par.threads = options.threads;
  par.grain = 1;  // one EDR evaluation is orders of magnitude above overhead
  par.telemetry = tel;
  Rng rng(options.seed);
  double radius_max = options.radius_max;

  ClusteringOutcome best;
  size_t best_trash = std::numeric_limits<size_t>::max();

  for (size_t round = 0; round < options.max_clustering_rounds; ++round) {
    WCOP_FAILPOINT("cluster.greedy_round");
    WCOP_TRACE_SPAN(tel, "cluster/greedy_round");
    telemetry::CounterAdd(rounds_counter);
    std::vector<bool> active(n, true);
    std::vector<bool> clustered(n, false);
    std::vector<size_t> active_list(n);
    for (size_t i = 0; i < n; ++i) {
      active_list[i] = i;
    }
    std::vector<AnonymityCluster> clusters;

    // Set when the run context trips mid-round and allow_partial_results
    // turns the trip into degradation: no further clusters are formed and
    // every unclustered trajectory is suppressed.
    bool degraded = false;
    std::string degraded_reason;

    // --- Phase 1: pivot selection and cluster growth (lines 3-19). ---
    std::vector<size_t> chosen_pivots;
    std::vector<double> scratch_values;
    while (!active_list.empty()) {
      // Cooperative yield point: one check per cluster attempt.
      if (Status s = CheckRunContext(context); !s.ok()) {
        if (!options.allow_partial_results) {
          return s;
        }
        degraded = true;
        degraded_reason = s.ToString();
        break;
      }
      // Pivot selection: random (Algorithm 3) or farthest-first (the W4M
      // heuristic, exposed as an ablation).
      size_t pivot;
      if (options.pivot_policy == WcopOptions::PivotPolicy::kFarthestFirst &&
          !chosen_pivots.empty()) {
        // Batch the candidate scores (pure, exact distances); the argmax
        // with its first-wins tie-break runs serially below.
        scratch_values.assign(active_list.size(), 0.0);
        WCOP_TRACE_SPAN(tel, "cluster/farthest_scan");
        Status batch = parallel::ParallelFor(
            active_list.size(),
            [&](size_t t) {
              double nearest_pivot = std::numeric_limits<double>::infinity();
              for (size_t p : chosen_pivots) {
                nearest_pivot =
                    std::min(nearest_pivot, distances.Get(p, active_list[t]));
              }
              scratch_values[t] = nearest_pivot;
            },
            par);
        if (!batch.ok()) {
          return batch;
        }
        pivot = active_list[0];
        double best_score = -1.0;
        for (size_t t = 0; t < active_list.size(); ++t) {
          if (scratch_values[t] > best_score) {
            best_score = scratch_values[t];
            pivot = active_list[t];
          }
        }
      } else {
        pivot = active_list[rng.UniformIndex(active_list.size())];
      }
      chosen_pivots.push_back(pivot);
      WCOP_TRACE_SPAN(tel, "cluster/grow");
      telemetry::CounterAdd(attempts);

      AnonymityCluster cluster;
      cluster.pivot = pivot;
      cluster.members.push_back(pivot);
      cluster.k = dataset[pivot].requirement().k;
      cluster.delta = dataset[pivot].requirement().delta;

      // Distances from the pivot to every unclustered candidate, nearest
      // first (the pivot's NN pool of line 8 is D - Clustered). The batch
      // computes pure distances into per-candidate slots; candidates whose
      // length lower bound already exceeds radius_max keep the bound — they
      // sort after every in-radius candidate and can only appear in
      // clusters the radius test rejects anyway, so the accepted clusters
      // are exactly those of a full computation.
      std::vector<size_t> candidates;
      candidates.reserve(n);
      for (size_t cand = 0; cand < n; ++cand) {
        if (cand == pivot || clustered[cand]) {
          continue;
        }
        candidates.push_back(cand);
      }
      scratch_values.assign(candidates.size(), 0.0);
      {
        WCOP_TRACE_SPAN(tel, "cluster/pivot_scan");
        Status batch = parallel::ParallelFor(
            candidates.size(),
            [&](size_t t) {
              scratch_values[t] =
                  distances.GetWithCutoff(pivot, candidates[t], radius_max);
            },
            par);
        if (!batch.ok()) {
          return batch;
        }
      }
      std::vector<std::pair<double, size_t>> pool;
      pool.reserve(candidates.size());
      for (size_t t = 0; t < candidates.size(); ++t) {
        pool.emplace_back(scratch_values[t], candidates[t]);
      }
      std::sort(pool.begin(), pool.end());
      if (context != nullptr) {
        context->ChargeCandidatePairs(pool.size());
      }

      size_t next_candidate = 0;
      bool grown = true;
      while (static_cast<size_t>(cluster.k) > cluster.members.size()) {
        if (next_candidate >= pool.size()) {
          grown = false;  // not enough unclustered trajectories remain
          break;
        }
        const size_t nn = pool[next_candidate].second;
        ++next_candidate;
        cluster.members.push_back(nn);
        cluster.k = std::max(cluster.k, dataset[nn].requirement().k);
        cluster.delta = std::min(cluster.delta, dataset[nn].requirement().delta);
      }

      // Acceptance test (line 13): pivot-to-member radius within bounds.
      // A cutoff lookup suffices — a lower bound only comes back when it
      // exceeds radius_max, in which case the true radius does too.
      double radius = 0.0;
      for (size_t m : cluster.members) {
        radius = std::max(radius,
                          distances.GetWithCutoff(pivot, m, radius_max));
      }
      if (grown && radius <= radius_max) {
        telemetry::CounterAdd(accepted);
        if (cluster_size != nullptr) {
          cluster_size->Record(cluster.members.size());
        }
        for (size_t m : cluster.members) {
          clustered[m] = true;
          active[m] = false;
        }
        clusters.push_back(std::move(cluster));
        // Compact the active list.
        active_list.erase(
            std::remove_if(active_list.begin(), active_list.end(),
                           [&](size_t idx) { return !active[idx]; }),
            active_list.end());
      } else {
        // Reject: only the pivot leaves the active set (line 18).
        telemetry::CounterAdd(grown ? rejected_radius : rejected_exhausted);
        active[pivot] = false;
        active_list.erase(
            std::remove(active_list.begin(), active_list.end(), pivot),
            active_list.end());
      }
    }

    // --- Phase 2: leftover assignment (lines 20-26). ---
    std::vector<size_t> trash;
    std::vector<size_t> eligible;
    for (size_t idx = 0; idx < n; ++idx) {
      if (clustered[idx]) {
        continue;
      }
      if (!degraded) {
        if (Status s = CheckRunContext(context); !s.ok()) {
          if (!options.allow_partial_results) {
            return s;
          }
          degraded = true;
          degraded_reason = s.ToString();
        }
      }
      if (degraded) {
        // Degradation: leftovers are suppressed without spending further
        // distance computations.
        telemetry::CounterAdd(leftover_trashed);
        trash.push_back(idx);
        continue;
      }
      const Requirement& req = dataset[idx].requirement();
      // Eligibility (cheap, metadata-only) on the coordinator; the eligible
      // pivot distances are batched. The nearest-compatible selection keeps
      // the serial first-wins tie-break over the cluster order.
      eligible.clear();
      for (size_t c = 0; c < clusters.size(); ++c) {
        const AnonymityCluster& cluster = clusters[c];
        // Eligibility: the cluster (including tau itself) satisfies tau's k,
        // and tau's delta tolerance is no stricter than the cluster's delta.
        if (cluster.members.size() + 1 < static_cast<size_t>(req.k)) {
          continue;
        }
        if (cluster.delta > req.delta) {
          continue;
        }
        eligible.push_back(c);
      }
      scratch_values.assign(eligible.size(), 0.0);
      Status batch = parallel::ParallelFor(
          eligible.size(),
          [&](size_t t) {
            scratch_values[t] = distances.GetWithCutoff(
                clusters[eligible[t]].pivot, idx, radius_max);
          },
          par);
      if (!batch.ok()) {
        return batch;
      }
      double best_dist = std::numeric_limits<double>::infinity();
      AnonymityCluster* best_cluster = nullptr;
      for (size_t t = 0; t < eligible.size(); ++t) {
        const double d = scratch_values[t];
        if (d <= radius_max && d < best_dist) {
          best_dist = d;
          best_cluster = &clusters[eligible[t]];
        }
      }
      if (best_cluster != nullptr) {
        telemetry::CounterAdd(leftover_assigned);
        best_cluster->members.push_back(idx);
        best_cluster->k = std::max(best_cluster->k, req.k);
      } else {
        telemetry::CounterAdd(leftover_trashed);
        trash.push_back(idx);
      }
    }

    if (degraded) {
      // The trip ends the run here: later rounds would only spend more of
      // the exhausted budget. The clusters formed so far are complete
      // anonymity sets; everything else is trash (possibly > trash_max).
      ClusteringOutcome out;
      out.clusters = std::move(clusters);
      out.trash = std::move(trash);
      out.rounds = round + 1;
      out.final_radius = radius_max;
      out.degraded = true;
      out.degraded_reason = std::move(degraded_reason);
      return out;
    }

    if (trash.size() < best_trash) {
      best_trash = trash.size();
      best.clusters = clusters;
      best.trash = trash;
      best.rounds = round + 1;
      best.final_radius = radius_max;
    }
    if (trash.size() <= trash_max) {
      ClusteringOutcome out;
      out.clusters = std::move(clusters);
      out.trash = std::move(trash);
      out.rounds = round + 1;
      out.final_radius = radius_max;
      return out;
    }
    radius_max *= options.radius_growth;  // line 27: increase(radius_max)
  }

  return Status::Unsatisfiable(
      "clustering could not meet trash_max=" + std::to_string(trash_max) +
      " within " + std::to_string(options.max_clustering_rounds) +
      " radius relaxations (best trash: " + std::to_string(best_trash) + ")");
}

}  // namespace wcop
