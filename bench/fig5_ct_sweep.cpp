// Reproduces Figure 5: WCOP-CT total distortion (a) and discernibility (b)
// for every combination of k_max in {5,10,25,50,100} and delta_max in
// {50,100,250,500,1000,1400}, with per-trajectory requirements drawn as
// k ~ U[2,k_max], delta ~ U[10,delta_max].
//
// Expected shape (Section 6.3): both metrics react to both parameters;
// distortion is *non-monotone* in k_max because large k inflates the trash,
// which triggers radius_max relaxation and more aggressive translation.
//
// Run:  ./fig5_ct_sweep [--points=120] [--json-out=fig5.json]

#include <cstdio>
#include <iostream>

#include "anon/wcop.h"
#include "bench_util.h"
#include "exp/grid_sweep.h"

using namespace wcop;
using namespace wcop::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const BenchScale scale = BenchScale::FromArgs(args);
  const Dataset base = MakeBenchDataset(scale);
  JsonOut json_out(args);

  Result<GridSweepResult> sweep = RunGridSweep(
      PaperKValues(), PaperDeltaValues(),
      [&](const SweepCell& cell) -> Result<std::map<std::string, double>> {
        Dataset dataset = base;
        AssignPaperRequirements(&dataset, cell.k_max, cell.delta_max,
                                scale.seed + 100 + cell.k_index * 16 +
                                    cell.delta_index);
        WcopOptions options;
        options.seed = scale.seed + 2;
        options.threads = scale.threads;
        // Fresh sink per sweep cell: each json record stands alone.
        telemetry::Telemetry tel;
        options.telemetry = &tel;
        WCOP_ASSIGN_OR_RETURN(AnonymizationResult r,
                              RunWcopCt(dataset, options));
        json_out.Add("fig5/wcop_ct",
                     {{"points", static_cast<double>(scale.points)},
                      {"kmax", static_cast<double>(cell.k_max)},
                      {"dmax", cell.delta_max}},
                     r.report.runtime_seconds, r.report.metrics);
        return std::map<std::string, double>{
            {"distortion", r.report.total_distortion},
            {"discernibility", r.report.discernibility},
            {"trash", static_cast<double>(r.report.trashed_trajectories)},
        };
      });
  if (!sweep.ok()) {
    std::cerr << "sweep failed: " << sweep.status() << "\n";
    return 1;
  }

  PrintHeader("Figure 5(a): WCOP-CT total distortion");
  sweep->PrintTable("distortion", std::cout);
  PrintHeader("Figure 5(b): WCOP-CT discernibility");
  sweep->PrintTable("discernibility", std::cout);

  std::printf("\nshape check vs paper: [%s] distortion non-monotone in "
              "k_max for some delta_max series\n",
              sweep->AnySeriesNonMonotone("distortion") ? "ok" : "MISMATCH");
  if (!json_out.Flush()) {
    return 1;
  }
  return 0;
}
