file(REMOVE_RECURSE
  "libwcop_distance.a"
)
