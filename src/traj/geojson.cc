#include "traj/geojson.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace wcop {

namespace {

void AppendFeature(std::ostringstream& os, const Trajectory& t,
                   const LocalProjection& projection, bool first) {
  if (!first) {
    os << ",\n";
  }
  os << "    {\"type\":\"Feature\",\"properties\":{"
     << "\"traj_id\":" << t.id() << ",\"object_id\":" << t.object_id()
     << ",\"parent_id\":" << t.parent_id()
     << ",\"k\":" << t.requirement().k;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", t.requirement().delta);
  os << ",\"delta\":" << buf;
  std::snprintf(buf, sizeof(buf), "%.3f", t.StartTime());
  os << ",\"start_time\":" << buf;
  std::snprintf(buf, sizeof(buf), "%.3f", t.EndTime());
  os << ",\"end_time\":" << buf;
  os << "},\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
  for (size_t i = 0; i < t.size(); ++i) {
    double lat = 0.0, lon = 0.0;
    projection.ToGeographic(t[i], &lat, &lon);
    std::snprintf(buf, sizeof(buf), "[%.7f,%.7f]", lon, lat);
    os << (i == 0 ? "" : ",") << buf;
  }
  os << "]}}";
}

}  // namespace

std::string DatasetToGeoJson(const Dataset& dataset,
                             const LocalProjection& projection) {
  std::ostringstream os;
  os << "{\"type\":\"FeatureCollection\",\"features\":[\n";
  bool first = true;
  for (const Trajectory& t : dataset.trajectories()) {
    AppendFeature(os, t, projection, first);
    first = false;
  }
  os << "\n]}\n";
  return os.str();
}

Status WriteDatasetGeoJson(const Dataset& dataset,
                           const LocalProjection& projection,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << DatasetToGeoJson(dataset, projection);
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace wcop
