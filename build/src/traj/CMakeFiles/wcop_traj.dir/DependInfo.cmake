
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traj/dataset.cc" "src/traj/CMakeFiles/wcop_traj.dir/dataset.cc.o" "gcc" "src/traj/CMakeFiles/wcop_traj.dir/dataset.cc.o.d"
  "/root/repo/src/traj/geojson.cc" "src/traj/CMakeFiles/wcop_traj.dir/geojson.cc.o" "gcc" "src/traj/CMakeFiles/wcop_traj.dir/geojson.cc.o.d"
  "/root/repo/src/traj/io.cc" "src/traj/CMakeFiles/wcop_traj.dir/io.cc.o" "gcc" "src/traj/CMakeFiles/wcop_traj.dir/io.cc.o.d"
  "/root/repo/src/traj/resample.cc" "src/traj/CMakeFiles/wcop_traj.dir/resample.cc.o" "gcc" "src/traj/CMakeFiles/wcop_traj.dir/resample.cc.o.d"
  "/root/repo/src/traj/simplify.cc" "src/traj/CMakeFiles/wcop_traj.dir/simplify.cc.o" "gcc" "src/traj/CMakeFiles/wcop_traj.dir/simplify.cc.o.d"
  "/root/repo/src/traj/trajectory.cc" "src/traj/CMakeFiles/wcop_traj.dir/trajectory.cc.o" "gcc" "src/traj/CMakeFiles/wcop_traj.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wcop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/wcop_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
