#include "anon/streaming.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "anon/wcop_ct.h"
#include "common/failpoint.h"

namespace wcop {

Result<StreamingResult> RunStreamingWcop(const Dataset& dataset,
                                         const StreamingOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (options.window_seconds <= 0.0) {
    return Status::InvalidArgument("window_seconds must be positive");
  }

  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const Trajectory& t : dataset.trajectories()) {
    t_min = std::min(t_min, t.StartTime());
    t_max = std::max(t_max, t.EndTime());
  }

  telemetry::Telemetry* tel = options.wcop.telemetry;
  WCOP_TRACE_SPAN(tel, "streaming/run");
  telemetry::Counter* windows_counter = nullptr;
  telemetry::Counter* windows_skipped = nullptr;
  telemetry::Counter* fragments_counter = nullptr;
  if (tel != nullptr) {
    windows_counter = tel->metrics().GetCounter("streaming.windows");
    windows_skipped = tel->metrics().GetCounter("streaming.windows_skipped");
    fragments_counter = tel->metrics().GetCounter("streaming.fragments");
  }

  StreamingResult result;
  std::vector<Trajectory> published;
  int64_t next_id = 0;
  for (double window_start = t_min; window_start <= t_max;
       window_start += options.window_seconds) {
    WCOP_FAILPOINT("streaming.window");
    WCOP_TRACE_SPAN(tel, "streaming/window");
    // Cooperative yield point: one check per publication window. With
    // partial results allowed, a trip stops the stream — the windows
    // published so far each carry the full per-window guarantee.
    if (Status s = CheckRunContext(options.wcop.run_context); !s.ok()) {
      if (!options.wcop.allow_partial_results) {
        return s;
      }
      result.degraded = true;
      result.degraded_reason = s.ToString();
      break;
    }
    const double window_end = window_start + options.window_seconds;
    // Collect each trajectory's fragment inside [window_start, window_end).
    std::vector<Trajectory> fragments;
    for (const Trajectory& t : dataset.trajectories()) {
      if (t.EndTime() < window_start || t.StartTime() >= window_end) {
        continue;
      }
      std::vector<Point> points;
      for (const Point& p : t.points()) {
        if (p.t >= window_start && p.t < window_end) {
          points.push_back(p);
        }
      }
      if (points.size() < std::max<size_t>(options.min_fragment_points, 2)) {
        result.suppressed_fragments += points.empty() ? 0 : 1;
        continue;
      }
      Trajectory fragment(next_id++, std::move(points), t.requirement());
      fragment.set_object_id(t.object_id());
      fragment.set_parent_id(t.id());
      fragments.push_back(std::move(fragment));
    }

    StreamingWindowSummary summary;
    summary.window_start = window_start;
    summary.input_fragments = fragments.size();
    if (fragments.empty()) {
      continue;  // silent gap between bursts: nothing to publish
    }
    telemetry::CounterAdd(windows_counter);
    telemetry::CounterAdd(fragments_counter, fragments.size());
    Result<AnonymizationResult> window_result =
        RunWcopCt(Dataset(std::move(fragments)), options.wcop);
    if (!window_result.ok()) {
      // Unsatisfiable window (e.g. too few co-travellers for someone's k):
      // the provider suppresses the whole window rather than leaking it.
      telemetry::CounterAdd(windows_skipped);
      summary.skipped = true;
      result.suppressed_fragments += summary.input_fragments;
      result.windows.push_back(summary);
      continue;
    }
    if (window_result->report.degraded && !result.degraded) {
      result.degraded = true;
      result.degraded_reason = window_result->report.degraded_reason;
    }
    summary.published_fragments = window_result->sanitized.size();
    summary.clusters = window_result->report.num_clusters;
    summary.ttd = window_result->report.ttd;
    result.suppressed_fragments += window_result->trashed_ids.size();
    result.total_clusters += window_result->report.num_clusters;
    result.total_ttd += window_result->report.ttd;
    for (const Trajectory& t : window_result->sanitized.trajectories()) {
      published.push_back(t);
    }
    result.windows.push_back(summary);
  }
  result.sanitized = Dataset(std::move(published));
  if (tel != nullptr) {
    AnonymizationReport scratch;
    SnapshotTelemetry(options.wcop, &scratch);
    result.metrics = std::move(scratch.metrics);
  }
  return result;
}

}  // namespace wcop
