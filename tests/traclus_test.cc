#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "segment/traclus.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

/// L-shaped trajectory: east for `leg` points then north for `leg` points.
Trajectory MakeRightAngle(int64_t id, size_t leg, double step = 10.0) {
  std::vector<Point> points;
  double t = 0.0;
  for (size_t i = 0; i < leg; ++i) {
    points.emplace_back(step * static_cast<double>(i), 0.0, t);
    t += 1.0;
  }
  const double corner_x = step * static_cast<double>(leg - 1);
  for (size_t i = 1; i <= leg; ++i) {
    points.emplace_back(corner_x, step * static_cast<double>(i), t);
    t += 1.0;
  }
  return Trajectory(id, std::move(points));
}

TEST(TraclusPartitionTest, StraightLineHasNoInteriorCharPoints) {
  const Trajectory t = MakeLine(1, 0, 0, 10, 0, 50);
  const std::vector<size_t> cps = TraclusCharacteristicPoints(t, {});
  ASSERT_GE(cps.size(), 2u);
  EXPECT_EQ(cps.front(), 0u);
  EXPECT_EQ(cps.back(), 49u);
  // A perfectly straight path compresses to its two endpoints.
  EXPECT_EQ(cps.size(), 2u);
}

TEST(TraclusPartitionTest, RightAngleGetsCutNearCorner) {
  const Trajectory t = MakeRightAngle(1, 20);
  const std::vector<size_t> cps = TraclusCharacteristicPoints(t, {});
  ASSERT_GE(cps.size(), 3u);
  // Some characteristic point must fall within a few samples of the corner
  // (index 19).
  bool near_corner = false;
  for (size_t cp : cps) {
    if (cp >= 16 && cp <= 22) {
      near_corner = true;
    }
  }
  EXPECT_TRUE(near_corner);
}

TEST(TraclusPartitionTest, HigherAdvantageMeansFewerCuts) {
  // Noisy zig-zag: more MDL advantage -> coarser partitioning.
  Rng rng(4);
  std::vector<Point> points;
  for (int i = 0; i < 200; ++i) {
    points.emplace_back(i * 10.0, rng.UniformReal(-40, 40), i);
  }
  const Trajectory t(1, points);
  TraclusOptions strict;
  strict.mdl_advantage = 0.0;
  TraclusOptions loose;
  loose.mdl_advantage = 16.0;
  EXPECT_GE(TraclusCharacteristicPoints(t, strict).size(),
            TraclusCharacteristicPoints(t, loose).size());
}

TEST(TraclusPartitionTest, TinyTrajectories) {
  EXPECT_TRUE(TraclusCharacteristicPoints(Trajectory(), {}).empty());
  const Trajectory one(1, {Point(0, 0, 0)});
  EXPECT_EQ(TraclusCharacteristicPoints(one, {}).size(), 1u);
  const Trajectory two = MakeLine(1, 0, 0, 1, 0, 2);
  const auto cps = TraclusCharacteristicPoints(two, {});
  ASSERT_EQ(cps.size(), 2u);
  EXPECT_EQ(cps[0], 0u);
  EXPECT_EQ(cps[1], 1u);
}

TEST(TraclusSegmenterTest, PreservesEveryPointExactlyOnce) {
  Dataset d = testing_util::SmallSynthetic(10, 80);
  TraclusSegmenter segmenter;
  Result<Dataset> segmented = segmenter.Segment(d);
  ASSERT_TRUE(segmented.ok()) << segmented.status();
  EXPECT_EQ(segmented->TotalPoints(), d.TotalPoints());
  EXPECT_GE(segmented->size(), d.size());
  EXPECT_TRUE(segmented->Validate().ok());
}

TEST(TraclusSegmenterTest, ChildrenInheritRequirementAndParent) {
  Dataset d;
  Trajectory t = MakeRightAngle(5, 15);
  t.set_requirement(Requirement{7, 123.0});
  t.set_object_id(3);
  d.Add(t);
  TraclusSegmenter segmenter;
  Result<Dataset> segmented = segmenter.Segment(d);
  ASSERT_TRUE(segmented.ok());
  ASSERT_GE(segmented->size(), 2u);
  std::set<int64_t> ids;
  for (const Trajectory& sub : segmented->trajectories()) {
    EXPECT_EQ(sub.parent_id(), 5);
    EXPECT_EQ(sub.object_id(), 3);
    EXPECT_EQ(sub.requirement().k, 7);
    EXPECT_DOUBLE_EQ(sub.requirement().delta, 123.0);
    EXPECT_TRUE(ids.insert(sub.id()).second) << "duplicate sub id";
    EXPECT_GE(sub.size(), 2u);
  }
}

TEST(TraclusSegmenterTest, MinPointsRespected) {
  Dataset d;
  d.Add(MakeRightAngle(1, 30));
  TraclusOptions options;
  options.min_sub_trajectory_points = 8;
  TraclusSegmenter segmenter(options);
  Result<Dataset> segmented = segmenter.Segment(d);
  ASSERT_TRUE(segmented.ok());
  for (const Trajectory& sub : segmented->trajectories()) {
    EXPECT_GE(sub.size(), 8u);
  }
}

TEST(ExtractCharacteristicSegmentsTest, TagsProvenance) {
  Dataset d;
  d.Add(MakeRightAngle(11, 10));
  d.Add(MakeLine(22, 500, 500, 5, 0, 10));
  const std::vector<TaggedSegment> segs =
      ExtractCharacteristicSegments(d, {});
  ASSERT_GE(segs.size(), 3u);
  std::set<int64_t> sources;
  for (const TaggedSegment& s : segs) {
    sources.insert(s.trajectory_id);
    EXPECT_GT(s.segment.Length(), 0.0);
  }
  EXPECT_EQ(sources.size(), 2u);
}

TEST(ClusterSegmentsTest, ParallelBundlesCluster) {
  // Three bundles of 5 nearly identical segments, far apart.
  std::vector<TaggedSegment> segments;
  for (int bundle = 0; bundle < 3; ++bundle) {
    const double base_y = bundle * 10000.0;
    for (int i = 0; i < 5; ++i) {
      segments.push_back(TaggedSegment{
          LineSegment(Point(0, base_y + i * 2.0, 0),
                      Point(500, base_y + i * 2.0, 0)),
          bundle * 5 + i, 0});
    }
  }
  TraclusOptions options;
  options.eps = 50.0;
  options.min_lines = 3;
  const SegmentClustering clustering = ClusterSegments(segments, options);
  EXPECT_EQ(clustering.num_clusters, 3);
  for (int label : clustering.labels) {
    EXPECT_GE(label, 0);
  }
}

TEST(RepresentativeTrajectoryTest, AveragesParallelSegments) {
  std::vector<TaggedSegment> segments;
  std::vector<size_t> members;
  for (int i = 0; i < 5; ++i) {
    segments.push_back(TaggedSegment{
        LineSegment(Point(0, i * 2.0, 0), Point(100, i * 2.0, 0)), i, 0});
    members.push_back(i);
  }
  TraclusOptions options;
  options.min_representative_lines = 3;
  const Trajectory rep =
      RepresentativeTrajectory(segments, members, options);
  ASSERT_GE(rep.size(), 2u);
  // The representative should run along y ~= 4 (mean of 0,2,4,6,8).
  for (const Point& p : rep.points()) {
    EXPECT_NEAR(p.y, 4.0, 1e-6);
    EXPECT_GE(p.x, -1e-9);
    EXPECT_LE(p.x, 100.0 + 1e-9);
  }
}

TEST(RunTraclusTest, FullPipelineOnBundledLanes) {
  // Three bundles of parallel lanes; the full pipeline should produce one
  // cluster (and representative) per bundle.
  Dataset d;
  int64_t id = 0;
  for (int bundle = 0; bundle < 3; ++bundle) {
    const double base_y = bundle * 20000.0;
    for (int lane = 0; lane < 4; ++lane) {
      d.Add(MakeLine(id++, 0, base_y + lane * 3.0, 50, 0, 12));
    }
  }
  TraclusOptions options;
  options.eps = 100.0;
  options.min_lines = 3;
  options.min_representative_lines = 3;
  const TraclusClusteringResult result = RunTraclus(d, options);
  EXPECT_EQ(result.segments.size(), 12u);  // straight lanes: one segment each
  EXPECT_EQ(result.clustering.num_clusters, 3);
  ASSERT_EQ(result.representatives.size(), 3u);
  for (const Trajectory& rep : result.representatives) {
    EXPECT_GE(rep.size(), 2u);
    // Representatives run along the lane direction (x), spanning the lanes.
    EXPECT_GT(rep.back().x - rep.front().x, 100.0);
  }
}

TEST(RunTraclusTest, EmptyDatasetYieldsEmptyResult) {
  const TraclusClusteringResult result = RunTraclus(Dataset(), {});
  EXPECT_TRUE(result.segments.empty());
  EXPECT_EQ(result.clustering.num_clusters, 0);
  EXPECT_TRUE(result.representatives.empty());
}

TEST(RepresentativeTrajectoryTest, EmptyWhenTooSparse) {
  std::vector<TaggedSegment> segments = {
      TaggedSegment{LineSegment(Point(0, 0, 0), Point(10, 0, 0)), 0, 0}};
  TraclusOptions options;
  options.min_representative_lines = 3;
  EXPECT_TRUE(RepresentativeTrajectory(segments, {0}, options).empty());
}

}  // namespace
}  // namespace wcop
