#include <gtest/gtest.h>

#include "anon/attack.h"
#include "anon/wcop_ct.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

TEST(AttackTest, LinkageAgainstUnprotectedDataSucceeds) {
  // Publishing the original data verbatim: the adversary's observations
  // match the victim's own trajectory exactly, so top-1 linkage is ~100%.
  const Dataset d = SmallSynthetic(30, 50);
  Result<AttackResult> r = SimulateLinkageAttack(d, d);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->victims_attacked, 30u);
  EXPECT_GE(r->top1_success_rate, 0.95);
  EXPECT_LE(r->mean_true_rank, 1.2);
}

TEST(AttackTest, AnonymizationReducesLinkage) {
  const Dataset d = SmallSynthetic(40, 50, /*k_max=*/5);
  Result<AnonymizationResult> anonymized = RunWcopCt(d);
  ASSERT_TRUE(anonymized.ok());

  Result<AttackResult> before = SimulateLinkageAttack(d, d);
  Result<AttackResult> after = SimulateLinkageAttack(d, anonymized->sanitized);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  // The whole point of (k,delta)-anonymity: co-localized cluster members
  // are near-indistinguishable, so linkage confidence drops substantially.
  EXPECT_LT(after->top1_success_rate, before->top1_success_rate);
  EXPECT_GT(after->mean_true_rank, before->mean_true_rank);
  EXPECT_LT(after->mean_reciprocal_rank, 1.0);
}

TEST(AttackTest, NoiseWeakensTheAdversary) {
  const Dataset d = SmallSynthetic(30, 50);
  AttackOptions clean;
  AttackOptions noisy;
  noisy.observation_noise = 2000.0;  // very coarse observations
  Result<AttackResult> exact = SimulateLinkageAttack(d, d, clean);
  Result<AttackResult> blurred = SimulateLinkageAttack(d, d, noisy);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(blurred.ok());
  EXPECT_LE(blurred->top1_success_rate, exact->top1_success_rate);
}

TEST(AttackTest, VictimSubsetRespected) {
  const Dataset d = SmallSynthetic(30, 40);
  AttackOptions options;
  options.num_victims = 10;
  Result<AttackResult> r = SimulateLinkageAttack(d, d, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->victims_attacked, 10u);
}

TEST(AttackTest, SuppressedVictimsAreSkipped) {
  Dataset original = SmallSynthetic(20, 40);
  Dataset published = original;
  published.mutable_trajectories().pop_back();  // one victim suppressed
  Result<AttackResult> r = SimulateLinkageAttack(original, published);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->victims_attacked, 19u);
}

TEST(AttackTest, DeterministicForSeed) {
  const Dataset d = SmallSynthetic(25, 40);
  AttackOptions options;
  options.seed = 1234;
  const auto a = SimulateLinkageAttack(d, d, options);
  const auto b = SimulateLinkageAttack(d, d, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->top1_hits, b->top1_hits);
  EXPECT_DOUBLE_EQ(a->mean_true_rank, b->mean_true_rank);
}

TEST(AttackTest, UncertaintyAwareAdversaryIsWeaker) {
  // Observations drawn from a wide possible motion curve carry less
  // information than exact fixes.
  const Dataset d = SmallSynthetic(30, 50);
  AttackOptions exact;
  AttackOptions uncertain;
  uncertain.pmc_delta = 4000.0;
  Result<AttackResult> a = SimulateLinkageAttack(d, d, exact);
  Result<AttackResult> b = SimulateLinkageAttack(d, d, uncertain);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->top1_success_rate, a->top1_success_rate);
  EXPECT_GE(b->mean_true_rank, a->mean_true_rank);
}

TEST(TrackingAttackTest, FollowsRawDataPerfectly) {
  const Dataset d = SmallSynthetic(20, 50);
  TrackingAttackOptions options;
  options.step_seconds = 30.0;
  Result<TrackingAttackResult> r = SimulateTrackingAttack(d, d, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->victims_tracked, 20u);
  // Tracking exact data from the true start should mostly stay on target
  // (companions travelling in the same lane may occasionally steal it).
  EXPECT_GE(r->tracking_success_rate, 0.7);
}

TEST(TrackingAttackTest, CrossingsConfuseTheTracker) {
  // Two co-temporal parallel lanes that get fake crossings: tracking
  // confusion should rise (switches > 0), which is Path Perturbation's
  // design goal. We emulate a crossing directly by swapping the second
  // halves of two lanes.
  Dataset d;
  std::vector<Point> a, b;
  for (int i = 0; i < 60; ++i) {
    a.emplace_back(i * 10.0, 0.0, i * 10.0);
    b.emplace_back(i * 10.0, 40.0, i * 10.0);
  }
  Dataset crossed;
  std::vector<Point> a2(a.begin(), a.begin() + 30);
  std::vector<Point> b2(b.begin(), b.begin() + 30);
  for (int i = 30; i < 60; ++i) {
    a2.push_back(b[static_cast<size_t>(i)]);
    b2.push_back(a[static_cast<size_t>(i)]);
  }
  d.Add(Trajectory(0, a));
  d.Add(Trajectory(1, b));
  crossed.Add(Trajectory(0, a2));
  crossed.Add(Trajectory(1, b2));

  TrackingAttackOptions options;
  options.step_seconds = 10.0;
  Result<TrackingAttackResult> clean = SimulateTrackingAttack(d, d, options);
  Result<TrackingAttackResult> confused =
      SimulateTrackingAttack(d, crossed, options);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(confused.ok());
  EXPECT_DOUBLE_EQ(clean->tracking_success_rate, 1.0);
  // After the swap, following position continuity lands the tracker on the
  // *other* user's id.
  EXPECT_LT(confused->tracking_success_rate, clean->tracking_success_rate);
}

TEST(TrackingAttackTest, RejectsBadInputs) {
  const Dataset d = SmallSynthetic(10, 30);
  TrackingAttackOptions options;
  options.step_seconds = 0.0;
  EXPECT_FALSE(SimulateTrackingAttack(d, d, options).ok());
  EXPECT_FALSE(SimulateTrackingAttack(Dataset(), d, {}).ok());
}

TEST(AttackTest, RejectsBadInputs) {
  const Dataset d = SmallSynthetic(10, 30);
  EXPECT_FALSE(SimulateLinkageAttack(Dataset(), d).ok());
  EXPECT_FALSE(SimulateLinkageAttack(d, Dataset()).ok());
  AttackOptions options;
  options.observations_per_victim = 0;
  EXPECT_FALSE(SimulateLinkageAttack(d, d, options).ok());
}

}  // namespace
}  // namespace wcop
