// Extension experiment (not a paper figure): the privacy/utility frontier
// of every anonymizer in the library, measured empirically —
//   privacy: re-identification linkage attack (top-1 success, mean rank);
//   utility: range-query distortion and spatial-density divergence
//            (the W4M line's utility measures), plus the paper's TTD.
//
// Publishing the raw data sits at one extreme (full utility, no privacy);
// the universal baselines over-anonymize; the personalized pipeline should
// trace a better frontier, and the Mahdavifar baseline shows what happens
// when users cannot bound their quality loss.
//
// Run:  ./ext_privacy_utility [--points=120] [--kmax=5] [--dmax=250]

#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/table_printer.h"

using namespace wcop;
using namespace wcop::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const BenchScale scale = BenchScale::FromArgs(args);
  const int k_max = static_cast<int>(args.GetInt("kmax", 5));
  const double delta_max = args.GetDouble("dmax", 250.0);

  Dataset dataset = MakeBenchDataset(scale);
  AssignPaperRequirements(&dataset, k_max, delta_max, scale.seed + 1);

  Rng query_rng(scale.seed + 7);
  const std::vector<RangeQuery> queries =
      GenerateRangeQueries(dataset, 60, 0.05, 0.02, &query_rng);
  AttackOptions attack;
  attack.observations_per_victim = 5;
  attack.seed = scale.seed + 8;

  PrintHeader("Extension: privacy/utility frontier (kmax=" +
              std::to_string(k_max) + ", dmax=" +
              FormatSignificant(delta_max, 4) + ")");
  TablePrinter table({"publisher", "attack top-1", "mean true rank",
                      "RQ rel. error", "density div.", "TTD", "clusters",
                      "runtime (s)"});

  auto evaluate = [&](const std::string& name, const Dataset& published,
                      std::optional<double> ttd, size_t clusters,
                      double runtime) {
    Result<AttackResult> linkage =
        SimulateLinkageAttack(dataset, published, attack);
    const RangeQueryDistortionResult rq =
        RangeQueryDistortion(dataset, published, queries);
    const double density = SpatialDensityDivergence(dataset, published);
    table.AddRow({name,
                  linkage.ok() ? FormatSignificant(
                                     linkage->top1_success_rate, 3)
                               : "n/a",
                  linkage.ok() ? FormatSignificant(linkage->mean_true_rank, 3)
                               : "n/a",
                  FormatSignificant(rq.mean_relative_error, 3),
                  FormatSignificant(density, 3),
                  ttd ? FormatSignificant(*ttd, 4) : "0",
                  std::to_string(clusters),
                  FormatSignificant(runtime, 3)});
  };

  // Raw publication: the no-privacy extreme.
  evaluate("original (no anonymization)", dataset, std::nullopt, 0, 0.0);

  WcopOptions options;
  options.seed = scale.seed + 2;

  struct Algo {
    std::string name;
    Result<AnonymizationResult> result;
  };
  std::vector<Algo> algos;
  algos.push_back({"W4M (k=kmax, d=dmax)",
                   RunW4m(dataset, k_max, delta_max, options)});
  algos.push_back({"WCOP-NV", RunWcopNv(dataset, options)});
  algos.push_back({"WCOP-CT", RunWcopCt(dataset, options)});
  {
    WcopOptions agglo = options;
    agglo.clustering_algo = WcopOptions::ClusteringAlgo::kAgglomerative;
    algos.push_back({"WCOP-CT (agglomerative)", RunWcopCt(dataset, agglo)});
  }
  algos.push_back({"Mahdavifar et al. [9]", RunMahdavifar(dataset)});

  for (Algo& algo : algos) {
    if (!algo.result.ok()) {
      std::cerr << algo.name << " failed: " << algo.result.status() << "\n";
      continue;
    }
    const AnonymizationReport& r = algo.result->report;
    evaluate(algo.name, algo.result->sanitized, r.ttd, r.num_clusters,
             r.runtime_seconds);
  }
  table.Print(std::cout);

  std::printf(
      "\nreading guide: original data has attack success ~1 (no privacy);\n"
      "a healthy (k,delta)-anonymizer pushes top-1 success towards 1/k\n"
      "while keeping range-query error and density divergence low.\n");
  return 0;
}
