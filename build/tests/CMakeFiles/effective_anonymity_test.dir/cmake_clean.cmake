file(REMOVE_RECURSE
  "CMakeFiles/effective_anonymity_test.dir/effective_anonymity_test.cc.o"
  "CMakeFiles/effective_anonymity_test.dir/effective_anonymity_test.cc.o.d"
  "effective_anonymity_test"
  "effective_anonymity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effective_anonymity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
