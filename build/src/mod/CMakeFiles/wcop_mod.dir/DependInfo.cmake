
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mod/trajectory_store.cc" "src/mod/CMakeFiles/wcop_mod.dir/trajectory_store.cc.o" "gcc" "src/mod/CMakeFiles/wcop_mod.dir/trajectory_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traj/CMakeFiles/wcop_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/wcop_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/wcop_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/wcop_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wcop_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/wcop_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/wcop_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wcop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
