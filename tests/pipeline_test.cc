// Unit and in-process integration tests of the continuous publication
// pipeline: the window-iterator core, out-of-core window extraction with
// carry-over, the manifest codec, and the engine's publish / resume /
// refuse / retry semantics. Process-kill coverage lives in
// pipeline_chaos_test.cc.

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "anon/streaming.h"
#include "common/failpoint.h"
#include "common/retry.h"
#include "pipeline/continuous.h"
#include "pipeline/manifest.h"
#include "store/store_file.h"
#include "store/window_io.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;

namespace fs = std::filesystem;

// Three groups of three co-travelling lines in [0, 290] s: window 100 s
// gives exactly three windows with every group clusterable at k=2.
Dataset GroupedDataset() {
  std::vector<Trajectory> trajectories;
  int64_t id = 0;
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 3; ++i) {
      Trajectory t = MakeLineWithReq(id, 2000.0 * g, 30.0 * i, 5.0, 0.0,
                                     /*n=*/30, /*k=*/2, /*delta=*/300.0,
                                     /*dt=*/10.0);
      t.set_object_id(id);
      trajectories.push_back(std::move(t));
      ++id;
    }
  }
  return Dataset(std::move(trajectories));
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("pipeline_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string WriteSource(const Dataset& dataset) {
    const std::string path = Path("source.wst");
    EXPECT_TRUE(store::WriteDatasetStore(dataset, path).ok());
    return path;
  }

  pipeline::ContinuousPipelineOptions BaseOptions(const std::string& source,
                                                  const std::string& out) {
    pipeline::ContinuousPipelineOptions options;
    options.source_store = source;
    options.output_dir = Path(out);
    options.window_seconds = 100.0;
    options.verify_shards = true;
    options.wcop.seed = 7;
    return options;
  }

  /// Byte map of every published artifact (stores + manifests) in `out`.
  std::map<std::string, std::string> PublishedBytes(const std::string& out) {
    std::map<std::string, std::string> bytes;
    for (const auto& entry : fs::directory_iterator(Path(out))) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string name = entry.path().filename().string();
      if (name.rfind("window_", 0) == 0) {
        bytes[name] = ReadBytes(entry.path().string());
      }
    }
    return bytes;
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Window-iterator core (anon/streaming.h).
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, PlanWindowsCoversTheWholeLifetime) {
  const Result<WindowPlan> plan = PlanWindows(0.0, 290.0, 100.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_windows, 3u);
  EXPECT_EQ(plan->WindowStart(0), 0.0);
  EXPECT_EQ(plan->WindowStart(1), 100.0);
  // The last sample (t = 290) falls inside the final window.
  EXPECT_LT(plan->WindowStart(2), 290.0);
  EXPECT_GT(plan->WindowStart(3), 290.0);
}

TEST_F(PipelineTest, PlanWindowsRejectsBadWidths) {
  EXPECT_FALSE(PlanWindows(0.0, 10.0, 0.0).ok());
  EXPECT_FALSE(PlanWindows(0.0, 10.0, -1.0).ok());
  // A width below 1 ulp of t_min cannot advance the grid.
  EXPECT_FALSE(PlanWindows(1e18, 1e18 + 10.0, 1e-6).ok());
}

TEST_F(PipelineTest, SliceIsHalfOpen) {
  const Trajectory t = MakeLineWithReq(1, 0, 0, 1, 0, /*n=*/5, 2, 100.0,
                                       /*dt=*/10.0);  // t = 0..40
  EXPECT_EQ(SlicePointsInWindow(t, 0.0, 20.0).size(), 2u);   // 0, 10
  EXPECT_EQ(SlicePointsInWindow(t, 20.0, 50.0).size(), 3u);  // 20, 30, 40
  EXPECT_TRUE(SlicePointsInWindow(t, 100.0, 200.0).empty());
}

// ---------------------------------------------------------------------------
// Out-of-core extraction with carry-over (store/window_io.h).
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, ExtractWindowSpillsAndMergesCarry) {
  // Trajectory 1: one sample at t=90 in window [0,100), continues to 190.
  // Too short to publish alone -> spilled; window [100,200) must merge the
  // carried point in front of its own slice.
  std::vector<Trajectory> trajectories;
  std::vector<Point> pts;
  for (int i = 0; i < 11; ++i) {
    pts.emplace_back(5.0 * i, 0.0, 90.0 + 10.0 * i);  // t = 90..190
  }
  trajectories.emplace_back(1, pts, Requirement{3, 120.0});
  const std::string source = WriteSource(Dataset(std::move(trajectories)));
  Result<store::TrajectoryStoreReader> reader =
      store::TrajectoryStoreReader::Open(source);
  ASSERT_TRUE(reader.ok());

  store::WindowExtractOptions w0;
  w0.window_start = 0.0;
  w0.window_end = 100.0;
  w0.window_out_path = Path("win0.wst");
  w0.carry_out_path = Path("carry1.wst");
  Result<store::WindowExtraction> first = ExtractWindow(*reader, w0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->fragments, 0u);
  EXPECT_EQ(first->carried_out, 1u);
  EXPECT_EQ(first->suppressed, 0u);

  store::WindowExtractOptions w1;
  w1.window_start = 100.0;
  w1.window_end = 200.0;
  w1.carry_in_path = Path("carry1.wst");
  w1.window_out_path = Path("win1.wst");
  w1.carry_out_path = Path("carry2.wst");
  w1.next_fragment_id = 100;
  Result<store::WindowExtraction> second = ExtractWindow(*reader, w1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->carried_in, 1u);
  EXPECT_EQ(second->fragments, 1u);
  EXPECT_EQ(second->carried_out, 0u);

  Result<store::TrajectoryStoreReader> win1 =
      store::TrajectoryStoreReader::Open(Path("win1.wst"));
  ASSERT_TRUE(win1.ok());
  ASSERT_EQ(win1->size(), 1u);
  Result<Trajectory> merged = win1->Read(0);
  ASSERT_TRUE(merged.ok());
  // 1 carried point (t=90) + 10 in-window points (t=100..190), the user's
  // requirement preserved across the spill.
  EXPECT_EQ(merged->size(), 11u);
  EXPECT_EQ(merged->points().front().t, 90.0);
  EXPECT_EQ(merged->id(), 100);
  EXPECT_EQ(merged->requirement().k, 3);
  EXPECT_EQ(merged->requirement().delta, 120.0);
}

TEST_F(PipelineTest, ExtractWindowSuppressesShortFinalFragment) {
  // One sample at t=95 and the trajectory ends there: nothing to carry
  // into, so the fragment is suppressed for good.
  std::vector<Trajectory> trajectories;
  std::vector<Point> pts = {{0.0, 0.0, 95.0}};
  trajectories.emplace_back(1, pts, Requirement{2, 100.0});
  const std::string source = WriteSource(Dataset(std::move(trajectories)));
  Result<store::TrajectoryStoreReader> reader =
      store::TrajectoryStoreReader::Open(source);
  ASSERT_TRUE(reader.ok());

  store::WindowExtractOptions w;
  w.window_start = 0.0;
  w.window_end = 100.0;
  w.window_out_path = Path("win.wst");
  w.carry_out_path = Path("carry.wst");
  Result<store::WindowExtraction> stats = ExtractWindow(*reader, w);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->fragments, 0u);
  EXPECT_EQ(stats->carried_out, 0u);
  EXPECT_EQ(stats->suppressed, 1u);
}

// ---------------------------------------------------------------------------
// Manifest codec.
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, ManifestRoundTripsExactly) {
  pipeline::WindowManifest m;
  m.config_fingerprint = 0xdeadbeefcafef00dULL;
  m.window_index = 41;
  m.window_start = 0.1;  // not exactly representable: %.17g must round-trip
  m.window_end = 1e9 + 0.25;
  m.input_fragments = 7;
  m.published_fragments = 5;
  m.suppressed_delta = 2;
  m.carried_in = 1;
  m.carried_out = 3;
  m.clusters = 2;
  m.ttd = 12345.6789;
  m.skipped = true;
  m.degraded = true;
  m.next_fragment_id = -9;
  m.input_crc = 1;
  m.input_size = 2;
  m.output_crc = 3;
  m.output_size = 4;
  m.carry_crc = 5;
  m.carry_size = 6;

  const std::string encoded = pipeline::EncodeWindowManifest(m);
  Result<pipeline::WindowManifest> decoded =
      pipeline::DecodeWindowManifest(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(pipeline::EncodeWindowManifest(*decoded), encoded);
  EXPECT_EQ(decoded->window_start, m.window_start);
  EXPECT_EQ(decoded->next_fragment_id, -9);
  EXPECT_TRUE(decoded->skipped);
}

TEST_F(PipelineTest, ManifestDecodeFailuresAreDataLoss) {
  EXPECT_EQ(pipeline::DecodeWindowManifest("").status().code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(pipeline::DecodeWindowManifest("not-a-manifest 1 2 3")
                .status()
                .code(),
            StatusCode::kDataLoss);
  pipeline::WindowManifest m;
  std::string truncated = pipeline::EncodeWindowManifest(m);
  truncated.resize(truncated.size() / 2);
  EXPECT_EQ(pipeline::DecodeWindowManifest(truncated).status().code(),
            StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// The engine: publish, resume, refuse, retry.
// ---------------------------------------------------------------------------

TEST_F(PipelineTest, PublishesEveryWindowWithValidManifests) {
  const std::string source = WriteSource(GroupedDataset());
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "out");
  Result<pipeline::ContinuousPipelineResult> result =
      pipeline::RunContinuousPipeline(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->windows_total, 3u);
  EXPECT_EQ(result->resumed_windows, 0u);
  ASSERT_EQ(result->windows.size(), 3u);
  EXPECT_GT(result->published_fragments, 0u);

  for (size_t wi = 0; wi < 3; ++wi) {
    SCOPED_TRACE(wi);
    char name[32];
    std::snprintf(name, sizeof(name), "window_%05zu", wi);
    const std::string store_path = Path("out/" + std::string(name) + ".wst");
    const std::string manifest_path =
        Path("out/" + std::string(name) + ".mfr");
    Result<pipeline::WindowManifest> manifest =
        pipeline::ReadWindowManifest(manifest_path);
    ASSERT_TRUE(manifest.ok()) << manifest.status();
    EXPECT_EQ(manifest->window_index, wi);
    // The published store's bytes match the digest the manifest committed.
    Result<pipeline::FileDigest> digest = pipeline::DigestFile(store_path);
    ASSERT_TRUE(digest.ok());
    EXPECT_EQ(digest->crc, manifest->output_crc);
    EXPECT_EQ(digest->size, manifest->output_size);
    // And the store itself opens and holds the published fragments.
    Result<store::TrajectoryStoreReader> window =
        store::TrajectoryStoreReader::Open(store_path);
    ASSERT_TRUE(window.ok());
    EXPECT_EQ(window->size(), manifest->published_fragments);
  }
}

TEST_F(PipelineTest, RefusesNonEmptyOutputWithoutResume) {
  const std::string source = WriteSource(GroupedDataset());
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "out");
  ASSERT_TRUE(pipeline::RunContinuousPipeline(options).ok());
  EXPECT_EQ(pipeline::RunContinuousPipeline(options).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PipelineTest, ResumeAdoptsAllPublishedWindowsWithoutRecompute) {
  const std::string source = WriteSource(GroupedDataset());
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "out");
  Result<pipeline::ContinuousPipelineResult> first =
      pipeline::RunContinuousPipeline(options);
  ASSERT_TRUE(first.ok());
  const std::map<std::string, std::string> published = PublishedBytes("out");

  options.resume = true;
  Result<pipeline::ContinuousPipelineResult> second =
      pipeline::RunContinuousPipeline(options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->resumed_windows, 3u);
  EXPECT_EQ(second->published_fragments, first->published_fragments);
  EXPECT_EQ(second->total_ttd, first->total_ttd);
  EXPECT_EQ(PublishedBytes("out"), published);
}

TEST_F(PipelineTest, ResumeRecomputesTornLastWindowByteIdentically) {
  const std::string source = WriteSource(GroupedDataset());
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "out");
  ASSERT_TRUE(pipeline::RunContinuousPipeline(options).ok());
  const std::map<std::string, std::string> published = PublishedBytes("out");

  // Tear the final window's output store (truncate) — the CRC check must
  // reject it, adopt windows 0-1 (their carry chain is inside the
  // two-window retention horizon), and recompute only window 2.
  {
    std::ofstream tear(Path("out/window_00002.wst"),
                       std::ios::binary | std::ios::trunc);
    tear << "torn";
  }
  options.resume = true;
  Result<pipeline::ContinuousPipelineResult> resumed =
      pipeline::RunContinuousPipeline(options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->resumed_windows, 2u);
  EXPECT_EQ(PublishedBytes("out"), published);
}

TEST_F(PipelineTest, ResumeRecomputesTornMiddleWindowByteIdentically) {
  const std::string source = WriteSource(GroupedDataset());
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "out");
  ASSERT_TRUE(pipeline::RunContinuousPipeline(options).ok());
  const std::map<std::string, std::string> published = PublishedBytes("out");

  // Tear a middle window. Its carry-in store is already past the two-window
  // retention horizon (GC'd when the later windows committed), so resume
  // must walk back to window 0 and recompute everything — trading work,
  // never bytes.
  {
    std::ofstream tear(Path("out/window_00001.wst"),
                       std::ios::binary | std::ios::trunc);
    tear << "torn";
  }
  options.resume = true;
  Result<pipeline::ContinuousPipelineResult> resumed =
      pipeline::RunContinuousPipeline(options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->resumed_windows, 0u);
  EXPECT_EQ(PublishedBytes("out"), published);
}

TEST_F(PipelineTest, ResumeSurvivesDeletedWorkDir) {
  // Wiping the scratch directory costs recomputation, never correctness:
  // the carry chain cannot be verified, so the resume walks back to a
  // window it can recompute from scratch and rewrites identical bytes.
  const std::string source = WriteSource(GroupedDataset());
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "out");
  ASSERT_TRUE(pipeline::RunContinuousPipeline(options).ok());
  const std::map<std::string, std::string> published = PublishedBytes("out");

  fs::remove_all(Path("out/.work"));
  options.resume = true;
  Result<pipeline::ContinuousPipelineResult> resumed =
      pipeline::RunContinuousPipeline(options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(PublishedBytes("out"), published);
}

TEST_F(PipelineTest, ResumeRejectsConfigMismatch) {
  const std::string source = WriteSource(GroupedDataset());
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "out");
  ASSERT_TRUE(pipeline::RunContinuousPipeline(options).ok());

  options.resume = true;
  options.wcop.seed = 99;  // different anonymization -> different bytes
  EXPECT_EQ(pipeline::RunContinuousPipeline(options).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PipelineTest, RaisedWindowCapResumesIntoThePrefix) {
  const std::string source = WriteSource(GroupedDataset());
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "out");
  options.max_windows = 1;
  Result<pipeline::ContinuousPipelineResult> capped =
      pipeline::RunContinuousPipeline(options);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->windows.size(), 1u);

  options.max_windows = 0;
  options.resume = true;
  Result<pipeline::ContinuousPipelineResult> full =
      pipeline::RunContinuousPipeline(options);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_EQ(full->resumed_windows, 1u);
  EXPECT_EQ(full->windows.size(), 3u);
}

TEST_F(PipelineTest, InjectedEnospcFailsWithoutRetryPolicy) {
  const std::string source = WriteSource(GroupedDataset());
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "out");
  FailpointRegistry::Instance().ArmErrno("store.fsync", ENOSPC, /*on_hit=*/2);
  Result<pipeline::ContinuousPipelineResult> result =
      pipeline::RunContinuousPipeline(options);
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(PipelineTest, RetryPolicyAbsorbsInjectedEnospc) {
  const std::string source = WriteSource(GroupedDataset());

  // Reference run, then a faulted run into a second directory with a
  // one-shot ENOSPC injected mid-pipeline: the per-window RetryCall must
  // re-run the failed window and still produce byte-identical output.
  pipeline::ContinuousPipelineOptions options = BaseOptions(source, "ref");
  ASSERT_TRUE(pipeline::RunContinuousPipeline(options).ok());
  const std::map<std::string, std::string> expected = PublishedBytes("ref");

  pipeline::ContinuousPipelineOptions faulted = BaseOptions(source, "out");
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = std::chrono::milliseconds(1);
  faulted.publish_retry = &retry;
  FailpointRegistry::Instance().ArmErrno("store.fsync", ENOSPC, /*on_hit=*/2);
  Result<pipeline::ContinuousPipelineResult> result =
      pipeline::RunContinuousPipeline(faulted);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(PublishedBytes("out"), expected);
}

}  // namespace
}  // namespace wcop
