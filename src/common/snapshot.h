#ifndef WCOP_COMMON_SNAPSHOT_H_
#define WCOP_COMMON_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"

namespace wcop {

/// Crash-consistent snapshot files (DESIGN.md "Crash recovery").
///
/// A snapshot is an opaque payload wrapped in a small self-validating
/// envelope and written atomically:
///
///   write <path>.tmp  ->  fsync  ->  rename(<path>.tmp, <path>)
///
/// so readers only ever observe either the previous complete file or the
/// new complete file, never a torn write. The on-disk envelope is
///
///   offset  size  field
///        0     8  magic "WCOPSNP1"
///        8     4  format_version (little-endian u32, caller-defined)
///       12     8  payload size (little-endian u64)
///       20     4  CRC32 of the payload (little-endian u32)
///       24     n  payload bytes
///
/// Readers verify magic, size, and CRC and return kDataLoss on any
/// mismatch — the caller (see anon/checkpoint.h) falls back to the
/// previous good snapshot instead of trusting a corrupt one.

/// CRC-32 (ISO-HDLC polynomial, the zlib/PNG one) of `data`.
uint32_t Crc32(std::string_view data);

struct Snapshot {
  uint32_t format_version = 0;
  std::string payload;
};

/// Atomically replaces `path` with a snapshot of `payload`. On any failure
/// the previous contents of `path` are untouched (the temp file may be left
/// behind; a later successful write reuses the name). When `retry` is
/// non-null, transient I/O failures are retried under that policy.
Status WriteSnapshotFile(const std::string& path, std::string_view payload,
                         uint32_t format_version,
                         const RetryPolicy* retry = nullptr);

/// Reads and validates a snapshot. kNotFound when `path` does not exist;
/// kDataLoss when it exists but is torn or corrupt (bad magic, truncated
/// payload, CRC mismatch). Corruption is never retried; transient open /
/// read failures are, when `retry` is given.
Result<Snapshot> ReadSnapshotFile(const std::string& path,
                                  const RetryPolicy* retry = nullptr);

/// Rotating two-deep write: the previous good snapshot at `path` is kept as
/// `path`.prev before the new one lands. Combined with
/// ReadSnapshotWithFallback, a crash *during* a checkpoint write (or a
/// corrupted current file) costs at most one checkpoint interval of
/// progress, never the whole run.
Status WriteSnapshotRotating(const std::string& path, std::string_view payload,
                             uint32_t format_version,
                             const RetryPolicy* retry = nullptr);

/// Reads `path`, falling back to `path`.prev when the current file is
/// missing or fails validation. kNotFound only when neither file yields a
/// valid snapshot.
Result<Snapshot> ReadSnapshotWithFallback(const std::string& path,
                                          const RetryPolicy* retry = nullptr);

}  // namespace wcop

#endif  // WCOP_COMMON_SNAPSHOT_H_
