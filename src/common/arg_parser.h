#ifndef WCOP_COMMON_ARG_PARSER_H_
#define WCOP_COMMON_ARG_PARSER_H_

#include <map>
#include <string>
#include <vector>

namespace wcop {

/// Minimal command-line flag parser for the benchmark and example binaries.
///
/// Accepts `--name=value` and bare `--name` (boolean true). Anything not
/// starting with "--" is collected as a positional argument.
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  bool Has(const std::string& name) const;

  /// Returns the flag value, or `fallback` if absent or unparsable.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wcop

#endif  // WCOP_COMMON_ARG_PARSER_H_
