#ifndef WCOP_SERVER_SERVICE_H_
#define WCOP_SERVER_SERVICE_H_

/// wcop::server::AnonymizationService — the long-running anonymization
/// daemon's core (DESIGN.md "Service operation & fault tolerance").
///
/// Clients submit trajectory-batch jobs (JobSpec); the service validates
/// them, applies per-tenant (k, delta) policy defaults, records them in
/// the durable job ledger, and executes them through the sharded
/// store-runner pipeline on a worker pool fed by a bounded submission
/// queue. The moving parts and their guarantees:
///
///  * Admission control / backpressure: the queue is bounded; a submit
///    beyond capacity is rejected fast with kResourceExhausted (HTTP 429
///    at the endpoint), never silently dropped or blocked.
///  * Deadlines & budgets: each job runs under a RunContext carrying its
///    deadline (measured from admission, so queue wait counts) and its
///    distance-computation budget slice. Jobs with allow_partial degrade
///    gracefully (flagged `degraded`); without it they fail with
///    kDeadlineExceeded and publish nothing — never partial silent output.
///  * Durability: ledger-write-before-enqueue means an accepted job
///    survives kill -9 at any instant. On Start the service sweeps stale
///    `*.tmp` artifacts, reloads the ledger, and re-enqueues every
///    queued/running job (in admission order, bypassing live capacity).
///    Execution is deterministic and output publication is an atomic
///    rename, so a resumed job converges to byte-identical output, fast:
///    per-job shard checkpoints skip already-anonymized shards.
///  * Idempotency: the job name is a dedup key; resubmitting a known name
///    returns the existing job, making client retries after a crash safe.
///  * Shutdown: drain (finish the queue, then stop) or immediate (cancel
///    running jobs through the shared cancellation token — they flush
///    their checkpoints, are requeued in the ledger, and publish nothing).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "server/bounded_queue.h"
#include "server/job.h"
#include "server/job_ledger.h"

namespace wcop {
namespace server {

/// Per-tenant defaults applied at admission to fields the client left
/// unset (0 / false). `allow_partial_default` is OR-ed in: a tenant can
/// opt into graceful degradation service-side.
struct TenantPolicy {
  int default_k = 0;
  double default_delta = 0.0;
  int64_t default_deadline_ms = 0;
  uint64_t default_max_distance_computations = 0;
  bool allow_partial_default = false;
};

struct ServiceOptions {
  /// Root of all service state: ledger records, per-job work dirs,
  /// default outputs. Required; created if missing.
  std::string job_dir;

  /// Bounded submission queue capacity — the backpressure knob.
  size_t queue_capacity = 8;

  /// Worker threads executing jobs (each job runs its own pipeline with
  /// `job_threads` WCOP threads).
  int workers = 1;
  int job_threads = 1;

  /// Audit every job's output with the anonymity verifier before
  /// publication (jobs whose audit fails are failed, never published).
  bool verify_jobs = true;

  /// Retry policy for store/ledger I/O (metrics sink is wired by the
  /// service to its own registry).
  RetryPolicy store_retry;

  /// Policy for requests whose tenant is absent from `tenants`.
  TenantPolicy default_policy;
  std::map<std::string, TenantPolicy> tenants;
};

class AnonymizationService {
 public:
  /// Opens the ledger, sweeps stale artifacts, re-enqueues every
  /// unfinished job from a previous life, and starts the worker pool.
  static Result<std::unique_ptr<AnonymizationService>> Start(
      const ServiceOptions& options);

  ~AnonymizationService();

  AnonymizationService(const AnonymizationService&) = delete;
  AnonymizationService& operator=(const AnonymizationService&) = delete;

  /// Admission: validate -> tenant policy -> dedup by name -> durable
  /// ledger append -> enqueue. Returns the job id (a resubmitted name
  /// returns the existing job's id). kResourceExhausted = queue full;
  /// kInvalidArgument = rejected by validation; kFailedPrecondition =
  /// shutting down.
  Result<int64_t> Submit(JobSpec spec);

  Result<JobRecord> GetJob(int64_t id) const;
  std::vector<JobRecord> Jobs() const;

  struct Health {
    bool accepting = false;
    size_t queued = 0;
    size_t running = 0;
    size_t done = 0;
    size_t failed = 0;
    size_t queue_capacity = 0;
    size_t recovered = 0;  ///< jobs re-enqueued from the ledger at Start
  };
  Health GetHealth() const;

  telemetry::Telemetry& telemetry() { return telemetry_; }
  size_t recovered_jobs() const { return recovered_jobs_; }
  const std::string& job_dir() const { return options_.job_dir; }

  /// Where the job's persisted Chrome trace JSON lives
  /// (<job_dir>/traces/job_<id>.json); the file exists once the job has
  /// executed at least once. Served by GET /jobs/<id>/trace.
  std::string TracePath(int64_t id) const;

  /// Stops intake. drain=true finishes every queued job first;
  /// drain=false cancels running jobs (requeued, nothing published) and
  /// abandons the queue (ledger re-enqueues those jobs on next Start).
  void BeginShutdown(bool drain);

  /// Joins the worker pool. Call after BeginShutdown.
  void AwaitTermination();

  /// Test/drain helper: blocks until the queue is empty and no job is
  /// executing (or the pool terminated).
  void AwaitIdle();

 private:
  AnonymizationService() = default;

  void ApplyTenantPolicy(JobSpec* spec) const;
  void WorkerLoop();
  /// One ledger transition with its failpoint window; Status-returning so
  /// WCOP_FAILPOINT can inject errors.
  Status PersistTransition(const JobRecord& record, const char* site);
  /// Runs one claimed job end to end: context, input prep, sharded run,
  /// audit gate, atomic publish. Fills record->outcome and updates the
  /// in-memory record's progress live from the shard runner. `job_tel` is
  /// the job's own telemetry bundle: its spans become the persisted trace,
  /// its metrics roll up into the service registry afterwards.
  Status ExecuteJob(JobRecord* record, telemetry::Telemetry* job_tel);
  /// Continuous-kind execution: runs the windowed publication pipeline
  /// (pipeline/continuous.h) over the prepared input store with
  /// resume = true, so a crash-recovered job adopts its already-published
  /// windows. Publishes pipeline.* progress gauges on the service registry.
  Status ExecuteContinuousJob(JobRecord* record,
                              telemetry::Telemetry* job_tel,
                              RunContext* ctx,
                              const std::string& input_path);
  /// Audit-kind execution: runs the privacy red team (attack/audit.h)
  /// against the published store / window directory named by the spec and
  /// atomically publishes the AuditReport JSON to output_csv. The job's
  /// attack.* metrics roll up into the service registry and are served by
  /// GET /metrics like every other job's.
  Status ExecuteAuditJob(JobRecord* record, telemetry::Telemetry* job_tel,
                         RunContext* ctx, const std::string& input_path);
  /// Atomically writes the job's Chrome trace JSON beside the ledger
  /// (<job_dir>/traces/job_<id>.json); best-effort, logs on failure.
  void PersistJobTrace(int64_t id, const telemetry::Telemetry& job_tel);
  /// Rewrites the input store with every requirement replaced by the
  /// spec's (assign_k, assign_delta) — the materialization of a tenant /
  /// request (k, delta) override. Deterministic, so a crashed job re-runs
  /// it to identical bytes.
  Status MaterializeWithRequirements(const JobSpec& spec,
                                     const std::string& path) const;
  void StoreRecord(const JobRecord& record);
  std::string WorkDir(int64_t id) const;
  std::string DefaultOutputPath(const std::string& name) const;

  ServiceOptions options_;
  telemetry::Telemetry telemetry_;
  RetryPolicy retry_;  ///< options_.store_retry with metrics wired
  std::unique_ptr<JobLedger> ledger_;
  std::unique_ptr<BoundedQueue<int64_t>> queue_;
  CancellationToken shutdown_token_;
  std::vector<std::thread> workers_;
  size_t recovered_jobs_ = 0;

  std::atomic<bool> accepting_{true};
  std::atomic<size_t> running_{0};

  mutable std::mutex mu_;
  std::condition_variable idle_;
  std::map<int64_t, JobRecord> jobs_;
  std::unordered_map<std::string, int64_t> by_name_;
  std::unordered_map<int64_t, std::chrono::steady_clock::time_point>
      admitted_at_;

  /// Serializes the capacity-check + append + enqueue admission step so
  /// concurrent submits cannot oversubscribe the queue between check and
  /// push.
  std::mutex admit_mu_;
};

}  // namespace server
}  // namespace wcop

#endif  // WCOP_SERVER_SERVICE_H_
