#ifndef WCOP_GEO_DISK_H_
#define WCOP_GEO_DISK_H_

#include "common/rng.h"
#include "geo/point.h"

namespace wcop {

/// Disk operations used by the translation phase (Algorithm 4).
///
/// Every sanitized point must lie inside the disk of radius delta_c/2 centred
/// at the corresponding pivot point: matched points are *clamped* into the
/// disk with the minimum displacement, and points created for unmatched pivot
/// points are drawn *uniformly at random* inside the disk.

/// Moves `p` the minimum distance needed to lie within `radius` of `center`
/// (spatial coordinates only; the returned point keeps `keep_time`).
/// If `p` is already inside, it is returned unchanged except for the time.
Point ClampIntoDisk(const Point& p, const Point& center, double radius,
                    double keep_time);

/// Uniform random point inside the disk of `radius` around `center`, stamped
/// with `time`. Uses the sqrt-radius transform for area uniformity.
Point RandomPointInDisk(const Point& center, double radius, double time,
                        Rng& rng);

/// True iff the spatial distance between `p` and `center` is <= radius
/// (with a small epsilon to absorb floating-point clamping error).
bool InsideDisk(const Point& p, const Point& center, double radius,
                double epsilon = 1e-9);

}  // namespace wcop

#endif  // WCOP_GEO_DISK_H_
