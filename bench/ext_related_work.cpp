// Extension experiment: every anonymization family of the paper's related-
// work section (Section 2), measured on one dataset with the same
// instruments —
//   * perturbation:    Path Perturbation (Hoh & Gruteser 2005)
//   * suppression:     Terrovitis & Mamoulis 2008 (place-grid variant)
//   * generalization:  AWO-style regions (Nergiz et al. 2008)
//   * clustering:      NWA (spatial), W4M / WCOP-NV (universal),
//                      WCOP-CT (personalized), Mahdavifar et al. 2012
// Instruments: linkage-attack success, effective anonymity (independent
// audit), range-query utility, density divergence.
//
// The dataset is co-temporalized (all departures at t=0) so the families
// that require temporal overlap (NWA, AWO, path perturbation) apply; the
// clustering families run on the same data for comparability.
//
// Run:  ./ext_related_work [--trajectories=120] [--kmax=5]

#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/table_printer.h"
#include "related/awo.h"
#include "related/path_perturbation.h"
#include "related/suppression.h"

using namespace wcop;
using namespace wcop::bench;

namespace {

Dataset CoTemporalize(Dataset d) {
  for (Trajectory& t : d.mutable_trajectories()) {
    const double t0 = t.StartTime();
    for (Point& p : t.mutable_points()) {
      p.t -= t0;
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchScale scale = BenchScale::FromArgs(args);
  if (!args.Has("trajectories")) {
    scale.trajectories = 120;  // many publishers; keep each affordable
  }
  const int k_max = static_cast<int>(args.GetInt("kmax", 5));

  Dataset dataset = CoTemporalize(MakeBenchDataset(scale));
  AssignPaperRequirements(&dataset, k_max, 250.0, scale.seed + 1);

  Rng query_rng(scale.seed + 7);
  const std::vector<RangeQuery> queries =
      GenerateRangeQueries(dataset, 50, 0.05, 0.02, &query_rng);
  AttackOptions attack;
  attack.seed = scale.seed + 8;

  TrackingAttackOptions tracking;
  tracking.step_seconds = 60.0;
  tracking.seed = scale.seed + 9;

  PrintHeader("Extension: all related-work families on one dataset (kmax=" +
              std::to_string(k_max) + ")");
  TablePrinter table({"family / publisher", "link top-1", "time-on-target",
                      "eff. anonymity (mean)", "RQ rel. error",
                      "density div.", "published", "trashed"});

  auto evaluate = [&](const std::string& name, const Dataset& published,
                      size_t trashed) {
    Result<AttackResult> linkage =
        SimulateLinkageAttack(dataset, published, attack);
    Result<TrackingAttackResult> tracked =
        SimulateTrackingAttack(dataset, published, tracking);
    const EffectiveAnonymityReport anonymity = MeasureEffectiveAnonymity(
        published, 0.0, /*use_personal_delta=*/true);
    const RangeQueryDistortionResult rq =
        RangeQueryDistortion(dataset, published, queries);
    const double density = SpatialDensityDivergence(dataset, published);
    table.AddRow(
        {name,
         linkage.ok() ? FormatSignificant(linkage->top1_success_rate, 3)
                      : "n/a",
         tracked.ok() ? FormatSignificant(tracked->mean_time_on_target, 3)
                      : "n/a",
         FormatSignificant(anonymity.mean_anonymity, 3),
         FormatSignificant(rq.mean_relative_error, 3),
         FormatSignificant(density, 3), std::to_string(published.size()),
         std::to_string(trashed)});
  };

  evaluate("original (none)", dataset, 0);

  {
    PathPerturbationOptions options;
    options.radius = 250.0;
    Result<PathPerturbationResult> r = RunPathPerturbation(dataset, options);
    if (r.ok()) {
      evaluate("perturbation: Hoh-Gruteser", r->perturbed, 0);
    }
  }
  {
    SuppressionOptions options;
    options.cell_size = 2000.0;
    options.k = k_max;
    Result<SuppressionResult> r = RunSuppression(dataset, options);
    if (r.ok()) {
      evaluate("suppression: Terrovitis-Mamoulis", r->sanitized,
               r->trashed_ids.size());
    }
  }
  {
    AwoOptions options;
    options.k = k_max;
    options.trash_fraction = 0.25;
    Result<AwoResult> r = RunAwo(dataset, options);
    if (r.ok()) {
      evaluate("generalization: AWO (Nergiz et al.)", r->sanitized,
               r->trashed_ids.size());
    } else {
      std::printf("AWO skipped: %s\n", r.status().ToString().c_str());
    }
  }
  WcopOptions options;
  options.seed = scale.seed + 2;
  {
    Result<AnonymizationResult> r = RunNwa(dataset, k_max, 250.0, options);
    if (r.ok()) {
      evaluate("clustering: NWA (spatial)", r->sanitized,
               r->trashed_ids.size());
    } else {
      std::printf("NWA skipped: %s\n", r.status().ToString().c_str());
    }
  }
  {
    Result<AnonymizationResult> r = RunWcopNv(dataset, options);
    if (r.ok()) {
      evaluate("clustering: WCOP-NV / W4M (universal)", r->sanitized,
               r->trashed_ids.size());
    }
  }
  {
    Result<AnonymizationResult> r = RunWcopCt(dataset, options);
    if (r.ok()) {
      evaluate("clustering: WCOP-CT (personalized)", r->sanitized,
               r->trashed_ids.size());
    }
  }
  {
    Result<AnonymizationResult> r = RunMahdavifar(dataset);
    if (r.ok()) {
      evaluate("clustering: Mahdavifar et al. (personalized, no delta)",
               r->sanitized, r->trashed_ids.size());
    }
  }
  table.Print(std::cout);

  std::printf(
      "\nreading guide: each family defends against the adversary it was\n"
      "designed for. Perturbation targets the *tracking* adversary; in this\n"
      "dense co-temporal crowd even the raw data confuses a positional\n"
      "tracker (time-on-target ~0.1 everywhere) — the natural path\n"
      "confusion Hoh-Gruteser exploit; see the controlled two-lane case in\n"
      "tests/attack_test.cc for the isolated crossing effect. Under *point\n"
      "linkage*, perturbation and suppression leave users fully exposed\n"
      "(top-1 = 1.0, effective anonymity ~1); generalization unlinks\n"
      "identities at coarse spatial resolution; only the (k,delta)\n"
      "clustering family shows measured effective anonymity >= k, and\n"
      "personalization (WCOP-CT) provides it at the lowest utility cost.\n");
  return 0;
}
