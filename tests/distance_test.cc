#include <gtest/gtest.h>

#include <cmath>

#include "distance/euclidean.h"
#include "distance/lcss.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

EdrTolerance Tol(double dx, double dy, double dt) {
  EdrTolerance t;
  t.dx = dx;
  t.dy = dy;
  t.dt = dt;
  return t;
}

TEST(SynchronizedEuclideanTest, ParallelLinesAtConstantOffset) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 10);
  const Trajectory b = MakeLine(2, 0, 3, 1, 0, 10);  // 3 m north, same times
  EXPECT_NEAR(SynchronizedEuclideanDistance(a, b), 3.0, 1e-9);
  EXPECT_NEAR(MaxSynchronizedDistance(a, b), 3.0, 1e-9);
}

TEST(SynchronizedEuclideanTest, IdenticalIsZero) {
  const Trajectory a = MakeLine(1, 5, 5, 2, 1, 8);
  EXPECT_NEAR(SynchronizedEuclideanDistance(a, a), 0.0, 1e-12);
}

TEST(SynchronizedEuclideanTest, NoTemporalOverlapIsInfinite) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 5, 1.0, 0.0);    // [0, 4]
  const Trajectory b = MakeLine(2, 0, 0, 1, 0, 5, 1.0, 100.0);  // [100, 104]
  EXPECT_TRUE(std::isinf(SynchronizedEuclideanDistance(a, b)));
  EXPECT_TRUE(std::isinf(MaxSynchronizedDistance(a, b)));
}

TEST(SynchronizedEuclideanTest, PartialOverlapUsesOverlapOnly) {
  // a on [0,10] along x=t; b on [5,15] at fixed offset y=4 along x=t.
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 11);
  const Trajectory b = MakeLine(2, 5, 4, 1, 0, 11, 1.0, 5.0);
  EXPECT_NEAR(SynchronizedEuclideanDistance(a, b), 4.0, 1e-9);
}

TEST(SynchronizedEuclideanTest, DivergingLinesMaxAtEndpoint) {
  // a fixed at origin over [0,10]; b walks away along x.
  std::vector<Point> stay;
  for (int i = 0; i <= 10; ++i) {
    stay.emplace_back(0, 0, i);
  }
  const Trajectory a(1, stay);
  const Trajectory b = MakeLine(2, 0, 0, 2, 0, 11);
  EXPECT_NEAR(MaxSynchronizedDistance(a, b), 20.0, 1e-9);
  EXPECT_NEAR(SynchronizedEuclideanDistance(a, b), 10.0, 1e-9);
}

TEST(SynchronizedEuclideanTest, EmptyIsInfinite) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 5);
  EXPECT_TRUE(std::isinf(SynchronizedEuclideanDistance(a, Trajectory())));
}

TEST(LcssTest, IdenticalHasFullLength) {
  const Trajectory t = MakeLine(1, 0, 0, 1, 0, 12);
  EXPECT_EQ(LcssLength(t, t, Tol(0.5, 0.5, 0.5)), 12u);
  EXPECT_DOUBLE_EQ(LcssDistance(t, t, Tol(0.5, 0.5, 0.5)), 0.0);
}

TEST(LcssTest, DisjointHasZeroLength) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 6);
  const Trajectory b = MakeLine(2, 1000, 1000, 1, 0, 6);
  EXPECT_EQ(LcssLength(a, b, Tol(1, 1, 1)), 0u);
  EXPECT_DOUBLE_EQ(LcssDistance(a, b, Tol(1, 1, 1)), 1.0);
}

TEST(LcssTest, SubsequenceDetected) {
  // b is a copy of a with two far-away points spliced in: LCSS = |a|.
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 5);
  std::vector<Point> pb = a.points();
  pb.insert(pb.begin() + 2, Point(500, 500, 1.5));
  pb.push_back(Point(600, 600, 10.0));
  const Trajectory b(2, pb);
  EXPECT_EQ(LcssLength(a, b, Tol(0.5, 0.5, 0.6)), 5u);
}

TEST(LcssTest, EmptyEdgeCases) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 4);
  EXPECT_DOUBLE_EQ(LcssDistance(Trajectory(), Trajectory(), Tol(1, 1, 1)),
                   0.0);
  EXPECT_DOUBLE_EQ(LcssDistance(a, Trajectory(), Tol(1, 1, 1)), 1.0);
}

TEST(LcssTest, NeverExceedsShorterLength) {
  Rng rng(8);
  for (int round = 0; round < 30; ++round) {
    const Trajectory a = MakeLine(1, rng.UniformReal(0, 10), 0, 1, 0,
                                  1 + rng.UniformIndex(12));
    const Trajectory b = MakeLine(2, rng.UniformReal(0, 10), 0, 1, 0,
                                  1 + rng.UniformIndex(12));
    EXPECT_LE(LcssLength(a, b, Tol(3, 3, 4)), std::min(a.size(), b.size()));
  }
}

}  // namespace
}  // namespace wcop
